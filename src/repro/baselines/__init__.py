"""The Matlab/Python comparison implementations (paper §V.B).

The paper benchmarks against Matlab 2015a (built-in sparse ops +
Statistics-toolbox k-means) and Python 2.7 (scipy eigsh + sklearn 0.17
k-means).  Both share ARPACK's reverse-communication structure with our
solver; what differs is *where the flops run*: serial interpreted loops for
similarity, CPU SpMV inside the RCI, and loop/sweep-based k-means.

* :mod:`repro.baselines.reference` — the host-only pipeline (real
  numerics; also the correctness oracle for the hybrid path);
* :mod:`repro.baselines.cost` — the interpreter/CPU cost models with the
  calibration constants documented against the paper's own measurements;
* :mod:`repro.baselines.matlab_like` / :mod:`repro.baselines.python_like`
  — profile wiring (threading, seeding strategy, loop constants).
"""

from repro.baselines.cost import (
    InterpreterProfile,
    MATLAB_2015A,
    PYTHON_27,
    eigensolver_time,
    kmeans_time,
    similarity_serial_time,
    similarity_vectorized_time,
)
from repro.baselines.reference import ReferenceResult, reference_spectral_clustering
from repro.baselines.matlab_like import run_matlab_like
from repro.baselines.python_like import run_python_like

__all__ = [
    "InterpreterProfile",
    "MATLAB_2015A",
    "PYTHON_27",
    "similarity_serial_time",
    "similarity_vectorized_time",
    "eigensolver_time",
    "kmeans_time",
    "ReferenceResult",
    "reference_spectral_clustering",
    "run_matlab_like",
    "run_python_like",
]
