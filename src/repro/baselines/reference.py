"""The host-only reference pipeline.

Runs the identical algorithm to the hybrid path — same similarity measure,
same normalized operator, same IRLM eigensolver, same Lloyd k-means — but
entirely on the host, with the SpMV inside the reverse-communication loop
executed by the reference CPU ``csrmv``.  This serves two roles:

* the numeric core of the Matlab-like / Python-like baseline columns
  (their *times* come from :mod:`repro.baselines.cost`, their iteration
  counts from an actual run of this pipeline);
* the correctness oracle for the hybrid path in the test suite (hybrid
  and reference must produce matching embeddings/partitions from matching
  seeds).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError
from repro.graph.build import build_similarity_graph
from repro.graph.components import remove_isolated
from repro.graph.laplacian import sym_normalized_adjacency
from repro.kmeans.cpu import kmeans_cpu
from repro.kmeans.utils import KMeansResult
from repro.linalg.eigsolver import SymEigProblem
from repro.linalg.utils import normalize_rows as _normalize_rows
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


@dataclass
class ReferenceResult:
    """Host pipeline outcome with the counters the cost models consume."""

    labels: np.ndarray
    eigenvalues: np.ndarray
    embedding: np.ndarray
    kmeans: KMeansResult
    #: eigensolver counters: n_op, n_restarts, m, converged
    eig_stats: dict
    #: wall seconds per stage of this process (not paper-comparable)
    wall: dict
    kept: np.ndarray


def reference_spectral_clustering(
    X: np.ndarray | None = None,
    edges: np.ndarray | None = None,
    graph: COOMatrix | CSRMatrix | None = None,
    n_clusters: int = 2,
    similarity: str = "crosscorr",
    sigma: float = 1.0,
    m: int | None = None,
    eig_tol: float = 0.0,
    eig_maxiter: int | None = None,
    kmeans_init: str = "k-means++",
    kmeans_max_iter: int = 300,
    normalize_rows: bool = False,
    seed: int | None = 0,
) -> ReferenceResult:
    """Run the full pipeline on the host.  Arguments mirror
    :class:`~repro.core.pipeline.SpectralClustering`."""
    point_input = X is not None
    if point_input == (graph is not None):
        raise ClusteringError("provide either (X, edges) or graph=")

    wall: dict[str, float] = {}
    t0 = time.perf_counter()
    if point_input:
        if edges is None:
            raise ClusteringError("point input requires edges")
        W = build_similarity_graph(
            np.asarray(X), np.asarray(edges), measure=similarity, sigma=sigma
        )
        n_total = W.shape[0]
    else:
        assert graph is not None
        W = graph
        n_total = W.shape[0]
    W_sub, kept = remove_isolated(W)
    wall["similarity"] = time.perf_counter() - t0

    n = W_sub.shape[0]
    if n <= n_clusters:
        raise ClusteringError(
            f"only {n} non-isolated nodes for k={n_clusters} clusters"
        )

    t0 = time.perf_counter()
    S = sym_normalized_adjacency(W_sub)
    deg = W_sub.row_sums()
    wall["laplacian"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    prob = SymEigProblem(
        n=n, k=n_clusters, which="LA", m=m, tol=eig_tol,
        maxiter=eig_maxiter, seed=seed,
    )
    while not prob.converged():
        prob.take_step()
        if prob.needs_matvec():
            prob.put_vector(S.matvec(prob.get_vector()))
    theta, U = prob.find_eigenvectors()
    order = np.argsort(theta)[::-1]
    theta = theta[order]
    U = U[:, order]
    inv_sqrt = 1.0 / np.sqrt(np.where(deg > 0, deg, 1.0))
    U = U * inv_sqrt[:, None]
    embedding = _normalize_rows(U) if normalize_rows else U
    wall["eigensolver"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    km = kmeans_cpu(
        embedding, n_clusters, init=kmeans_init,
        max_iter=kmeans_max_iter, seed=seed,
    )
    wall["kmeans"] = time.perf_counter() - t0

    labels_full = np.full(n_total, -1, dtype=np.int64)
    labels_full[kept] = km.labels
    res = prob.result
    return ReferenceResult(
        labels=labels_full,
        eigenvalues=theta,
        embedding=embedding,
        kmeans=km,
        eig_stats=dict(
            n_op=res.n_op,
            n_restarts=res.n_restarts,
            m=prob.m,
            converged=res.converged,
        ),
        wall=wall,
        kept=kept,
    )
