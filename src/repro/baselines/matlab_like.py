"""The Matlab 2015a column: reference numerics + the Matlab cost profile.

Matlab specifics reproduced: multithreaded MKL BLAS (all 8 Xeon cores),
built-in sparse SpMV inside ``eigs``'s reverse-communication loop, and the
Statistics-toolbox ``kmeans`` with *random* seeding (the paper singles this
out as the reason Matlab's k-means needs more iterations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import cost
from repro.baselines.cost import MATLAB_2015A
from repro.baselines.reference import ReferenceResult, reference_spectral_clustering


@dataclass
class BaselineRun:
    """A baseline column: actual results plus modeled (paper-axis) times."""

    name: str
    result: ReferenceResult
    #: modeled seconds per stage on the Table I Xeon
    modeled: dict

    @property
    def labels(self) -> np.ndarray:
        return self.result.labels


def run_matlab_like(
    X: np.ndarray | None = None,
    edges: np.ndarray | None = None,
    graph=None,
    n_clusters: int = 2,
    similarity: str = "crosscorr",
    seed: int | None = 0,
    m: int | None = None,
    eig_tol: float = 0.0,
    kmeans_max_iter: int = 300,
    vectorized_similarity: bool = False,
) -> BaselineRun:
    """Run the Matlab-like baseline; see :class:`BaselineRun`.

    ``vectorized_similarity`` selects the optimized Matlab variant the
    paper also quotes (5.75 s instead of 221 s on DTI).
    """
    ref = reference_spectral_clustering(
        X=X, edges=edges, graph=graph, n_clusters=n_clusters,
        similarity=similarity, m=m, eig_tol=eig_tol,
        kmeans_init=MATLAB_2015A.kmeans_init, kmeans_max_iter=kmeans_max_iter,
        seed=seed,
    )
    n = ref.kept.size
    nnz_dir = edges.shape[0] if edges is not None else (graph.nnz // 2)
    nnz_sym = 2 * nnz_dir
    stats = ref.eig_stats
    modeled = {
        "similarity": (
            cost.similarity_vectorized_time(MATLAB_2015A, nnz_dir)
            if vectorized_similarity
            else cost.similarity_serial_time(MATLAB_2015A, nnz_dir)
        )
        if X is not None
        else 0.0,
        "eigensolver": cost.eigensolver_time(
            MATLAB_2015A, n=n, nnz=nnz_sym, k=n_clusters,
            m=stats["m"], n_op=stats["n_op"], n_restarts=stats["n_restarts"],
        ),
        "kmeans": cost.kmeans_time(
            MATLAB_2015A, n=n, d=n_clusters, k=n_clusters,
            iters=ref.kmeans.n_iter,
        ),
    }
    return BaselineRun(name="Matlab", result=ref, modeled=modeled)
