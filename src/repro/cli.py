"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Cluster one Table II workload with the hybrid pipeline and print the
    stage timings + quality.
``compare``
    The three-column CUDA/Matlab/Python comparison (Tables III-VI layout)
    with the paper-scale projection.
``serve``
    Replay (or synthesize) a request trace through the clustering
    service: micro-batching, embedding cache, multi-stream scheduling.
``datasets``
    List the registered workloads with paper-scale statistics.
"""

from __future__ import annotations

import argparse
import json
import sys


def _emit_json(payload: dict, dest: str) -> None:
    """Write a JSON payload to a path, or to stdout when dest is '-'."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
    else:
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def _cmd_datasets(_args) -> int:
    from repro.datasets.registry import DATASETS, PAPER_STATS

    print(f"{'name':<10}{'paper nodes':>12}{'paper edges':>12}{'clusters':>10}")
    print("-" * 44)
    for name in sorted(DATASETS):
        s = PAPER_STATS[name]
        print(f"{name:<10}{s['nodes']:>12}{s['edges']:>12}{s['clusters']:>10}")
    return 0


def _load_workload(args):
    """Resolve the dataset argument: a registry name or an ``.npz`` path."""
    if str(args.dataset).endswith(".npz"):
        from repro.datasets.io import load_problem

        return load_problem(args.dataset)
    from repro.datasets.registry import load_dataset

    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _cmd_run(args) -> int:
    from repro.chaos.retry import DISABLED
    from repro.core.pipeline import SpectralClustering
    from repro.metrics.external import adjusted_rand_index

    ds = _load_workload(args)
    k = args.clusters if args.clusters else ds.n_clusters
    sc = SpectralClustering(
        n_clusters=k, eig_tol=args.tol, seed=args.seed,
        eig_devices=args.eig_devices,
        fit_devices=args.fit_devices,
        partition_mode=args.partition_mode,
        precision=args.precision, embedding=args.embedding,
        filter_order=args.filter_order, n_signals=args.n_signals,
        sample_frac=args.sample_frac, lift=args.lift,
        chaos=args.chaos,
        resilience=DISABLED if args.no_resilience else None,
    )
    if ds.points is not None:
        res = sc.fit(X=ds.points, edges=ds.edges)
    else:
        res = sc.fit(graph=ds.graph)
    ari = None
    if ds.labels is not None and k == ds.n_clusters:
        ari = adjusted_rand_index(res.labels, ds.labels)
    labels_path = None
    if args.labels_out:
        import numpy as np

        labels_path = args.labels_out
        np.save(labels_path, res.labels)
    if args.json:
        payload = {
            "dataset": str(args.dataset),
            "scale": args.scale,
            "seed": args.seed,
            "n_clusters": int(res.n_clusters),
            "n_nodes": int(res.labels.size),
            "n_kept": int(res.kept.size),
            "labels_path": labels_path,
            "timings": {
                "simulated_s": dict(res.timings.simulated),
                "wall_s": dict(res.timings.wall),
                "total_simulated_s": res.timings.total_simulated(),
            },
            "profile": {
                "communication_s": res.profile.communication,
                "computation_s": res.profile.computation,
                "kernel_launches": res.profile.kernel_launches,
                "allocator": dict(res.profile.allocator),
                "transfers": dict(res.profile.transfers),
            },
            "eig_stats": dict(res.eig_stats),
            "resilience": {
                "stages": dict(res.resilience),
                "degraded_stages": list(res.degraded_stages),
                "fault_events_fired": len(res.fault_events),
            },
            "ari": ari,
        }
        _emit_json(payload, args.json)
        if args.json != "-":
            print(f"wrote {args.json}")
    else:
        print(res.summary())
        if ari is not None:
            print(f"ARI vs ground truth: {ari:.3f}")
        if labels_path:
            print(f"labels written to {labels_path}")
    return 0


def _cmd_serve(args) -> int:
    from repro.errors import ServiceError
    from repro.serve import (
        ClusterService,
        PredictResponse,
        ServiceConfig,
        read_trace,
        synthetic_predict_trace,
        synthetic_trace,
        verify_against_cold,
        write_trace,
    )

    if bool(args.trace) == bool(args.synthetic):
        raise ServiceError("provide exactly one of --trace FILE or "
                           "--synthetic N")
    if args.workload_mix is not None and not 0.0 <= args.workload_mix <= 1.0:
        raise ServiceError(
            f"--workload-mix must be in [0, 1], got {args.workload_mix}"
        )
    if args.trace:
        requests = read_trace(args.trace)
    elif args.workload_mix is not None:
        requests = synthetic_predict_trace(
            n_requests=args.synthetic,
            predict_fraction=args.workload_mix,
            mean_interarrival=args.mean_interarrival,
            chaos_every=args.chaos_every,
            seed=args.seed,
        )
    else:
        requests = synthetic_trace(
            n_requests=args.synthetic,
            mean_interarrival=args.mean_interarrival,
            chaos_every=args.chaos_every,
            seed=args.seed,
        )
    if args.emit_trace:
        write_trace(requests, args.emit_trace)
        print(f"trace written to {args.emit_trace}", file=sys.stderr)

    service = ClusterService(ServiceConfig(
        queue_capacity=args.queue_capacity,
        max_batch=args.max_batch,
        n_devices=args.devices,
        streams_per_device=args.streams,
        cache_entries=args.cache_capacity,
        preemption=not args.no_preemption,
        speculation_window=args.speculation_window,
        cache_dir=args.cache_dir,
    ))
    responses, report = service.process(requests)

    verification = None
    if args.verify_cold:
        problems = verify_against_cold(responses, requests)
        verification = {"checked": True, "mismatches": problems}
        if problems:
            for line in problems:
                print(f"verify-cold MISMATCH: {line}", file=sys.stderr)
        else:
            print("verify-cold: all served responses bit-identical to "
                  "cold runs", file=sys.stderr)

    if args.json:
        import hashlib

        import numpy as np

        def labels_sha256(r):
            # a content digest of the label vector, so two processes (a
            # cold and a disk-warm run) can assert bit-identity without
            # shipping the arrays
            if getattr(r, "labels", None) is None:
                return None
            return hashlib.sha256(
                np.ascontiguousarray(r.labels).tobytes()
            ).hexdigest()

        payload = report.as_dict()
        payload["responses"] = [
            {
                "request_id": r.request_id,
                "status": r.status,
                "kind": "predict",
                "model_hit": r.model_hit,
                "cold_fit": r.cold_fit,
                "ledger_ok": r.ledger_ok,
                "deadline_met": r.deadline_met,
                "latency_s": r.latency,
                "service_s": r.service_time,
                "labels_sha256": labels_sha256(r),
                "error": r.error,
            }
            if isinstance(r, PredictResponse) else
            {
                "request_id": r.request_id,
                "status": r.status,
                "cache_hit": r.cache_hit,
                "batch_id": r.batch_id,
                "batch_size": r.batch_size,
                "queue_wait_s": r.queue_wait,
                "latency_s": r.latency,
                "labels_sha256": labels_sha256(r),
                "error": r.error,
            }
            for r in responses
        ]
        if verification is not None:
            payload["verification"] = verification
        _emit_json(payload, args.json)
        if args.json != "-":
            print(f"wrote {args.json}")
    else:
        print(report.format_report())
    return 1 if (verification and verification["mismatches"]) else 0


def _cmd_compare(args) -> int:
    from repro.bench.report import format_comparison, format_paper_check
    from repro.bench.runner import run_comparison

    r = run_comparison(
        args.dataset, scale=args.scale, seed=args.seed, eig_tol=args.tol
    )
    print(format_comparison(r))
    print()
    print(format_paper_check(r))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="fastsc-py: hybrid CPU-GPU spectral clustering (simulated)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list Table II workloads").set_defaults(
        fn=_cmd_datasets
    )

    def common(sp):
        sp.add_argument(
            "dataset",
            help="a registered workload (dti, fb, dblp, syn200) or the "
            "path of an .npz problem file written by save_problem",
        )
        sp.add_argument("--scale", type=float, default=0.05,
                        help="workload size relative to the paper (default 0.05)")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--tol", type=float, default=1e-8,
                        help="eigensolver tolerance")

    run_p = sub.add_parser("run", help="cluster one workload")
    common(run_p)
    run_p.add_argument("--clusters", type=int, default=0,
                       help="override the dataset's cluster count")
    run_p.add_argument("--eig-devices", type=int, default=1,
                       help="shard the eigensolver's SpMV across this many "
                       "simulated devices (row partition + overlapped halo "
                       "exchange; results are bit-identical)")
    run_p.add_argument("--fit-devices", type=int, default=1,
                       help="compose the whole fit (operator upload, "
                       "sharded eigensolve, multi-device k-means) over this "
                       "many simulated devices with one row partition and "
                       "resident shards; results are bit-identical")
    run_p.add_argument("--partition-mode", default="nnz",
                       choices=("rows", "nnz", "mincut"),
                       help="row partitioner for multi-device runs: uniform "
                       "row split, nnz-balanced blocks (default), or "
                       "BFS-grown min-cut (minimizes halo traffic)")
    run_p.add_argument("--precision", default="fp64",
                       choices=("fp64", "fp32", "fp16"),
                       help="eigensolver storage precision; reduced modes "
                       "accumulate in fp64 and finish with fp64 iterative "
                       "refinement (fp64 stays bit-identical)")
    run_p.add_argument("--embedding", default="lanczos",
                       choices=("lanczos", "power", "compressive"),
                       help="spectral embedding algorithm: full IRLM, the "
                       "block power iteration (pure repeated SpMM), or the "
                       "compressive tier (Chebyshev graph filtering of "
                       "random signals + downsampled k-means)")
    run_p.add_argument("--filter-order", type=int, default=None,
                       metavar="P",
                       help="compressive: Chebyshev polynomial degree "
                       "(default 48)")
    run_p.add_argument("--n-signals", type=int, default=None, metavar="D",
                       help="compressive: random-signal sketch width "
                       "(default 2k + O(log k))")
    run_p.add_argument("--sample-frac", type=float, default=None,
                       metavar="F",
                       help="compressive: fraction of vertices k-means "
                       "sees before the label lift (default "
                       "O(k log k / n), capped at 1)")
    run_p.add_argument("--lift", default="interp",
                       choices=("interp", "nearest"),
                       help="compressive: label lift mode — regularized "
                       "interpolation or nearest sampled centroid")
    run_p.add_argument("--chaos", type=int, default=None, metavar="SEED",
                       help="inject a deterministic fault schedule derived "
                       "from SEED (see repro.chaos)")
    run_p.add_argument("--no-resilience", action="store_true",
                       help="let injected faults propagate instead of "
                       "retrying/degrading/falling back")
    run_p.add_argument("--json", metavar="PATH",
                       help="write a machine-readable result (per-stage "
                       "timings, resilience summary) to PATH, or '-' for "
                       "stdout")
    run_p.add_argument("--labels-out", metavar="PATH",
                       help="save the label vector to PATH as .npy")
    run_p.set_defaults(fn=_cmd_run)

    srv_p = sub.add_parser(
        "serve", help="replay a request trace through the clustering service"
    )
    srv_p.add_argument("--trace", metavar="FILE",
                       help="JSONL request trace to replay")
    srv_p.add_argument("--synthetic", type=int, default=0, metavar="N",
                       help="generate a synthetic N-request trace instead")
    srv_p.add_argument("--workload-mix", type=float, default=None,
                       metavar="FRAC",
                       help="with --synthetic: generate a predict-heavy "
                       "trace where FRAC of the requests are out-of-sample "
                       "predicts served from cached fitted models (e.g. "
                       "0.9 = 90%% predicts, 10%% fits)")
    srv_p.add_argument("--emit-trace", metavar="PATH",
                       help="also write the replayed trace to PATH (JSONL)")
    srv_p.add_argument("--mean-interarrival", type=float, default=0.002,
                       help="synthetic mean inter-arrival gap in simulated "
                       "seconds (default 0.002)")
    srv_p.add_argument("--chaos-every", type=int, default=0, metavar="N",
                       help="arm every Nth synthetic request with a fault "
                       "seed (0 = no chaos)")
    srv_p.add_argument("--seed", type=int, default=0,
                       help="synthetic trace generator seed")
    srv_p.add_argument("--devices", type=int, default=1,
                       help="simulated devices in the pool (default 1)")
    srv_p.add_argument("--streams", type=int, default=2,
                       help="streams per device (default 2)")
    srv_p.add_argument("--queue-capacity", type=int, default=64,
                       help="admission queue bound (default 64)")
    srv_p.add_argument("--max-batch", type=int, default=8,
                       help="micro-batch size cap (default 8)")
    srv_p.add_argument("--cache-capacity", type=int, default=32,
                       help="embedding cache entries, 0 disables (default 32)")
    srv_p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persist the embedding/model cache to DIR so a "
                       "restarted service warms from disk (default: "
                       "in-process only)")
    srv_p.add_argument("--speculation-window", type=float, default=0.0,
                       metavar="S",
                       help="hold an under-full batch open up to S simulated "
                       "seconds when a compatible arrival is predicted "
                       "(default 0 = off)")
    srv_p.add_argument("--no-preemption", action="store_true",
                       help="disable EDF preemption at stage boundaries "
                       "(deadlines become observational, as before)")
    srv_p.add_argument("--verify-cold", action="store_true",
                       help="re-run every served request cold and assert "
                       "bit-identical labels and embeddings")
    srv_p.add_argument("--json", metavar="PATH",
                       help="write the service report (+ per-request facts) "
                       "to PATH, or '-' for stdout")
    srv_p.set_defaults(fn=_cmd_serve)

    cmp_p = sub.add_parser("compare", help="CUDA vs Matlab vs Python columns")
    common(cmp_p)
    cmp_p.set_defaults(fn=_cmd_compare)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
