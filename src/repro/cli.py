"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Cluster one Table II workload with the hybrid pipeline and print the
    stage timings + quality.
``compare``
    The three-column CUDA/Matlab/Python comparison (Tables III-VI layout)
    with the paper-scale projection.
``datasets``
    List the registered workloads with paper-scale statistics.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_datasets(_args) -> int:
    from repro.datasets.registry import DATASETS, PAPER_STATS

    print(f"{'name':<10}{'paper nodes':>12}{'paper edges':>12}{'clusters':>10}")
    print("-" * 44)
    for name in sorted(DATASETS):
        s = PAPER_STATS[name]
        print(f"{name:<10}{s['nodes']:>12}{s['edges']:>12}{s['clusters']:>10}")
    return 0


def _load_workload(args):
    """Resolve the dataset argument: a registry name or an ``.npz`` path."""
    if str(args.dataset).endswith(".npz"):
        from repro.datasets.io import load_problem

        return load_problem(args.dataset)
    from repro.datasets.registry import load_dataset

    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _cmd_run(args) -> int:
    from repro.chaos.retry import DISABLED
    from repro.core.pipeline import SpectralClustering
    from repro.metrics.external import adjusted_rand_index

    ds = _load_workload(args)
    k = args.clusters if args.clusters else ds.n_clusters
    sc = SpectralClustering(
        n_clusters=k, eig_tol=args.tol, seed=args.seed,
        chaos=args.chaos,
        resilience=DISABLED if args.no_resilience else None,
    )
    if ds.points is not None:
        res = sc.fit(X=ds.points, edges=ds.edges)
    else:
        res = sc.fit(graph=ds.graph)
    print(res.summary())
    if ds.labels is not None and k == ds.n_clusters:
        print(f"ARI vs ground truth: {adjusted_rand_index(res.labels, ds.labels):.3f}")
    return 0


def _cmd_compare(args) -> int:
    from repro.bench.report import format_comparison, format_paper_check
    from repro.bench.runner import run_comparison

    r = run_comparison(
        args.dataset, scale=args.scale, seed=args.seed, eig_tol=args.tol
    )
    print(format_comparison(r))
    print()
    print(format_paper_check(r))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="fastsc-py: hybrid CPU-GPU spectral clustering (simulated)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list Table II workloads").set_defaults(
        fn=_cmd_datasets
    )

    def common(sp):
        sp.add_argument(
            "dataset",
            help="a registered workload (dti, fb, dblp, syn200) or the "
            "path of an .npz problem file written by save_problem",
        )
        sp.add_argument("--scale", type=float, default=0.05,
                        help="workload size relative to the paper (default 0.05)")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--tol", type=float, default=1e-8,
                        help="eigensolver tolerance")

    run_p = sub.add_parser("run", help="cluster one workload")
    common(run_p)
    run_p.add_argument("--clusters", type=int, default=0,
                       help="override the dataset's cluster count")
    run_p.add_argument("--chaos", type=int, default=None, metavar="SEED",
                       help="inject a deterministic fault schedule derived "
                       "from SEED (see repro.chaos)")
    run_p.add_argument("--no-resilience", action="store_true",
                       help="let injected faults propagate instead of "
                       "retrying/degrading/falling back")
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser("compare", help="CUDA vs Matlab vs Python columns")
    common(cmp_p)
    cmp_p.set_defaults(fn=_cmd_compare)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
