"""Clustering quality metrics.

* :mod:`repro.metrics.cuts` — the graph-cut objectives of paper Eqs. 1-4
  (Cut, RatioCut, NCut);
* :mod:`repro.metrics.external` — agreement with ground truth (ARI, NMI,
  purity), used to validate recovery on the synthetic datasets;
* :mod:`repro.metrics.internal` — label-free quality (modularity,
  inertia).
"""

from repro.metrics.cuts import cut_value, ncut, ratio_cut
from repro.metrics.external import (
    adjusted_rand_index,
    contingency_matrix,
    normalized_mutual_info,
    purity,
)
from repro.metrics.internal import modularity

__all__ = [
    "cut_value",
    "ncut",
    "ratio_cut",
    "adjusted_rand_index",
    "contingency_matrix",
    "normalized_mutual_info",
    "purity",
    "modularity",
]
