"""Graph-cut objectives (paper Eqs. 1-4).

All three are computed from one vectorized pass over the COO triples: the
cross-cluster mass ``W(A_i, Ā_i)`` per cluster is a masked ``bincount``.
Spectral clustering with the random-walk/symmetric normalization is the
relaxation of NCut minimization, so end-to-end tests assert the recovered
partition's NCut beats or matches ground truth within slack.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def _coo_of(W):
    return W if W.format == "coo" else W.to_coo()


def _check_labels(W, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if labels.size != W.shape[0]:
        raise ClusteringError(
            f"labels length {labels.size} != n nodes {W.shape[0]}"
        )
    if labels.size and labels.min() < 0:
        raise ClusteringError("labels must be non-negative integers")
    return labels


def _per_cluster_cross(W, labels: np.ndarray) -> tuple[np.ndarray, int]:
    """``W(A_i, Ā_i)`` for every cluster i (Eq. 2), plus cluster count."""
    coo = _coo_of(W)
    k = int(labels.max()) + 1 if labels.size else 0
    cross = labels[coo.row] != labels[coo.col]
    w = np.bincount(labels[coo.row[cross]], weights=coo.data[cross], minlength=k)
    return w, k


def cut_value(W, labels: np.ndarray) -> float:
    """Eq. 1: ``(1/2) Σ_i W(A_i, Ā_i)`` — total cross-cluster weight."""
    labels = _check_labels(W, labels)
    w, _ = _per_cluster_cross(W, labels)
    return float(w.sum()) / 2.0


def ratio_cut(W, labels: np.ndarray) -> float:
    """Eq. 3: ``(1/2) Σ_i W(A_i, Ā_i) / |A_i|``.

    Empty clusters contribute nothing (their cross weight is zero).
    """
    labels = _check_labels(W, labels)
    w, k = _per_cluster_cross(W, labels)
    sizes = np.bincount(labels, minlength=k).astype(np.float64)
    safe = np.where(sizes > 0, sizes, 1.0)
    return float((w / safe).sum()) / 2.0


def ncut(W, labels: np.ndarray) -> float:
    """Eq. 4: ``(1/2) Σ_i W(A_i, Ā_i) / vol(A_i)``.

    ``vol`` is the sum of degrees of the cluster's nodes; volume-zero
    clusters (all-isolated) contribute nothing.
    """
    labels = _check_labels(W, labels)
    coo = _coo_of(W)
    w, k = _per_cluster_cross(W, labels)
    deg = np.bincount(coo.row, weights=coo.data, minlength=W.shape[0])
    vol = np.bincount(labels, weights=deg, minlength=k)
    safe = np.where(vol > 0, vol, 1.0)
    return float((w / safe).sum()) / 2.0
