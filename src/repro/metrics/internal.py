"""Internal (label-free) clustering quality measures."""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def modularity(W, labels: np.ndarray) -> float:
    """Newman modularity ``Q = Σ_c (e_c/m - (vol_c / 2m)²)``.

    ``e_c`` is the intra-cluster edge weight, ``vol_c`` the cluster degree
    volume, ``2m`` the total degree.  Higher is better; community-structured
    graphs clustered correctly land around 0.3-0.8.
    """
    labels = np.asarray(labels, dtype=np.int64).ravel()
    if labels.size != W.shape[0]:
        raise ClusteringError(
            f"labels length {labels.size} != n nodes {W.shape[0]}"
        )
    coo = W if W.format == "coo" else W.to_coo()
    two_m = float(coo.data.sum())
    if two_m <= 0:
        return 0.0
    k = int(labels.max()) + 1 if labels.size else 0
    intra = labels[coo.row] == labels[coo.col]
    e_c = np.bincount(labels[coo.row[intra]], weights=coo.data[intra], minlength=k)
    deg = np.bincount(coo.row, weights=coo.data, minlength=W.shape[0])
    vol = np.bincount(labels, weights=deg, minlength=k)
    return float((e_c / two_m).sum() - ((vol / two_m) ** 2).sum())
