"""External (ground-truth) clustering agreement metrics, from scratch."""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def contingency_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense contingency table: ``C[i, j]`` = points with a=i and b=j.

    Labels are compacted to ``0..n_unique-1`` first, so arbitrary
    non-negative label sets are accepted.
    """
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.size != b.size:
        raise ClusteringError(f"label length mismatch: {a.size} vs {b.size}")
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    na = ai.max() + 1 if ai.size else 0
    nb = bi.max() + 1 if bi.size else 0
    C = np.zeros((na, nb), dtype=np.int64)
    np.add.at(C, (ai, bi), 1)
    return C


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """Adjusted Rand index (Hubert & Arabie): 1 = identical partitions,
    ~0 = chance agreement."""
    C = contingency_matrix(a, b)
    n = C.sum()
    if n == 0:
        return 1.0

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_ij = comb2(C.astype(np.float64)).sum()
    sum_a = comb2(C.sum(axis=1).astype(np.float64)).sum()
    sum_b = comb2(C.sum(axis=0).astype(np.float64)).sum()
    total = comb2(float(n))
    expected = sum_a * sum_b / total if total > 0 else 0.0
    max_index = (sum_a + sum_b) / 2.0
    denom = max_index - expected
    if denom == 0:
        return 1.0
    return float((sum_ij - expected) / denom)


def normalized_mutual_info(a: np.ndarray, b: np.ndarray) -> float:
    """NMI with arithmetic-mean normalization: ``2 I(a;b) / (H(a)+H(b))``."""
    C = contingency_matrix(a, b).astype(np.float64)
    n = C.sum()
    if n == 0:
        return 1.0
    pij = C / n
    pi = pij.sum(axis=1)
    pj = pij.sum(axis=0)

    nz = pij > 0
    outer = np.outer(pi, pj)
    mi = float((pij[nz] * np.log(pij[nz] / outer[nz])).sum())

    def entropy(p):
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    ha, hb = entropy(pi), entropy(pj)
    if ha + hb == 0:
        return 1.0
    return 2.0 * mi / (ha + hb)


def purity(pred: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of points in their cluster's majority ground-truth class."""
    C = contingency_matrix(pred, truth)
    n = C.sum()
    if n == 0:
        return 1.0
    return float(C.max(axis=1).sum() / n)
