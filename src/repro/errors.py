"""Exception hierarchy for fastsc-py.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause, mirroring
how CUDA error codes all funnel through ``cudaError_t``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CudaError(ReproError):
    """Base class for simulated CUDA runtime errors."""


class DeviceMemoryError(CudaError):
    """Raised when a device allocation exceeds the simulated device memory.

    The analogue of ``cudaErrorMemoryAllocation`` from ``cudaMalloc``.
    """


class InvalidKernelLaunch(CudaError):
    """Raised for malformed launch configurations (zero/negative or
    over-limit grid/block dimensions), the analogue of
    ``cudaErrorInvalidConfiguration``.
    """


class DeviceArrayError(CudaError):
    """Raised when a device array is used incorrectly (freed handle,
    dtype/shape mismatch, or host/device confusion)."""


class TransferError(CudaError):
    """Raised when a PCIe transfer (H2D or D2H) fails — the analogue of
    ``cudaMemcpy`` returning ``cudaErrorUnknown``.  Transfers are
    retryable: no destination bytes are written on failure."""


class TransientKernelError(CudaError):
    """Raised when a kernel launch fails transiently (ECC/Xid-style device
    hiccup).  The launch performed no work, so re-issuing it is safe."""


class StreamError(CudaError):
    """Raised on invalid stream/event operations."""


class SparseFormatError(ReproError):
    """Raised for malformed sparse matrix data (index out of range,
    non-monotonic indptr, shape mismatch)."""


class SparseValueError(SparseFormatError):
    """Raised when a sparse operation receives incompatible operands."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge within the
    permitted number of iterations/restarts."""


class EigensolverError(ReproError):
    """Raised for invalid eigensolver configuration (k out of range,
    non-square operator, bad basis size)."""


class ReverseCommunicationError(EigensolverError):
    """Raised when the reverse-communication protocol is violated, e.g.
    ``put_vector`` called before ``take_step`` asked for a product."""


class GraphConstructionError(ReproError):
    """Raised for invalid similarity-graph construction inputs."""


class ClusteringError(ReproError):
    """Raised for invalid clustering configuration (k > n, empty input)."""


class DatasetError(ReproError):
    """Raised by dataset generators for invalid parameters."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for malformed experiment specs."""


class ChaosError(ReproError):
    """Raised for malformed fault-injection plans (unknown fault type,
    missing trigger, bad pattern) — configuration errors of the chaos
    subsystem itself, never injected faults."""


class ServiceError(ReproError):
    """Base class for errors raised by the serving layer (:mod:`repro.serve`)."""


class AdmissionError(ServiceError):
    """Raised when the bounded request queue rejects a submission — the
    typed backpressure signal of admission control.  Carries the queue
    capacity and occupancy so clients can implement retry policies."""

    def __init__(self, message: str, capacity: int = 0, occupancy: int = 0) -> None:
        super().__init__(message)
        self.capacity = capacity
        self.occupancy = occupancy


class RequestError(ServiceError):
    """Raised for malformed cluster requests (missing graph source,
    invalid parameters) before they enter the queue."""


class TraceFormatError(ServiceError):
    """Raised when a request-trace file (JSONL replay input) is malformed:
    bad JSON, missing required fields, or non-monotonic arrival times."""
