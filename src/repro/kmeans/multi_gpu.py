"""Data-parallel k-means across several simulated GPUs.

The paper's platform model (§III.B) is "a host CPU and several GPUs as
co-processors" although its evaluation uses one K20c; this module carries
Algorithm 4 to the multi-device setting as a natural extension:

* the data rows are block-partitioned across devices (step 1 transfers
  each shard to its device);
* each iteration, every device computes distances/labels for its shard
  and a *partial* centroid sum via the same sort+segmented-reduction
  scheme;
* the host reduces the partial sums (one small D2H per device), forms the
  new centroids, and broadcasts them back (one small H2D per device) —
  the classic allreduce-through-host pattern of pre-NCCL CUDA;
* convergence is the global label-change count.

Simulated wall-clock of an iteration is the *maximum* over devices (they
run concurrently) plus the serialized host reduction; the returned
:class:`MultiDeviceTimings` exposes both, and tests assert the parallel
time approaches ``1/n_devices`` of the single-device time for balanced
shards.

:func:`kmeans_composed` is the topology-aware successor used by the
composed multi-device fit: it consumes an existing row partition (the same
``row_sets`` the sharded eigensolver ran on, so the embedding shards stay
resident and the V upload is elided), replicates :func:`kmeans_device`'s
fused+SpMM arithmetic on the full host mirror so labels, centroids, and
inertia histories are **bit-identical** to the single-device path at every
device count, and charges each Lloyd phase as concurrent per-shard kernels
laid at a common start (makespan semantics).  The centroid allreduce runs
over the peer bus — partial sums fan in to device 0, the divide happens
there, and the new centroids broadcast back — priced by the attached
:class:`~repro.hw.topology.PCIeTopology` per link pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import cublas, thrust
from repro.cuda.device import Device
from repro.cuda.kernel import launch
from repro.cuda.launch import grid_1d
from repro.cuda.memory import BufferGroup
from repro.errors import ClusteringError
from repro.kmeans.gpu import argmin_rows, compute_norms, init_distances
from repro.kmeans.init import kmeans_plus_plus
from repro.kmeans.utils import (
    KMeansResult,
    inertia as _inertia,
    relabel_empty_clusters,
    validate_inputs,
)


@dataclass
class MultiDeviceTimings:
    """Simulated time accounting for a multi-GPU run.

    ``parallel_seconds`` is the makespan (max per-device elapsed each
    iteration, summed); ``per_device_seconds`` the raw per-device totals;
    ``host_reduce_seconds`` the serialized reduction/broadcast share
    (already included in the makespan).
    """

    parallel_seconds: float = 0.0
    per_device_seconds: list = field(default_factory=list)
    host_reduce_seconds: float = 0.0


def kmeans_multi_device(
    devices: list[Device],
    V: np.ndarray,
    k: int,
    max_iter: int = 300,
    seed: int | None = 0,
    initial_centroids: np.ndarray | None = None,
    block: int = 256,
) -> tuple[KMeansResult, MultiDeviceTimings]:
    """Algorithm 4 sharded across ``devices``.

    Seeding runs on the host (k-means++ over the full data — a scalable
    seeding would sample per shard; kept simple and identical to the
    single-device path so results are comparable bit-for-bit).
    """
    if not devices:
        raise ClusteringError("need at least one device")
    V = validate_inputs(V, k)
    n, d = V.shape
    if len(devices) > n:
        raise ClusteringError(f"{len(devices)} devices for {n} points")
    rng = np.random.default_rng(seed)

    if initial_centroids is not None:
        C = np.array(initial_centroids, dtype=np.float64, copy=True)
        if C.shape != (k, d):
            raise ClusteringError(
                f"initial centroids have shape {C.shape}, expected {(k, d)}"
            )
    else:
        C = kmeans_plus_plus(V, k, rng)

    # ---- shard the rows -------------------------------------------------
    n_dev = len(devices)
    bounds = np.linspace(0, n, n_dev + 1).astype(np.int64)
    shards = []
    setup_times = []
    for dev, lo, hi in zip(devices, bounds[:-1], bounds[1:]):
        t0 = dev.elapsed
        dV = dev.to_device(V[lo:hi])
        dVnorm = dev.empty(hi - lo, dtype=np.float64)
        launch(compute_norms, grid_1d(hi - lo, block), dV, dVnorm,
               n_threads=hi - lo)
        setup_times.append(dev.elapsed - t0)
        shards.append((dev, int(lo), int(hi), dV, dVnorm))

    labels = np.full(n, -1, dtype=np.int64)
    timings = MultiDeviceTimings(per_device_seconds=list(setup_times))
    # shard uploads happen concurrently across devices; the makespan pays
    # the slowest (fair against the single-device path, which pays its
    # full upload)
    timings.parallel_seconds += max(setup_times)
    history: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        iter_dev_times = []
        partial_sums = np.zeros((n_dev, k, d))
        partial_counts = np.zeros((n_dev, k), dtype=np.int64)
        old = labels.copy()
        for idx, (dev, lo, hi, dV, dVnorm) in enumerate(shards):
            t0 = dev.elapsed
            t = hi - lo
            # broadcast current centroids (H2D) and compute shard labels
            dC = dev.to_device(C)
            dCnorm = dev.empty(k, dtype=np.float64)
            launch(compute_norms, grid_1d(k, block), dC, dCnorm, n_threads=k)
            dS = dev.empty((t, k), dtype=np.float64)
            launch(init_distances, grid_1d(t, block), dS, dVnorm, dCnorm,
                   n_threads=t)
            cublas.gemm(dV, dC, dS, alpha=-2.0, beta=1.0, transb=True)
            dlab = dev.empty(t, dtype=np.int64)
            launch(argmin_rows, grid_1d(t, block), dS, dlab, n_threads=t)

            # shard-local partial centroid sums (sort + segmented reduce)
            dkeys = dlab.copy()
            dvals = dV.copy()
            thrust.sort_by_key(dkeys, dvals)
            uniq, sums = thrust.reduce_by_key(dkeys, dvals)
            ones = dev.full(t, 1.0)
            uniq2, counts = thrust.reduce_by_key(dkeys, ones)

            labels[lo:hi] = dlab.copy_to_host()
            present = uniq.copy_to_host()
            partial_sums[idx][present] = sums.copy_to_host()
            partial_counts[idx][present] = counts.copy_to_host().astype(np.int64)

            for buf in (dC, dCnorm, dS, dlab, dkeys, dvals, uniq, uniq2,
                        sums, ones, counts):
                buf.free()
            iter_dev_times.append(dev.elapsed - t0)

        # ---- host reduction (serialized) --------------------------------
        sums_total = partial_sums.sum(axis=0)
        counts_total = partial_counts.sum(axis=0)
        nonzero = counts_total > 0
        C[nonzero] = sums_total[nonzero] / counts_total[nonzero, None]
        C, labels, counts_total = relabel_empty_clusters(
            V, C, labels, counts_total
        )
        # charge the reduction as host time on device 0's timeline
        reduce_s = devices[0].charge_cpu(
            "centroid_allreduce", n_dev * k * d * 8.0 / 25.6e9
        )
        timings.host_reduce_seconds += reduce_s

        for i, dt in enumerate(iter_dev_times):
            timings.per_device_seconds[i] += dt
        timings.parallel_seconds += max(iter_dev_times) + reduce_s

        changes = int(np.count_nonzero(labels != old))
        history.append(_inertia(V, C, labels))
        if changes == 0:
            converged = True
            break

    for dev, lo, hi, dV, dVnorm in shards:
        dV.free()
        dVnorm.free()

    result = KMeansResult(
        labels=labels,
        centroids=C,
        inertia=history[-1] if history else 0.0,
        n_iter=it,
        converged=converged,
        inertia_history=history,
    )
    return result, timings


# ---------------------------------------------------------------------------
# composed (plan-reusing, topology-priced) multi-device k-means
# ---------------------------------------------------------------------------


class _ComposedCharger:
    """Lays per-device work onto the shared timeline and tallies the plan.

    Every kernel/transfer the composed path charges goes through here so
    the returned transfer plan and the device meters agree *by
    construction* — the same ledger==meter discipline the partitioned
    eigensolver enforces analytically.
    """

    def __init__(self, devices: list[Device]) -> None:
        self.devices = devices
        self.timeline = devices[0].timeline
        self.per_device = [0.0] * len(devices)
        self.plan = {
            "h2d_bytes": 0, "h2d_count": 0,
            "d2h_bytes": 0, "d2h_count": 0,
            "p2p_bytes": 0, "p2p_count": 0,
            "elided_bytes": 0, "elided_count": 0,
        }

    @property
    def now(self) -> float:
        return self.timeline.clock.now

    def kernel(self, d: int, name: str, start: float, flops: float,
               nbytes: float, kind: str = "stream") -> float:
        dev = self.devices[d]
        dt = dev.cost.kernel_time(flops, nbytes, kind=kind)
        self.timeline.record_at(f"{name}[dev{d}]", "kernel", start, dt)
        dev.kernel_launches += 1
        self.per_device[d] += dt
        return dt

    def spmm(self, d: int, n_rows: int, nnz: int, p: int,
             start: float) -> float:
        dev = self.devices[d]
        dt = dev.cost.spmm_time(n_rows, nnz, p, itemsize=8)
        self.timeline.record_at(f"cusparseDcsrmm[dev{d}]", "kernel", start, dt)
        dev.kernel_launches += 1
        dev.spmv_traffic_bytes += dev.cost.spmm_bytes(n_rows, nnz, p, 8)
        self.per_device[d] += dt
        return dt

    def h2d(self, d: int, nbytes: int, start: float) -> float:
        dt = self.devices[d]._record_h2d_at(nbytes, start)
        self.plan["h2d_bytes"] += nbytes
        self.plan["h2d_count"] += 1
        self.per_device[d] += dt
        return dt

    def d2h(self, d: int, nbytes: int, start: float) -> float:
        dt = self.devices[d]._record_d2h_at(nbytes, start)
        self.plan["d2h_bytes"] += nbytes
        self.plan["d2h_count"] += 1
        self.per_device[d] += dt
        return dt

    def p2p(self, dst: int, src: int, nbytes: int, start: float) -> float:
        dt = self.devices[dst]._record_p2p_at(
            nbytes, start, peer=f"dev{src}", src=src
        )
        self.plan["p2p_bytes"] += nbytes
        self.plan["p2p_count"] += 1
        self.per_device[dst] += dt
        return dt

    def elide(self, d: int, count: int, nbytes: int) -> None:
        self.devices[d].note_elided_transfer(count, nbytes)
        self.plan["elided_bytes"] += nbytes
        self.plan["elided_count"] += count


def _composed_plus_plus(
    ch: _ComposedCharger,
    row_counts: list[int],
    owner_of: np.ndarray,
    V: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-means++ seeding for the composed path.

    Replicates :func:`~repro.kmeans.init.kmeans_plus_plus_device`'s exact
    arithmetic *and RNG consumption* (uniform draw placed by binary search
    on an inclusive scan — not the host variant's ``rng.choice``) so the
    composed seeds match the single-device GPU seeds bit-for-bit.  Charged
    time is the sharded version: each device scans its own distance shard,
    the owning shard answers the binary search, and the chosen row
    broadcasts over the peer bus.
    """
    n, d = V.shape
    p = len(ch.devices)
    C = np.empty((k, d))

    def _broadcast_row(choice: int) -> None:
        own = int(owner_of[choice])
        t0 = ch.now
        dt = ch.kernel(own, "copy_centroid", t0, 0.0, 2.0 * d * 8)
        for j in range(p):
            if j != own:
                ch.p2p(j, own, d * 8, t0 + dt)

    first = int(rng.integers(n))
    C[0] = V[first]
    _broadcast_row(first)

    diff = V - C[0]
    dist2 = np.einsum("nd,nd->n", diff, diff)
    t0 = ch.now
    for j in range(p):
        nd = row_counts[j]
        ch.kernel(j, "compute_newdist", t0, 3.0 * nd * d,
                  nd * d * 8.0 + nd * 8.0)

    scan = np.empty(n)
    for i in range(1, k):
        np.cumsum(dist2, out=scan)
        total = float(scan[-1])
        # per-shard prefix scan + one scalar readback of the shard total
        # (the single-device path reads one total; the sharded plan reads
        # one partial per device and combines on the host)
        t0 = ch.now
        for j in range(p):
            nd = row_counts[j]
            dt = ch.kernel(j, "thrust::inclusive_scan", t0,
                           2.0 * nd, 2.0 * nd * 8)
            ch.d2h(j, 8, t0 + dt)
        if total <= 0:
            choice = int(rng.integers(n))
        else:
            u = rng.uniform(0.0, total)
            choice = int(min(np.searchsorted(scan, u, side="left"), n - 1))
            own = int(owner_of[choice])
            nd = row_counts[own]
            t = ch.now
            t += ch.kernel(own, "stage_query", t, 0.0, 8.0)
            ch.kernel(own, "thrust::lower_bound", t,
                      float(max(1, int(np.log2(max(2, nd))))), 16.0,
                      kind="gather")
        C[i] = V[choice]
        _broadcast_row(choice)
        diff = V - C[i]
        new_dist2 = np.einsum("nd,nd->n", diff, diff)
        np.minimum(dist2, new_dist2, out=dist2)
        t0 = ch.now
        for j in range(p):
            nd = row_counts[j]
            dt = ch.kernel(j, "compute_newdist", t0, 3.0 * nd * d,
                           nd * d * 8.0 + nd * 8.0)
            ch.kernel(j, "thrust::transform[minimum]", t0 + dt,
                      float(nd), 3.0 * nd * 8)
    return C


def kmeans_composed(
    devices: list[Device],
    row_sets: list[np.ndarray],
    V: np.ndarray,
    k: int,
    init: str = "k-means++",
    max_iter: int = 300,
    seed: int | None = 0,
    initial_centroids: np.ndarray | None = None,
    resident: bool = False,
) -> tuple[KMeansResult, MultiDeviceTimings, dict]:
    """Algorithm 4 over an existing multi-device row partition.

    The composed stage of the one-plan fit: rows were partitioned once
    (by the graph-aware partitioner) and the embedding block is already
    sharded across ``devices`` when the eigensolver hands over, so this
    path skips the re-gather/re-scatter a phase-by-phase fit pays.

    Numerics are **bit-identical** to :func:`~repro.kmeans.gpu.kmeans_device`
    on its default path (fused assignment, SpMM centroid update,
    device-side k-means++): every arithmetic step — including the seeding
    RNG consumption — runs on the full host mirror in the exact
    expression order of the single-device substrate, and row-partitioned
    execution only changes what the cost model charges (the documented
    tiling-neutrality of the platform).

    Charged time is the sharded schedule: per-iteration assignment and
    partial-centroid kernels run concurrently across devices (laid at a
    common start, so an iteration costs the makespan), partial sums fan in
    to device 0 over the peer bus, the divide runs there, and the updated
    centroids broadcast back — every peer leg priced by the devices'
    attached :class:`~repro.hw.topology.PCIeTopology`.  Per-iteration
    inertia partials cross as one scalar peer copy per secondary device
    into device 0's history buffer, which comes down once, batched, after
    convergence.

    Parameters
    ----------
    devices:
        Devices sharing one timeline (the composed plan's device group).
    row_sets:
        Per-device global row indices; together they must partition
        ``range(n)``.  Pass the eigensolver plan's ``row_sets`` to keep
        the two stages on the same layout.
    resident:
        ``True`` when the embedding shards are already device-resident
        from the previous stage: the per-shard upload is elided (recorded
        via ``note_elided_transfer``) instead of charged.

    Returns
    -------
    (result, timings, plan):
        The host-side clustering result (bit-equal to the single-device
        path), makespan timings, and the transfer plan — byte/count
        tallies for every H2D/D2H/P2P leg this call laid, which the
        consistency tests compare against the device meters.
    """
    if not devices:
        raise ClusteringError("need at least one device")
    if len(row_sets) != len(devices):
        raise ClusteringError(
            f"{len(row_sets)} row sets for {len(devices)} devices"
        )
    tl = devices[0].timeline
    if any(dev.timeline is not tl for dev in devices):
        raise ClusteringError("composed devices must share one timeline")
    V = validate_inputs(V, k)
    n, d = V.shape
    owner_of = np.full(n, -1, dtype=np.int64)
    for j, rows in enumerate(row_sets):
        owner_of[np.asarray(rows, dtype=np.int64)] = j
    if (owner_of < 0).any():
        raise ClusteringError("row_sets do not cover every row")
    row_counts = [int(np.asarray(r).size) for r in row_sets]
    p = len(devices)
    rng = np.random.default_rng(seed)

    ch = _ComposedCharger(devices)
    t_start = ch.now
    bufs = BufferGroup()
    with devices[0].stage("kmeans"):
      try:
        # ---- shard residency -------------------------------------------
        t_up = ch.now
        for j, dev in enumerate(devices):
            nd = row_counts[j]
            bufs.add(dev.empty((nd, d), dtype=np.float64))  # embedding shard
            if resident:
                ch.elide(j, 1, nd * d * 8)
            else:
                # concurrent uploads: one PCIe link per device
                ch.h2d(j, nd * d * 8, t_up)

        # ---- seeding ----------------------------------------------------
        if initial_centroids is not None:
            C = np.asarray(initial_centroids, dtype=np.float64).copy()
            if C.shape != (k, d):
                raise ClusteringError(
                    f"initial centroids have shape {C.shape}, "
                    f"expected {(k, d)}"
                )
            t0 = ch.now
            dt = ch.h2d(0, k * d * 8, t0)
            for j in range(1, p):
                ch.p2p(j, 0, k * d * 8, t0 + dt)
        elif init == "k-means++":
            C = _composed_plus_plus(ch, row_counts, owner_of, V, k, rng)
        elif init == "random":
            from repro.kmeans.init import random_init

            C = random_init(V, k, rng)
            t0 = ch.now
            dt = ch.h2d(0, k * d * 8, t0)
            for j in range(1, p):
                ch.p2p(j, 0, k * d * 8, t0 + dt)
        else:
            raise ClusteringError(f"unknown init {init!r}")

        # ---- persistent per-shard buffers ------------------------------
        for j, dev in enumerate(devices):
            nd = row_counts[j]
            bufs.add(dev.empty(nd, dtype=np.float64))        # Vnorm shard
            bufs.add(dev.empty(nd, dtype=np.int64))          # labels shard
            bufs.add(dev.empty(nd, dtype=np.int64))          # old labels
            bufs.add(dev.empty((nd, k), dtype=np.float64))   # S tile
            bufs.add(dev.empty(k + 1, dtype=np.int64))       # histogram
            bufs.add(dev.empty(k + 1, dtype=np.int64))       # indptr
            bufs.add(dev.empty(nd, dtype=np.int64))          # membership ids
            bufs.add(dev.empty((k, d), dtype=np.float64))    # partial sums
            bufs.add(dev.empty((k, d), dtype=np.float64))    # centroids
            bufs.add(dev.empty(k, dtype=np.float64))         # centroid norms
        bufs.add(devices[0].empty(max_iter, dtype=np.float64))  # history

        Vnorm = np.einsum("nd,nd->n", V, V)
        t0 = ch.now
        for j in range(p):
            nd = row_counts[j]
            ch.kernel(j, "compute_norms", t0, 2.0 * nd * d,
                      nd * d * 8.0 + nd * 8.0)

        labels = np.full(n, -1, dtype=np.int64)
        history: list[float] = []
        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            # ---- assignment: concurrent fused tiles over the shards ----
            old = labels.copy()
            Cnorm = np.einsum("nd,nd->n", C, C)
            S = Vnorm[:, None] + Cnorm[None, :]
            S = -2.0 * (V @ C.T) + 1.0 * S
            labels = np.argmin(S, axis=1)
            changes = int(np.count_nonzero(labels != old))

            tA = ch.now
            ends = []
            for j in range(p):
                nd = row_counts[j]
                t = tA
                t += ch.kernel(j, "compute_norms", t, 2.0 * k * d,
                               k * d * 8.0 + k * 8.0)
                t += ch.kernel(j, "thrust::copy", t, 0.0, 2.0 * nd * 8)
                t += ch.kernel(
                    j, "fused_assign", t,
                    2.0 * nd * k * d + 2.0 * nd * k + float(nd),
                    nd * d * 8.0 + k * d * 8.0 + nd * 8.0 + k * 8.0
                    + float(nd) * k * 8 + 2.0 * nd * 8 + 8.0,
                    kind="dense",
                )
                # per-shard label-change partial: one scalar readback each
                ch.d2h(j, 8, t)
                # ---- partial centroid sums (histogram/scan/scatter/SpMM)
                t += ch.kernel(j, "label_histogram", t, float(nd),
                               nd * 8.0 + 2.0 * (k + 1) * 8, kind="gather")
                t += ch.kernel(j, "thrust::exclusive_scan", t,
                               2.0 * (k + 1), 2.0 * (k + 1) * 8)
                t += ch.kernel(j, "membership_scatter", t, float(nd),
                               2.0 * nd * 8 + (k + 1) * 8.0, kind="gather")
                t += ch.spmm(j, k, nd, d, t)
                ends.append(t)

            # ---- centroid allreduce over the peer bus ------------------
            # fan-in serializes on device 0's link; the broadcast legs
            # land concurrently (one destination link each)
            t = max(ends)
            for j in range(1, p):
                t += ch.p2p(0, j, k * d * 8 + (k + 1) * 8, t)
            if p > 1:
                t += ch.kernel(0, "reduce_partials", t,
                               float(p - 1) * (k * d + k),
                               float(p) * (k * d + k) * 8)
            t += ch.kernel(0, "divide_centroids", t, float(k * d),
                           3.0 * k * d * 8)

            # ---- centroid update numerics (exact kmeans_device order) --
            hist = np.zeros(k + 1, dtype=np.int64)
            hist[:k] = np.bincount(labels, minlength=k)
            indptr = np.cumsum(hist)
            indptr[1:] = indptr[:-1]
            indptr[0] = 0
            order = np.argsort(labels, kind="stable")
            counts = np.diff(indptr)
            gathered = V[order]
            sums = np.zeros((k, d))
            nonempty = np.flatnonzero(counts > 0)
            if nonempty.size:
                sums[nonempty] = np.add.reduceat(
                    gathered, indptr[:-1][nonempty], axis=0
                )
            present = np.flatnonzero(counts > 0)
            new_C = C.copy()
            new_C[present] = sums[present] / counts[present, None]
            new_C, labels, counts = relabel_empty_clusters(
                V, new_C, labels, counts
            )
            C = new_C

            # ---- inertia: sharded kernels, scalar partials to dev 0 ----
            t_b = ch.now
            for j in range(1, p):
                ch.p2p(j, 0, k * d * 8, t_b)
            t_i = ch.now
            for j in range(p):
                nd = row_counts[j]
                dt = ch.kernel(j, "tile_inertia", t_i,
                               3.0 * nd * d + float(nd),
                               nd * d * 8.0 + nd * 8.0 + k * d * 8.0 + 8.0)
                if j != 0:
                    ch.p2p(0, j, 8, t_i + dt)
            diff = V - C[labels]
            history.append(float(np.einsum("nd,nd->", diff, diff)))
            if changes == 0:
                converged = True
                break

        # ---- results down: batched history + label shards --------------
        if it > 0:
            ch.d2h(0, it * 8, ch.now)
        t_r = ch.now
        for j in range(p):
            ch.d2h(j, row_counts[j] * 8, t_r)
        ch.d2h(0, k * d * 8, ch.now)
      finally:
        bufs.free_all()

    timings = MultiDeviceTimings(
        parallel_seconds=ch.now - t_start,
        per_device_seconds=list(ch.per_device),
        host_reduce_seconds=0.0,
    )
    result = KMeansResult(
        labels=labels,
        centroids=C,
        inertia=history[-1] if history else 0.0,
        n_iter=it,
        converged=converged,
        inertia_history=history,
    )
    return result, timings, ch.plan
