"""Data-parallel k-means across several simulated GPUs.

The paper's platform model (§III.B) is "a host CPU and several GPUs as
co-processors" although its evaluation uses one K20c; this module carries
Algorithm 4 to the multi-device setting as a natural extension:

* the data rows are block-partitioned across devices (step 1 transfers
  each shard to its device);
* each iteration, every device computes distances/labels for its shard
  and a *partial* centroid sum via the same sort+segmented-reduction
  scheme;
* the host reduces the partial sums (one small D2H per device), forms the
  new centroids, and broadcasts them back (one small H2D per device) —
  the classic allreduce-through-host pattern of pre-NCCL CUDA;
* convergence is the global label-change count.

Simulated wall-clock of an iteration is the *maximum* over devices (they
run concurrently) plus the serialized host reduction; the returned
:class:`MultiDeviceTimings` exposes both, and tests assert the parallel
time approaches ``1/n_devices`` of the single-device time for balanced
shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import cublas, thrust
from repro.cuda.device import Device
from repro.cuda.kernel import launch
from repro.cuda.launch import grid_1d
from repro.errors import ClusteringError
from repro.kmeans.gpu import argmin_rows, compute_norms, init_distances
from repro.kmeans.init import kmeans_plus_plus
from repro.kmeans.utils import (
    KMeansResult,
    inertia as _inertia,
    relabel_empty_clusters,
    validate_inputs,
)


@dataclass
class MultiDeviceTimings:
    """Simulated time accounting for a multi-GPU run.

    ``parallel_seconds`` is the makespan (max per-device elapsed each
    iteration, summed); ``per_device_seconds`` the raw per-device totals;
    ``host_reduce_seconds`` the serialized reduction/broadcast share
    (already included in the makespan).
    """

    parallel_seconds: float = 0.0
    per_device_seconds: list = field(default_factory=list)
    host_reduce_seconds: float = 0.0


def kmeans_multi_device(
    devices: list[Device],
    V: np.ndarray,
    k: int,
    max_iter: int = 300,
    seed: int | None = 0,
    initial_centroids: np.ndarray | None = None,
    block: int = 256,
) -> tuple[KMeansResult, MultiDeviceTimings]:
    """Algorithm 4 sharded across ``devices``.

    Seeding runs on the host (k-means++ over the full data — a scalable
    seeding would sample per shard; kept simple and identical to the
    single-device path so results are comparable bit-for-bit).
    """
    if not devices:
        raise ClusteringError("need at least one device")
    V = validate_inputs(V, k)
    n, d = V.shape
    if len(devices) > n:
        raise ClusteringError(f"{len(devices)} devices for {n} points")
    rng = np.random.default_rng(seed)

    if initial_centroids is not None:
        C = np.array(initial_centroids, dtype=np.float64, copy=True)
        if C.shape != (k, d):
            raise ClusteringError(
                f"initial centroids have shape {C.shape}, expected {(k, d)}"
            )
    else:
        C = kmeans_plus_plus(V, k, rng)

    # ---- shard the rows -------------------------------------------------
    n_dev = len(devices)
    bounds = np.linspace(0, n, n_dev + 1).astype(np.int64)
    shards = []
    setup_times = []
    for dev, lo, hi in zip(devices, bounds[:-1], bounds[1:]):
        t0 = dev.elapsed
        dV = dev.to_device(V[lo:hi])
        dVnorm = dev.empty(hi - lo, dtype=np.float64)
        launch(compute_norms, grid_1d(hi - lo, block), dV, dVnorm,
               n_threads=hi - lo)
        setup_times.append(dev.elapsed - t0)
        shards.append((dev, int(lo), int(hi), dV, dVnorm))

    labels = np.full(n, -1, dtype=np.int64)
    timings = MultiDeviceTimings(per_device_seconds=list(setup_times))
    # shard uploads happen concurrently across devices; the makespan pays
    # the slowest (fair against the single-device path, which pays its
    # full upload)
    timings.parallel_seconds += max(setup_times)
    history: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        iter_dev_times = []
        partial_sums = np.zeros((n_dev, k, d))
        partial_counts = np.zeros((n_dev, k), dtype=np.int64)
        old = labels.copy()
        for idx, (dev, lo, hi, dV, dVnorm) in enumerate(shards):
            t0 = dev.elapsed
            t = hi - lo
            # broadcast current centroids (H2D) and compute shard labels
            dC = dev.to_device(C)
            dCnorm = dev.empty(k, dtype=np.float64)
            launch(compute_norms, grid_1d(k, block), dC, dCnorm, n_threads=k)
            dS = dev.empty((t, k), dtype=np.float64)
            launch(init_distances, grid_1d(t, block), dS, dVnorm, dCnorm,
                   n_threads=t)
            cublas.gemm(dV, dC, dS, alpha=-2.0, beta=1.0, transb=True)
            dlab = dev.empty(t, dtype=np.int64)
            launch(argmin_rows, grid_1d(t, block), dS, dlab, n_threads=t)

            # shard-local partial centroid sums (sort + segmented reduce)
            dkeys = dlab.copy()
            dvals = dV.copy()
            thrust.sort_by_key(dkeys, dvals)
            uniq, sums = thrust.reduce_by_key(dkeys, dvals)
            ones = dev.full(t, 1.0)
            uniq2, counts = thrust.reduce_by_key(dkeys, ones)

            labels[lo:hi] = dlab.copy_to_host()
            present = uniq.copy_to_host()
            partial_sums[idx][present] = sums.copy_to_host()
            partial_counts[idx][present] = counts.copy_to_host().astype(np.int64)

            for buf in (dC, dCnorm, dS, dlab, dkeys, dvals, uniq, uniq2,
                        sums, ones, counts):
                buf.free()
            iter_dev_times.append(dev.elapsed - t0)

        # ---- host reduction (serialized) --------------------------------
        sums_total = partial_sums.sum(axis=0)
        counts_total = partial_counts.sum(axis=0)
        nonzero = counts_total > 0
        C[nonzero] = sums_total[nonzero] / counts_total[nonzero, None]
        C, labels, counts_total = relabel_empty_clusters(
            V, C, labels, counts_total
        )
        # charge the reduction as host time on device 0's timeline
        reduce_s = devices[0].charge_cpu(
            "centroid_allreduce", n_dev * k * d * 8.0 / 25.6e9
        )
        timings.host_reduce_seconds += reduce_s

        for i, dt in enumerate(iter_dev_times):
            timings.per_device_seconds[i] += dt
        timings.parallel_seconds += max(iter_dev_times) + reduce_s

        changes = int(np.count_nonzero(labels != old))
        history.append(_inertia(V, C, labels))
        if changes == 0:
            converged = True
            break

    for dev, lo, hi, dV, dVnorm in shards:
        dV.free()
        dVnorm.free()

    result = KMeansResult(
        labels=labels,
        centroids=C,
        inertia=history[-1] if history else 0.0,
        n_iter=it,
        converged=converged,
        inertia_history=history,
    )
    return result, timings
