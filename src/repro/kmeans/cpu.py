"""Host k-means: vectorized Lloyd iteration.

This is the numeric twin of the sklearn/Matlab baselines the paper times
against, and the oracle the GPU path is tested against.  Distances use the
same BLAS expansion as Algorithm 4 (``||v||² + ||c||² − 2 v·c``); centroid
update is a direct group-by (``np.add.at``) rather than the GPU's
sort-based scheme — the two must produce identical centroids, which the
test suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError
from repro.kmeans.init import kmeans_plus_plus, random_init
from repro.kmeans.utils import (
    KMeansResult,
    inertia as _inertia,
    relabel_empty_clusters,
    validate_inputs,
)


def _distances(V: np.ndarray, C: np.ndarray, Vnorm: np.ndarray) -> np.ndarray:
    """Eq. 12: ``S_ij = ||v_i||² + ||c_j||² − 2 v_i · c_j``."""
    Cnorm = np.einsum("kd,kd->k", C, C)
    S = Vnorm[:, None] + Cnorm[None, :]
    S -= 2.0 * (V @ C.T)
    return S


def kmeans_cpu(
    V: np.ndarray,
    k: int,
    init: str = "k-means++",
    max_iter: int = 300,
    tol: float = 0.0,
    seed: int | None = 0,
    initial_centroids: np.ndarray | None = None,
) -> KMeansResult:
    """Lloyd's algorithm on the host.

    Parameters
    ----------
    V:
        ``(n, d)`` data (rows of the eigenvector matrix in the pipeline).
    k:
        Number of clusters.
    init:
        'k-means++' (Algorithm 5) or 'random' (Algorithm 4 step 2);
        ignored when ``initial_centroids`` is given.
    max_iter:
        Lloyd iteration cap.
    tol:
        Optional early stop: finish when the relative inertia improvement
        falls below ``tol`` (0 disables; exact label convergence is always
        checked).
    seed:
        Seeding RNG.
    initial_centroids:
        Explicit ``(k, d)`` seeds (used by tests and by the GPU/CPU parity
        harness).
    """
    V = validate_inputs(V, k)
    rng = np.random.default_rng(seed)
    if initial_centroids is not None:
        C = np.array(initial_centroids, dtype=np.float64, copy=True)
        if C.shape != (k, V.shape[1]):
            raise ClusteringError(
                f"initial centroids have shape {C.shape}, expected {(k, V.shape[1])}"
            )
    elif init == "k-means++":
        C = kmeans_plus_plus(V, k, rng)
    elif init == "random":
        C = random_init(V, k, rng)
    else:
        raise ClusteringError(f"unknown init {init!r}")

    n = V.shape[0]
    Vnorm = np.einsum("nd,nd->n", V, V)
    labels = np.full(n, -1, dtype=np.int64)
    history: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        S = _distances(V, C, Vnorm)
        new_labels = np.argmin(S, axis=1)
        changes = int(np.count_nonzero(new_labels != labels))
        labels = new_labels
        # centroid update: direct group-by
        counts = np.bincount(labels, minlength=k)
        sums = np.zeros_like(C)
        np.add.at(sums, labels, V)
        nonzero = counts > 0
        C[nonzero] = sums[nonzero] / counts[nonzero, None]
        C, labels, counts = relabel_empty_clusters(V, C, labels, counts)
        cur = _inertia(V, C, labels)
        history.append(cur)
        if changes == 0:
            converged = True
            break
        if tol > 0 and len(history) >= 2:
            prev = history[-2]
            if prev > 0 and (prev - cur) <= tol * prev:
                converged = True
                break
    return KMeansResult(
        labels=labels,
        centroids=C,
        inertia=history[-1] if history else 0.0,
        n_iter=it,
        converged=converged,
        inertia_history=history,
    )
