"""k-means clustering: the paper's GPU algorithm and host baselines.

* :mod:`repro.kmeans.gpu` — Algorithm 4: BLAS-3 pairwise distances
  (``S = ||v||² + ||c||² − 2VCᵀ`` via cuBLAS gemm), label argmin, and the
  sort-based centroid update (Thrust ``sort_by_key`` + segmented reduce);
* :mod:`repro.kmeans.init` — Algorithm 5: parallel k-means++ seeding on
  Thrust primitives, plus uniform random seeding;
* :mod:`repro.kmeans.cpu` — vectorized host Lloyd iteration (the numeric
  twin of the Matlab/Python baselines);
* :mod:`repro.kmeans.utils` — shared label/inertia/validation helpers.
"""

from repro.kmeans.utils import KMeansResult, inertia, relabel_empty_clusters
from repro.kmeans.init import (
    kmeans_plus_plus,
    kmeans_plus_plus_device,
    random_init,
)
from repro.kmeans.cpu import kmeans_cpu
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.multi_gpu import MultiDeviceTimings, kmeans_multi_device

__all__ = [
    "MultiDeviceTimings",
    "kmeans_multi_device",
    "KMeansResult",
    "inertia",
    "relabel_empty_clusters",
    "kmeans_plus_plus",
    "kmeans_plus_plus_device",
    "random_init",
    "kmeans_cpu",
    "kmeans_device",
]
