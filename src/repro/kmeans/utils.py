"""Shared k-means helpers: results record, inertia, empty-cluster repair."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClusteringError


@dataclass
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    labels:
        ``(n,)`` cluster assignment.
    centroids:
        ``(k, d)`` final centers.
    inertia:
        Sum of squared distances of points to their assigned centers.
    n_iter:
        Lloyd iterations executed.
    converged:
        True when no label changed on the final iteration (as opposed to
        hitting ``max_iter``).
    inertia_history:
        Inertia after each iteration — tests assert monotone descent.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iter: int
    converged: bool
    inertia_history: list[float] = field(default_factory=list)

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new points to the fitted centroids (nearest-center rule)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.centroids.shape[1]:
            raise ClusteringError(
                f"predict expects (m, {self.centroids.shape[1]}) points, "
                f"got {X.shape}"
            )
        return exact_labels(X, self.centroids)


def validate_inputs(V: np.ndarray, k: int) -> np.ndarray:
    """Common argument validation for all k-means front ends."""
    V = np.ascontiguousarray(V, dtype=np.float64)
    if V.ndim != 2:
        raise ClusteringError(f"data must be 2-D (n, d), got shape {V.shape}")
    n = V.shape[0]
    if not 0 < k <= n:
        raise ClusteringError(f"need 0 < k <= n, got k={k}, n={n}")
    return V


def inertia(V: np.ndarray, centroids: np.ndarray, labels: np.ndarray) -> float:
    """Sum of squared point-to-assigned-center distances."""
    diff = V - centroids[labels]
    return float(np.einsum("nd,nd->", diff, diff))


def exact_labels(V: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Argmin labels from exact (non-expanded) distances — the test oracle
    for the BLAS-expansion path."""
    d2 = ((V[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return np.argmin(d2, axis=1)


def assign_nearest(V: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid labels via the Eq. 15 expansion.

    ``||v - c||² = ||v||² + ||c||² - 2 v·c`` with the cross term as one
    GEMM — the identical arithmetic the fused device assignment kernel
    charges for, shared here so the out-of-sample predict path's host
    fallback and device path agree bit for bit.
    """
    V = np.asarray(V, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    v2 = np.einsum("nd,nd->n", V, V)
    c2 = np.einsum("kd,kd->k", centroids, centroids)
    d2 = v2[:, None] + c2[None, :] - 2.0 * (V @ centroids.T)
    return np.argmin(d2, axis=1).astype(np.int64)


def relabel_empty_clusters(
    V: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Repair clusters that lost all members.

    Standard strategy: each empty cluster steals the point currently
    farthest from its assigned centroid (ties broken by index), mirroring
    sklearn's relocation rule.  Deterministic.

    Returns updated ``(centroids, labels, counts)``.
    """
    empty = np.flatnonzero(counts == 0)
    if empty.size == 0:
        return centroids, labels, counts
    labels = labels.copy()
    counts = counts.copy()
    centroids = centroids.copy()
    diff = V - centroids[labels]
    dist = np.einsum("nd,nd->n", diff, diff)
    order = np.argsort(dist)[::-1]
    cursor = 0
    for c in empty:
        # skip candidates whose own cluster would become empty
        while cursor < order.size and counts[labels[order[cursor]]] <= 1:
            cursor += 1
        if cursor >= order.size:
            break
        p = order[cursor]
        cursor += 1
        counts[labels[p]] -= 1
        labels[p] = c
        counts[c] = 1
        centroids[c] = V[p]
    return centroids, labels, counts
