"""Centroid seeding: k-means++ (Algorithm 5) and uniform random.

The paper replaces Algorithm 4's random seeding with k-means++ (Arthur &
Vassilvitskii 2007), "shown to converge faster and achieve better results";
the initialization ablation bench quantifies exactly that claim.

The device variant composes Thrust primitives the way the reference CUDA
code does: squared shortest-distances are prefix-summed
(``inclusive_scan``), a uniform host draw is placed by binary search
(``lower_bound``) — i.e. weighted sampling — and the distance vector is
folded with ``transform(minimum)`` after each new centroid.
"""

from __future__ import annotations

import numpy as np

from repro import thrust
from repro.cuda.device import Device
from repro.cuda.memory import BufferGroup, DeviceArray
from repro.errors import ClusteringError
from repro.kmeans.utils import validate_inputs


def random_init(
    V: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Step 2 of Algorithm 4: k distinct points chosen uniformly."""
    V = validate_inputs(V, k)
    idx = rng.choice(V.shape[0], size=k, replace=False)
    return V[idx].copy()


def kmeans_plus_plus(
    V: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Host reference of Algorithm 5 (k-means++ seeding).

    Returns the ``(k, d)`` seed centroids.
    """
    V = validate_inputs(V, k)
    n = V.shape[0]
    centroids = np.empty((k, V.shape[1]))
    # step 1: first centroid uniform at random
    first = int(rng.integers(n))
    centroids[0] = V[first]
    # step 2: shortest distance to the current centroid set
    diff = V - centroids[0]
    dist2 = np.einsum("nd,nd->n", diff, diff)
    for i in range(1, k):
        total = dist2.sum()
        if total <= 0:
            # all remaining mass at distance zero: fall back to uniform
            choice = int(rng.integers(n))
        else:
            # step 3: sample proportionally to Dist²
            choice = int(rng.choice(n, p=dist2 / total))
        centroids[i] = V[choice]
        diff = V - centroids[i]
        new_dist2 = np.einsum("nd,nd->n", diff, diff)
        np.minimum(dist2, new_dist2, out=dist2)
    return centroids


def _sq_dist_to_point(dV: DeviceArray, c_row: np.ndarray) -> DeviceArray:
    """Device kernel: squared distance of every row of V to one point."""
    dev = dV.device
    out = dev.empty(dV.shape[0], dtype=np.float64)
    diff = dV.data - c_row
    out.data[...] = np.einsum("nd,nd->n", diff, diff)
    dev.charge_kernel(
        "compute_newdist",
        flops=3.0 * dV.size,
        bytes_moved=dV.nbytes + out.nbytes,
    )
    return out


def kmeans_plus_plus_device(
    dV: DeviceArray, k: int, rng: np.random.Generator
) -> DeviceArray:
    """Algorithm 5 on the device, composed from Thrust primitives.

    Parameters
    ----------
    dV:
        ``(n, d)`` device-resident data.
    k:
        Number of seeds.

    Returns
    -------
    DeviceArray:
        ``(k, d)`` seed centroids on the device.
    """
    dev = dV.device
    n, d = dV.shape
    if not 0 < k <= n:
        raise ClusteringError(f"need 0 < k <= n, got k={k}, n={n}")
    bufs = BufferGroup()
    try:
        dC = dev.empty((k, d), dtype=np.float64)
        bufs.add(dC)

        first = int(rng.integers(n))
        dC.data[0] = dV.data[first]
        dev.charge_kernel("copy_centroid", flops=0, bytes_moved=2 * d * 8)

        dist2 = bufs.add(_sq_dist_to_point(dV, dC.data[0]))
        scan = bufs.add(dev.empty(n, dtype=np.float64))
        for i in range(1, k):
            # P_j = Dist_j² / Σ Dist² realized as scan + one uniform draw:
            thrust.inclusive_scan(dist2, out=scan)
            total = float(scan.data[-1])
            dev._record_d2h(8)
            if total <= 0:
                choice = int(rng.integers(n))
            else:
                u = rng.uniform(0.0, total)
                q = bufs.add(dev.empty(1, dtype=np.float64))
                q.data[0] = u
                dev.charge_kernel("stage_query", flops=0, bytes_moved=8)
                pos = bufs.add(thrust.lower_bound(scan, q))
                choice = int(min(pos.data[0], n - 1))
                q.free()
                pos.free()
            dC.data[i] = dV.data[choice]
            dev.charge_kernel("copy_centroid", flops=0, bytes_moved=2 * d * 8)
            new_dist2 = bufs.add(_sq_dist_to_point(dV, dC.data[i]))
            thrust.transform(dist2, "minimum", new_dist2, out=dist2)
            new_dist2.free()
        dist2.free()
        scan.free()
    except BaseException:
        bufs.free_all()
        raise
    return dC
