"""Algorithm 4: parallel k-means on the (simulated) GPU.

The three phases of each Lloyd iteration map to device primitives exactly
as in the paper:

* **distances** — ``S`` is initialized to ``||v_i||² + ||c_j||²`` by a
  streaming kernel (Eq. 15) and completed with one cuBLAS gemm,
  ``S -= 2 V Cᵀ`` (Eq. 16).  This BLAS-3 reformulation is where the
  100-400× speedups over the loop-based baselines come from;
* **labels** — a row-argmin kernel; a device reduction counts label
  changes for the convergence test;
* **centroids** — the data points are sorted by their new label
  (``thrust::sort_by_key``) so members of each cluster are contiguous,
  then summed with a segmented reduction (``thrust::reduce_by_key``), as
  described in §IV.C.

Empty clusters are repaired with the same deterministic relocation rule as
the host implementation, keeping the two paths bit-comparable.
"""

from __future__ import annotations

import numpy as np

from repro import cublas, thrust
from repro.cuda.allocator import MIN_BUCKET_BYTES
from repro.cuda.device import Device
from repro.cuda.kernel import Kernel, launch
from repro.cuda.launch import grid_1d
from repro.cuda.memory import BufferGroup, DeviceArray
from repro.errors import ClusteringError
from repro.kmeans.init import kmeans_plus_plus_device, random_init
from repro.kmeans.utils import (
    KMeansResult,
    inertia as _inertia,
    relabel_empty_clusters,
    validate_inputs,
)

# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

compute_norms = Kernel(
    name="compute_norms",
    body=lambda tid, V, out: out.__setitem__(
        tid, np.einsum("nd,nd->n", V[tid], V[tid])
    ),
    cost=lambda nt, V, out: (2.0 * V[:nt].size, V[:nt].nbytes + out.nbytes),
    kind="stream",
)

init_distances = Kernel(
    name="init_distances",
    body=lambda tid, S, Vnorm, Cnorm: S.__setitem__(
        tid, Vnorm[tid, None] + Cnorm[None, :]
    ),
    cost=lambda nt, S, Vnorm, Cnorm: (
        float(nt) * Cnorm.size,
        float(nt) * Cnorm.size * 8 + Vnorm.nbytes + Cnorm.nbytes,
    ),
    kind="stream",
)

argmin_rows = Kernel(
    name="argmin_rows",
    body=lambda tid, S, labels: labels.__setitem__(tid, np.argmin(S[tid], axis=1)),
    cost=lambda nt, S, labels: (
        float(nt) * S.shape[1],
        float(nt) * S.shape[1] * 8 + labels.nbytes,
    ),
    kind="stream",
)


def _direct_distances_body(tid, V, C, S):
    diff = V[tid][:, None, :] - C[None, :, :]
    S[tid] = np.einsum("tkd,tkd->tk", diff, diff)

#: the naive distance kernel: thread i re-streams all k centroids against
#: its point — 3·n·k·d flops but, critically, n·k·d element reads instead
#: of the gemm's O(n·d + k·d) (plus cache-blocked reuse).  This is the
#: formulation Algorithm 4 *replaces* with Eqs. 12-16; the distance
#: ablation bench quantifies the win.
direct_distances = Kernel(
    name="direct_distances",
    body=_direct_distances_body,
    cost=lambda nt, V, C, S: (
        3.0 * nt * C.shape[0] * C.shape[1],
        float(nt) * C.shape[0] * C.shape[1] * 8 + float(nt) * C.shape[0] * 8,
    ),
    kind="stream",
)


def kmeans_device(
    device: Device,
    V: np.ndarray | DeviceArray,
    k: int,
    init: str = "k-means++",
    max_iter: int = 300,
    seed: int | None = 0,
    initial_centroids: np.ndarray | None = None,
    block: int = 256,
    tile_rows: int | None = None,
    distance_method: str = "gemm",
) -> KMeansResult:
    """Run Algorithm 4 on ``device``; returns a host-side result.

    Parameters
    ----------
    V:
        Host ``(n, d)`` data (transferred, step 1 of Algorithm 4) or an
        already device-resident array.
    k:
        Number of clusters.
    init:
        'k-means++' (Algorithm 5 on the device) or 'random'.
    initial_centroids:
        Explicit seeds; bypasses ``init`` (used for CPU/GPU parity tests).
    tile_rows:
        Rows of the distance matrix materialized at once.  ``None`` sizes
        the tile automatically: the full ``n × k`` matrix when it fits in
        a quarter of free device memory, otherwise the largest tile that
        does — which is what lets the pipeline run problems whose distance
        matrix alone exceeds the K20c's 5 GB ("extremely large input
        sizes", paper §I).  Tiling changes memory traffic, never results.
    distance_method:
        'gemm' (default) — the paper's BLAS-3 expansion, Eqs. 12-16;
        'direct' — the naive per-pair distance kernel it replaces.
        Identical results; the ablation bench compares their costs.
    """
    if distance_method not in ("gemm", "direct"):
        raise ClusteringError(
            f"distance_method must be 'gemm' or 'direct', got {distance_method!r}"
        )
    rng = np.random.default_rng(seed)
    # every buffer this call creates is registered so a faulted sub-step
    # (injected OOM / transfer / kernel error) releases the lot; the
    # success path's explicit frees are idempotent and stay authoritative
    bufs = BufferGroup()
    with device.stage("kmeans"):
      try:
        if isinstance(V, DeviceArray):
            dV = V  # caller-owned: never registered, never freed here
            V_host = dV.data  # simulation substrate view, no transfer
        else:
            V_host = validate_inputs(V, k)
            dV = bufs.add(device.to_device(V_host))
        n, d = dV.shape
        if not 0 < k <= n:
            raise ClusteringError(f"need 0 < k <= n, got k={k}, n={n}")

        # ---- seeding ---------------------------------------------------
        if initial_centroids is not None:
            C0 = np.asarray(initial_centroids, dtype=np.float64)
            if C0.shape != (k, d):
                raise ClusteringError(
                    f"initial centroids have shape {C0.shape}, expected {(k, d)}"
                )
            dC = bufs.add(device.to_device(C0))
        elif init == "k-means++":
            dC = bufs.add(kmeans_plus_plus_device(dV, k, rng))
        elif init == "random":
            dC = bufs.add(device.to_device(random_init(dV.data, k, rng)))
        else:
            raise ClusteringError(f"unknown init {init!r}")

        # ---- persistent buffers -----------------------------------------
        dVnorm = bufs.add(device.empty(n, dtype=np.float64))
        launch(compute_norms, grid_1d(n, block), dV, dVnorm, n_threads=n)
        dCnorm = bufs.add(device.empty(k, dtype=np.float64))
        if tile_rows is None:
            # every live/parked block can waste up to one allocator granule
            # to rounding, and the Lloyd loop keeps ~16 of them — budget the
            # tile from headroom the buckets can actually honor
            slack = 16 * MIN_BUCKET_BYTES
            budget = max(0, device.allocator.free_bytes - slack) // 4
            tile_rows = max(1, min(n, budget // max(1, k * 8)))
        elif tile_rows < 1:
            raise ClusteringError(f"tile_rows must be positive, got {tile_rows}")
        tile_rows = min(tile_rows, n)
        dS = bufs.add(device.empty((tile_rows, k), dtype=np.float64))
        dlabels = bufs.add(device.full(n, -1, dtype=np.int64))

        history: list[float] = []
        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            # centroid norms + Eq. 15 init + Eq. 16 gemm, row tiles of S
            launch(compute_norms, grid_1d(k, block), dC, dCnorm, n_threads=k)
            old = dlabels.data.copy()
            for lo in range(0, n, tile_rows):
                hi = min(n, lo + tile_rows)
                t = hi - lo
                dS_t = dS.view_rows(0, t)
                dVnorm_t = dVnorm.view_rows(lo, hi)
                dV_t = dV.view_rows(lo, hi)
                dlabels_t = dlabels.view_rows(lo, hi)
                if distance_method == "gemm":
                    launch(
                        init_distances, grid_1d(t, block),
                        dS_t, dVnorm_t, dCnorm, n_threads=t,
                    )
                    cublas.gemm(dV_t, dC, dS_t, alpha=-2.0, beta=1.0, transb=True)
                else:
                    launch(
                        direct_distances, grid_1d(t, block),
                        dV_t, dC, dS_t, n_threads=t,
                    )
                launch(argmin_rows, grid_1d(t, block), dS_t, dlabels_t, n_threads=t)
            changes = int(np.count_nonzero(dlabels.data != old))
            device.charge_kernel(
                "count_changes", flops=n, bytes_moved=2 * n * 8
            )
            device._record_d2h(8)

            # ---- centroid update: sort by label + segmented reduction ----
            dkeys = bufs.add(dlabels.copy())
            dvals = bufs.add(dV.copy())
            thrust.sort_by_key(dkeys, dvals)
            uniq, sums = thrust.reduce_by_key(dkeys, dvals)
            bufs.add(uniq)
            bufs.add(sums)
            ones = bufs.add(device.full(dkeys.size, 1.0))
            uniq2, counts_arr = thrust.reduce_by_key(dkeys, ones)
            bufs.add(uniq2)
            bufs.add(counts_arr)

            counts = np.zeros(k, dtype=np.int64)
            counts[uniq.data] = counts_arr.data.astype(np.int64)
            new_C = dC.data.copy()
            present = uniq.data
            new_C[present] = sums.data / counts[present, None]
            device.charge_kernel(
                "divide_centroids", flops=k * d, bytes_moved=3 * k * d * 8
            )

            # empty-cluster repair (host rule, same as the CPU path)
            new_C, labels_fixed, counts = relabel_empty_clusters(
                V_host if not isinstance(V, DeviceArray) else dV.data,
                new_C,
                dlabels.data,
                counts,
            )
            if labels_fixed is not dlabels.data:
                dlabels.data[...] = labels_fixed
            dC.data[...] = new_C

            for buf in (dkeys, dvals, uniq, uniq2, sums, ones, counts_arr):
                buf.free()

            history.append(_inertia(dV.data, dC.data, dlabels.data))
            if changes == 0:
                converged = True
                break

        # step 4: transfer the labeling result from GPU to CPU
        labels_host = dlabels.copy_to_host()
        centroids_host = dC.copy_to_host()
      finally:
        bufs.free_all()

    return KMeansResult(
        labels=labels_host,
        centroids=centroids_host,
        inertia=history[-1] if history else 0.0,
        n_iter=it,
        converged=converged,
        inertia_history=history,
    )
