"""Algorithm 4: parallel k-means on the (simulated) GPU.

The three phases of each Lloyd iteration map to device primitives exactly
as in the paper:

* **distances + labels** — ``S`` is initialized to ``||v_i||² + ||c_j||²``
  (Eq. 15) and completed with a cuBLAS gemm, ``S -= 2 V Cᵀ`` (Eq. 16),
  then a row-argmin picks the label.  By default the three steps run as a
  single **fused kernel** per row tile (``fused=True``): each tile of
  ``S`` is produced and consumed in one pass, and the label-change counter
  accumulates on-device, so the per-iteration label comparison kernel and
  its separate scalar readback disappear.  ``fused=False`` keeps the
  paper's discrete init/gemm/argmin sequence for ablation;
* **centroids** — by default (``centroid_update="spmm"``) the update is the
  sparse product ``C_sums = M V`` where ``M`` is the k×n one-hot CSR
  membership matrix built on-device from a label histogram +
  ``thrust::exclusive_scan`` (the row pointers *are* the cluster counts'
  prefix sums, so counts fall out for free) and a cursor scatter of point
  ids.  ``centroid_update="sort"`` keeps §IV.C's
  ``thrust::sort_by_key`` + ``reduce_by_key`` formulation: it pays an
  O(n·d) dataset copy and an O(n log n) sort every iteration, which the
  k-means ablation bench quantifies;
* **inertia** — with the fused pass the per-iteration inertia is computed
  by a charged device kernel into a persistent history buffer (one batched
  D2H after convergence) instead of an uncharged host sweep.

All knob combinations produce bit-identical labels, centroids, and inertia
histories: every path shares the same substrate arithmetic and differs only
in what the cost model charges.  Empty clusters are repaired with the same
deterministic relocation rule as the host implementation, keeping the two
paths bit-comparable.

Working memory is allocated once before the loop (a single
:class:`~repro.cuda.memory.BufferGroup`), so after warm-up a Lloyd
iteration performs **zero** device allocations on the default path — the
sort path's seven per-iteration temporaries live in a scoped group that
releases them through the caching allocator each trip.
"""

from __future__ import annotations

import numpy as np

from repro import cublas, thrust
from repro.cuda.allocator import MIN_BUCKET_BYTES
from repro.cuda.boundaries import mark_boundary
from repro.cuda.device import Device
from repro.cuda.kernel import Kernel, launch
from repro.cuda.launch import grid_1d
from repro.cuda.memory import BufferGroup, DeviceArray
from repro.cusparse.formats import autotune_spmm_format, convert_for_spmv
from repro.cusparse.matrices import DeviceCSR
from repro.cusparse.spmm import csrmm, spmm_any
from repro.errors import ClusteringError
from repro.kmeans.init import kmeans_plus_plus_device, random_init
from repro.kmeans.utils import (
    KMeansResult,
    inertia as _inertia,
    relabel_empty_clusters,
    validate_inputs,
)

# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

compute_norms = Kernel(
    name="compute_norms",
    body=lambda tid, V, out: out.__setitem__(
        tid, np.einsum("nd,nd->n", V[tid], V[tid])
    ),
    cost=lambda nt, V, out: (2.0 * V[:nt].size, V[:nt].nbytes + out.nbytes),
    kind="stream",
)

init_distances = Kernel(
    name="init_distances",
    body=lambda tid, S, Vnorm, Cnorm: S.__setitem__(
        tid, Vnorm[tid, None] + Cnorm[None, :]
    ),
    cost=lambda nt, S, Vnorm, Cnorm: (
        float(nt) * Cnorm.size,
        float(nt) * Cnorm.size * 8 + Vnorm.nbytes + Cnorm.nbytes,
    ),
    kind="stream",
)

argmin_rows = Kernel(
    name="argmin_rows",
    body=lambda tid, S, labels: labels.__setitem__(tid, np.argmin(S[tid], axis=1)),
    cost=lambda nt, S, labels: (
        float(nt) * S.shape[1],
        float(nt) * S.shape[1] * 8 + labels.nbytes,
    ),
    kind="stream",
)


def _direct_distances_body(tid, V, C, S):
    diff = V[tid][:, None, :] - C[None, :, :]
    S[tid] = np.einsum("tkd,tkd->tk", diff, diff)

#: the naive distance kernel: thread i re-streams all k centroids against
#: its point — 3·n·k·d flops but, critically, n·k·d element reads instead
#: of the gemm's O(n·d + k·d) (plus cache-blocked reuse).  This is the
#: formulation Algorithm 4 *replaces* with Eqs. 12-16; the distance
#: ablation bench quantifies the win.
direct_distances = Kernel(
    name="direct_distances",
    body=_direct_distances_body,
    cost=lambda nt, V, C, S: (
        3.0 * nt * C.shape[0] * C.shape[1],
        float(nt) * C.shape[0] * C.shape[1] * 8 + float(nt) * C.shape[0] * 8,
    ),
    kind="stream",
)


def _fused_assign_body(tid, S, V, C, Vnorm, Cnorm, labels, old, changes, reset):
    # Eq. 15 init, Eq. 16 gemm, row argmin, and the label-change count in
    # one pass over the tile.  The arithmetic is expression-for-expression
    # the unfused init_distances / cublas.gemm(alpha=-2, beta=1) /
    # argmin_rows sequence, so fusion changes charged time, never a bit.
    S[tid] = Vnorm[tid, None] + Cnorm[None, :]
    S[tid] = -2.0 * (V[tid] @ C.T) + 1.0 * S[tid]
    labels[tid] = np.argmin(S[tid], axis=1)
    if reset:
        changes[0] = 0
    changes[0] += np.count_nonzero(labels[tid] != old[tid])

#: fused distance + argmin + change-count tile pass: the gemm dominates,
#: so the kernel is compute-class "dense"; the S tile is produced and
#: consumed in registers/shared memory and only written once, which is the
#: memory-traffic saving over the three-kernel sequence.
fused_assign = Kernel(
    name="fused_assign",
    body=_fused_assign_body,
    cost=lambda nt, S, V, C, Vnorm, Cnorm, labels, old, changes, reset: (
        2.0 * nt * C.shape[0] * C.shape[1] + 2.0 * nt * C.shape[0] + float(nt),
        V[:nt].nbytes + C.nbytes + Vnorm.nbytes + Cnorm.nbytes
        + float(nt) * C.shape[0] * 8
        + 2.0 * nt * labels.itemsize + 8.0,
    ),
    kind="dense",
)


def _label_histogram_body(tid, labels, counts):
    # per-thread atomicAdd(counts[label[i]], 1) into a (k+1)-sized buffer;
    # the trailing slot stays zero so the exclusive scan of this buffer is
    # a complete CSR indptr (indptr[k] == n)
    counts[:] = 0
    counts[: counts.size - 1] = np.bincount(labels, minlength=counts.size - 1)

label_histogram = Kernel(
    name="label_histogram",
    body=_label_histogram_body,
    cost=lambda nt, labels, counts: (
        float(nt),
        labels[:nt].nbytes + 2.0 * counts.nbytes,
    ),
    kind="gather",
)


def _membership_scatter_body(tid, labels, indptr, indices):
    # thread i places its point id at indptr[label[i]] + atomic cursor; a
    # sequential tid-order placement is exactly a stable sort by label, so
    # the substrate uses argsort(kind="stable") — deterministic and
    # bit-aligned with the sort_by_key path's ordering
    indices[:] = np.argsort(labels, kind="stable")

membership_scatter = Kernel(
    name="membership_scatter",
    body=_membership_scatter_body,
    cost=lambda nt, labels, indptr, indices: (
        float(nt),
        labels[:nt].nbytes + indptr.nbytes + indices[:nt].nbytes,
    ),
    kind="gather",
)


def _tile_inertia_body(tid, V, C, labels, out, slot):
    diff = V[tid] - C[labels[tid]]
    out[slot] = np.einsum("nd,nd->", diff, diff)

#: charged replacement for the host inertia sweep: same einsum arithmetic
#: as kmeans.utils.inertia, writing into a persistent device history
#: buffer that comes down once after convergence
tile_inertia = Kernel(
    name="tile_inertia",
    body=_tile_inertia_body,
    cost=lambda nt, V, C, labels, out, slot: (
        3.0 * V[:nt].size + float(nt),
        V[:nt].nbytes + labels[:nt].nbytes + C.nbytes + 8.0,
    ),
    kind="stream",
)


def kmeans_device(
    device: Device,
    V: np.ndarray | DeviceArray,
    k: int,
    init: str = "k-means++",
    max_iter: int = 300,
    seed: int | None = 0,
    initial_centroids: np.ndarray | None = None,
    block: int = 256,
    tile_rows: int | None = None,
    distance_method: str = "gemm",
    centroid_update: str = "spmm",
    fused: bool = True,
    spmm_format: str = "auto",
) -> KMeansResult:
    """Run Algorithm 4 on ``device``; returns a host-side result.

    Parameters
    ----------
    V:
        Host ``(n, d)`` data (transferred, step 1 of Algorithm 4) or an
        already device-resident array.
    k:
        Number of clusters.
    init:
        'k-means++' (Algorithm 5 on the device) or 'random'.
    initial_centroids:
        Explicit seeds; bypasses ``init`` (used for CPU/GPU parity tests).
    tile_rows:
        Rows of the distance matrix materialized at once.  ``None`` sizes
        the tile automatically: the full ``n × k`` matrix when it fits in
        a quarter of free device memory, otherwise the largest tile that
        does — which is what lets the pipeline run problems whose distance
        matrix alone exceeds the K20c's 5 GB ("extremely large input
        sizes", paper §I).  Tiling changes memory traffic, never results.
    distance_method:
        'gemm' (default) — the paper's BLAS-3 expansion, Eqs. 12-16;
        'direct' — the naive per-pair distance kernel it replaces.
        Identical results; the ablation bench compares their costs.
    centroid_update:
        'spmm' (default) — one-hot membership CSR built on-device
        (histogram + exclusive scan + cursor scatter) and a single
        ``cusparseDcsrmm`` for the centroid sums, counts read off the row
        pointers; 'sort' — the paper's §IV.C sort + segmented reduction.
        Identical results; the k-means ablation bench compares their costs.
    fused:
        Fuse Eq. 15 init, the Eq. 16 gemm, the row argmin, and the
        label-change count into one tile kernel, with inertia computed by
        a charged device kernel into a persistent history buffer.
        ``False`` keeps the discrete kernel sequence (and the host inertia
        sweep) for ablation.  Applies to ``distance_method='gemm'`` only;
        the 'direct' kernel always runs unfused.
    spmm_format:
        Membership-matrix format for the ``centroid_update='spmm'`` path:
        'auto' (default) runs the SpMM cost-model autotuner on the first
        iteration's row-length stats (the one-hot membership has exactly
        one nonzero per column, so the near-uniform ELL layout usually
        wins); or force 'csr', 'ell', 'hyb'.  All formats share the
        reference substrate arithmetic — centroid sums are bit-identical,
        only the charged kernel/conversion time changes.
    """
    if distance_method not in ("gemm", "direct"):
        raise ClusteringError(
            f"distance_method must be 'gemm' or 'direct', got {distance_method!r}"
        )
    if centroid_update not in ("spmm", "sort"):
        raise ClusteringError(
            f"centroid_update must be 'spmm' or 'sort', got {centroid_update!r}"
        )
    if spmm_format not in ("auto", "csr", "ell", "hyb"):
        raise ClusteringError(
            f"spmm_format must be 'auto', 'csr', 'ell' or 'hyb', "
            f"got {spmm_format!r}"
        )
    use_fused = bool(fused) and distance_method == "gemm"
    rng = np.random.default_rng(seed)
    # every buffer this call creates is registered so a faulted sub-step
    # (injected OOM / transfer / kernel error) releases the lot; the
    # success path's explicit frees are idempotent and stay authoritative
    bufs = BufferGroup()
    with device.stage("kmeans"):
      try:
        if isinstance(V, DeviceArray):
            dV = V  # caller-owned: never registered, never freed here
            V_host = dV.data  # simulation substrate view, no transfer
        else:
            V_host = validate_inputs(V, k)
            dV = bufs.add(device.to_device(V_host))
        n, d = dV.shape
        if not 0 < k <= n:
            raise ClusteringError(f"need 0 < k <= n, got k={k}, n={n}")

        # ---- seeding ---------------------------------------------------
        if initial_centroids is not None:
            C0 = np.asarray(initial_centroids, dtype=np.float64)
            if C0.shape != (k, d):
                raise ClusteringError(
                    f"initial centroids have shape {C0.shape}, expected {(k, d)}"
                )
            dC = bufs.add(device.to_device(C0))
        elif init == "k-means++":
            dC = bufs.add(kmeans_plus_plus_device(dV, k, rng))
        elif init == "random":
            dC = bufs.add(device.to_device(random_init(dV.data, k, rng)))
        else:
            raise ClusteringError(f"unknown init {init!r}")

        # ---- persistent buffers (allocated once, reused every trip) ----
        dVnorm = bufs.add(device.empty(n, dtype=np.float64))
        launch(compute_norms, grid_1d(n, block), dV, dVnorm, n_threads=n)
        dCnorm = bufs.add(device.empty(k, dtype=np.float64))
        dlabels = bufs.add(device.full(n, -1, dtype=np.int64))
        dOld = dChanges = dHist = None
        if use_fused:
            dOld = bufs.add(device.empty(n, dtype=np.int64))
            dChanges = bufs.add(device.empty(1, dtype=np.int64))
            dHist = bufs.add(device.empty(max_iter, dtype=np.float64))
        membership = None
        if centroid_update == "spmm":
            dCounts = bufs.add(device.empty(k + 1, dtype=np.int64))
            dIndptr = bufs.add(device.empty(k + 1, dtype=np.int64))
            dIdx = bufs.add(device.empty(n, dtype=np.int64))
            dOnes = bufs.add(device.full(n, 1.0))
            dSums = bufs.add(device.empty((k, d), dtype=np.float64))
            membership = DeviceCSR(
                indptr=dIndptr, indices=dIdx, val=dOnes, shape=(k, n)
            )
        #: resolved on the first iteration's row stats when 'auto'
        spmm_fmt = None if spmm_format == "auto" else spmm_format
        spmm_decision = None
        if tile_rows is None:
            # every live/parked block can waste up to one allocator granule
            # to rounding, and the Lloyd loop keeps ~24 of them — budget the
            # tile from headroom the buckets can actually honor
            slack = 24 * MIN_BUCKET_BYTES
            budget = max(0, device.allocator.free_bytes - slack) // 4
            tile_rows = max(1, min(n, budget // max(1, k * 8)))
        elif tile_rows < 1:
            raise ClusteringError(f"tile_rows must be positive, got {tile_rows}")
        tile_rows = min(tile_rows, n)
        dS = bufs.add(device.empty((tile_rows, k), dtype=np.float64))

        history: list[float] = []
        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            # labels/centroids are consistent between Lloyd trips — a
            # preemption-safe point for the serving scheduler
            mark_boundary(device)
            # centroid norms + distances + labels, row tiles of S
            launch(compute_norms, grid_1d(k, block), dC, dCnorm, n_threads=k)
            if use_fused:
                thrust.copy(dlabels, dOld)
            else:
                old = dlabels.data.copy()
            for lo in range(0, n, tile_rows):
                hi = min(n, lo + tile_rows)
                t = hi - lo
                dS_t = dS.view_rows(0, t)
                dVnorm_t = dVnorm.view_rows(lo, hi)
                dV_t = dV.view_rows(lo, hi)
                dlabels_t = dlabels.view_rows(lo, hi)
                if use_fused:
                    launch(
                        fused_assign, grid_1d(t, block),
                        dS_t, dV_t, dC, dVnorm_t, dCnorm,
                        dlabels_t, dOld.view_rows(lo, hi), dChanges, lo == 0,
                        n_threads=t,
                    )
                elif distance_method == "gemm":
                    launch(
                        init_distances, grid_1d(t, block),
                        dS_t, dVnorm_t, dCnorm, n_threads=t,
                    )
                    cublas.gemm(dV_t, dC, dS_t, alpha=-2.0, beta=1.0, transb=True)
                    launch(
                        argmin_rows, grid_1d(t, block), dS_t, dlabels_t,
                        n_threads=t,
                    )
                else:
                    launch(
                        direct_distances, grid_1d(t, block),
                        dV_t, dC, dS_t, n_threads=t,
                    )
                    launch(
                        argmin_rows, grid_1d(t, block), dS_t, dlabels_t,
                        n_threads=t,
                    )
            if use_fused:
                # the change count accumulated on-device; one latency-bound
                # scalar readback decides convergence
                device.charge_scalar_d2h(8)
                changes = int(dChanges.data[0])
            else:
                changes = int(np.count_nonzero(dlabels.data != old))
                device.charge_kernel(
                    "count_changes", flops=n, bytes_moved=2 * n * 8
                )
                device.charge_scalar_d2h(8)

            if centroid_update == "spmm":
                # ---- centroid update: one-hot membership SpMM ------------
                # histogram -> exclusive scan == CSR row pointers (and the
                # cluster counts), cursor scatter of point ids, then a
                # single csrmm for all centroid sums — no dataset copy/sort
                launch(
                    label_histogram, grid_1d(n, block), dlabels, dCounts,
                    n_threads=n,
                )
                thrust.exclusive_scan(dCounts, out=dIndptr)
                launch(
                    membership_scatter, grid_1d(n, block),
                    dlabels, dIndptr, dIdx, n_threads=n,
                )
                if spmm_fmt is None:
                    # rank CSR/ELL/HYB once on the first membership's row
                    # lengths; the one-nonzero-per-column structure barely
                    # shifts between iterations, so the decision holds
                    spmm_decision = autotune_spmm_format(
                        dIndptr.data, device.cost, p=d, conversion_uses=1
                    )
                    spmm_fmt = spmm_decision.format
                if spmm_fmt == "csr":
                    csrmm(membership, dV, C=dSums, beta=0.0)
                else:
                    # conversion kernel + padded buffers charged per trip;
                    # the autotuner already priced that against the csrmm
                    # it replaces
                    m_op = convert_for_spmv(
                        membership, spmm_fmt,
                        hyb_width=(
                            spmm_decision.hyb_width
                            if spmm_decision is not None else None
                        ),
                    )
                    try:
                        spmm_any(m_op, dV, C=dSums, beta=0.0)
                    finally:
                        m_op.free()
                counts = np.diff(dIndptr.data)  # row-pointer mirror
                present = np.flatnonzero(counts > 0)
                new_C = dC.data.copy()
                new_C[present] = dSums.data[present] / counts[present, None]
                device.charge_kernel(
                    "divide_centroids", flops=k * d, bytes_moved=3 * k * d * 8
                )
            else:
                # ---- centroid update: sort by label + segmented reduction
                # (§IV.C): copies the dataset, sorts it, and allocates seven
                # temporaries per trip — scoped so they release every
                # iteration instead of accumulating in the outer group
                with BufferGroup() as iter_bufs:
                    dkeys = iter_bufs.add(dlabels.copy())
                    dvals = iter_bufs.add(dV.copy())
                    thrust.sort_by_key(dkeys, dvals)
                    uniq, sums = thrust.reduce_by_key(dkeys, dvals)
                    iter_bufs.add(uniq)
                    iter_bufs.add(sums)
                    ones = iter_bufs.add(device.full(dkeys.size, 1.0))
                    uniq2, counts_arr = thrust.reduce_by_key(dkeys, ones)
                    iter_bufs.add(uniq2)
                    iter_bufs.add(counts_arr)

                    counts = np.zeros(k, dtype=np.int64)
                    counts[uniq.data] = counts_arr.data.astype(np.int64)
                    new_C = dC.data.copy()
                    present = uniq.data
                    new_C[present] = sums.data / counts[present, None]
                    device.charge_kernel(
                        "divide_centroids", flops=k * d, bytes_moved=3 * k * d * 8
                    )

            # empty-cluster repair (host rule, same as the CPU path)
            new_C, labels_fixed, counts = relabel_empty_clusters(
                V_host if not isinstance(V, DeviceArray) else dV.data,
                new_C,
                dlabels.data,
                counts,
            )
            if labels_fixed is not dlabels.data:
                dlabels.data[...] = labels_fixed
            dC.data[...] = new_C

            if use_fused:
                launch(
                    tile_inertia, grid_1d(n, block),
                    dV, dC, dlabels, dHist, it - 1, n_threads=n,
                )
            else:
                history.append(_inertia(dV.data, dC.data, dlabels.data))
            if changes == 0:
                converged = True
                break

        if use_fused and it > 0:
            # batched inertia readback: one D2H for the whole history
            history = [float(x) for x in dHist.view_rows(0, it).copy_to_host()]

        # step 4: transfer the labeling result from GPU to CPU
        labels_host = dlabels.copy_to_host()
        centroids_host = dC.copy_to_host()
      finally:
        bufs.free_all()

    return KMeansResult(
        labels=labels_host,
        centroids=centroids_host,
        inertia=history[-1] if history else 0.0,
        n_iter=it,
        converged=converged,
        inertia_history=history,
    )
