"""Compressed Sparse Row (CSR) format.

CSR stores the nonzero values row by row, with a prefix-sum ``indptr`` array
delimiting rows (paper §IV.A).  It is the format the eigensolver's repeated
``csrmv`` runs on, so ``matvec`` here is the hot reference kernel: products
are formed vectorized and scatter-added by row with ``bincount`` on a cached
row-expansion array (amortized across the thousands of Lanczos iterations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SparseFormatError, SparseValueError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csc import CSCMatrix
    from repro.sparse.bsr import BSRMatrix


class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Parameters
    ----------
    indptr:
        Length ``n_rows + 1`` prefix sums; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        Column indices, length ``nnz``.
    data:
        Nonzero values, length ``nnz``.
    shape:
        ``(n_rows, n_cols)``.
    """

    format = "csr"

    def __init__(self, indptr, indices, data, shape: tuple[int, int], check: bool = True):
        self.indptr = np.asarray(indptr, dtype=np.int64).ravel()
        self.indices = np.asarray(indices, dtype=np.int64).ravel()
        self.data = np.asarray(data, dtype=np.float64).ravel()
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise SparseFormatError(f"invalid shape {shape!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        self._row_expansion: np.ndarray | None = None
        if check:
            self._validate()

    def _validate(self) -> None:
        n, m = self.shape
        if self.indptr.size != n + 1:
            raise SparseFormatError(
                f"indptr length {self.indptr.size} != n_rows+1 = {n + 1}"
            )
        if self.indptr.size and self.indptr[0] != 0:
            raise SparseFormatError(f"indptr[0] must be 0, got {self.indptr[0]}")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise SparseFormatError(
                f"indptr[-1]={self.indptr[-1]} != nnz={self.indices.size}"
            )
        if self.indices.size != self.data.size:
            raise SparseFormatError(
                f"indices/data length mismatch: {self.indices.size} vs {self.data.size}"
            )
        if self.indices.size:
            cmin, cmax = self.indices.min(), self.indices.max()
            if cmin < 0 or cmax >= m:
                raise SparseFormatError(
                    f"column index out of range [0, {m}): found [{cmin}, {cmax}]"
                )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __repr__(self) -> str:
        return f"<CSRMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz}>"

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(),
            self.shape, check=False,
        )

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def _rows(self) -> np.ndarray:
        """Expanded per-nonzero row indices (cached)."""
        if self._row_expansion is None or self._row_expansion.size != self.nnz:
            self._row_expansion = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), self.row_lengths()
            )
        return self._row_expansion

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            self._rows().copy(), self.indices.copy(), self.data.copy(),
            self.shape, check=False,
        )

    def to_csc(self) -> "CSCMatrix":
        return self.to_coo().to_csc()

    def to_csr(self) -> "CSRMatrix":
        return self

    def to_bsr(self, block_size: int) -> "BSRMatrix":
        from repro.sparse.bsr import BSRMatrix

        return BSRMatrix.from_csr(self, block_size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        np.add.at(out, (self._rows(), self.indices), self.data)
        return out

    def transpose(self) -> "CSRMatrix":
        """Aᵀ as CSR (equivalently: reinterpret as CSC and recompress)."""
        return self.to_coo().transpose().to_csr()

    @property
    def T(self) -> "CSRMatrix":
        return self.transpose()

    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with column indices sorted within each row."""
        coo = self.to_coo()
        return coo.to_csr()  # coo->csr sorts by (row, col)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` — the reference host ``csrmv``."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.shape[1]:
            raise SparseValueError(
                f"matvec: matrix is {self.shape}, x has length {x.size}"
            )
        y = np.bincount(
            self._rows(), weights=self.data * x[self.indices], minlength=self.shape[0]
        )
        if out is not None:
            np.copyto(out, y)
            return out
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``y = Aᵀ @ x`` without materializing the transpose."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.shape[0]:
            raise SparseValueError(
                f"rmatvec: matrix is {self.shape}, x has length {x.size}"
            )
        return np.bincount(
            self.indices, weights=self.data * x[self._rows()], minlength=self.shape[1]
        )

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """``Y = A @ X`` for dense ``X`` (n_cols × p), one column at a time
        fused: products scattered per row with ``np.add.at``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.shape[1]:
            raise SparseValueError(
                f"matmat: matrix is {self.shape}, X is {X.shape}"
            )
        Y = np.zeros((self.shape[0], X.shape[1]))
        np.add.at(Y, self._rows(), self.data[:, None] * X[self.indices])
        return Y

    def row_sums(self) -> np.ndarray:
        return np.bincount(self._rows(), weights=self.data, minlength=self.shape[0])

    def scale_rows(self, s: np.ndarray) -> "CSRMatrix":
        """Return ``diag(s) @ A``."""
        s = np.asarray(s, dtype=np.float64).ravel()
        if s.size != self.shape[0]:
            raise SparseValueError(
                f"scale_rows: matrix has {self.shape[0]} rows, s has {s.size}"
            )
        return CSRMatrix(
            self.indptr, self.indices, self.data * s[self._rows()],
            self.shape, check=False,
        )

    def scale_cols(self, s: np.ndarray) -> "CSRMatrix":
        """Return ``A @ diag(s)``."""
        s = np.asarray(s, dtype=np.float64).ravel()
        if s.size != self.shape[1]:
            raise SparseValueError(
                f"scale_cols: matrix has {self.shape[1]} cols, s has {s.size}"
            )
        return CSRMatrix(
            self.indptr, self.indices, self.data * s[self.indices],
            self.shape, check=False,
        )

    def diagonal(self) -> np.ndarray:
        k = min(self.shape)
        mask = self._rows() == self.indices
        out = np.zeros(k)
        np.add.at(out, self.indices[mask], self.data[mask])
        return out

    def getrow(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise SparseValueError(f"row {i} out of range for {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def add(self, other: "CSRMatrix") -> "CSRMatrix":
        """Elementwise sum with another CSR matrix of the same shape."""
        if self.shape != other.shape:
            raise SparseValueError(f"add: shapes {self.shape} vs {other.shape}")
        from repro.sparse.coo import COOMatrix

        row = np.concatenate([self._rows(), other._rows()])
        col = np.concatenate([self.indices, other.indices])
        dat = np.concatenate([self.data, other.data])
        return COOMatrix(row, col, dat, self.shape, check=False).sum_duplicates().to_csr()

    def scaled(self, alpha: float) -> "CSRMatrix":
        return CSRMatrix(
            self.indptr, self.indices, self.data * alpha, self.shape, check=False
        )
