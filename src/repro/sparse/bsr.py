"""Block Compressed Sparse Row (BSR) format.

BSR tiles the matrix into dense ``b x b`` blocks and stores a CSR structure
over the block grid.  Listed as supported in paper §IV.A; useful when the
graph has clustered vertex numbering so nonzeros coalesce into blocks.
Dimensions must be padded to a multiple of the block size by the caller
(:meth:`BSRMatrix.from_csr` handles ragged edges by zero-padding).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SparseFormatError, SparseValueError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csr import CSRMatrix


class BSRMatrix:
    """A sparse matrix of dense blocks in block-CSR layout.

    Parameters
    ----------
    indptr:
        Length ``n_block_rows + 1`` prefix sums over block rows.
    indices:
        Block-column indices, length ``n_blocks``.
    blocks:
        Dense block values, shape ``(n_blocks, b, b)``.
    shape:
        Logical (unpadded) matrix shape.
    """

    format = "bsr"

    def __init__(self, indptr, indices, blocks, shape: tuple[int, int], check: bool = True):
        self.indptr = np.asarray(indptr, dtype=np.int64).ravel()
        self.indices = np.asarray(indices, dtype=np.int64).ravel()
        self.blocks = np.asarray(blocks, dtype=np.float64)
        if self.blocks.ndim != 3 or self.blocks.shape[1] != self.blocks.shape[2]:
            raise SparseFormatError(
                f"blocks must be (n_blocks, b, b), got {self.blocks.shape}"
            )
        self.shape = (int(shape[0]), int(shape[1]))
        if check:
            self._validate()

    def _validate(self) -> None:
        b = self.block_size
        n_brows = self.indptr.size - 1
        n_bcols = -(-self.shape[1] // b)
        if n_brows != -(-self.shape[0] // b):
            raise SparseFormatError(
                f"indptr implies {n_brows} block rows but shape {self.shape} "
                f"with block size {b} needs {-(-self.shape[0] // b)}"
            )
        if self.indptr.size and self.indptr[0] != 0:
            raise SparseFormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise SparseFormatError(
                f"indptr[-1]={self.indptr[-1]} != n_blocks={self.indices.size}"
            )
        if self.indices.size != self.blocks.shape[0]:
            raise SparseFormatError("indices/blocks count mismatch")
        if self.indices.size:
            cmin, cmax = self.indices.min(), self.indices.max()
            if cmin < 0 or cmax >= n_bcols:
                raise SparseFormatError(
                    f"block col index out of range [0, {n_bcols}): "
                    f"found [{cmin}, {cmax}]"
                )

    @property
    def block_size(self) -> int:
        return self.blocks.shape[1]

    @property
    def n_blocks(self) -> int:
        return self.blocks.shape[0]

    @property
    def nnz(self) -> int:
        """Stored scalar entries (including explicit zeros inside blocks)."""
        return self.blocks.size

    def __repr__(self) -> str:
        return (
            f"<BSRMatrix {self.shape[0]}x{self.shape[1]} "
            f"blocks={self.n_blocks}x{self.block_size}²>"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: "CSRMatrix", block_size: int) -> "BSRMatrix":
        """Tile a CSR matrix into BSR (``cusparseDcsr2bsr``)."""
        if block_size <= 0:
            raise SparseValueError(f"block size must be positive, got {block_size}")
        n, m = csr.shape
        b = block_size
        n_brows = -(-n // b)
        coo = csr.to_coo()
        brow = coo.row // b
        bcol = coo.col // b
        key = brow * (-(-m // b)) + bcol
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        if key_s.size:
            starts = np.concatenate(([0], np.flatnonzero(np.diff(key_s)) + 1))
            uniq = key_s[starts]
        else:
            starts = np.empty(0, dtype=np.int64)
            uniq = np.empty(0, dtype=np.int64)
        n_bcols = -(-m // b)
        ubrow = uniq // n_bcols
        ubcol = uniq % n_bcols
        blocks = np.zeros((uniq.size, b, b))
        # block id per nonzero = position of its key among unique keys
        block_of = np.searchsorted(uniq, key_s)
        r_in = coo.row[order] % b
        c_in = coo.col[order] % b
        np.add.at(blocks, (block_of, r_in, c_in), coo.data[order])
        indptr = np.zeros(n_brows + 1, dtype=np.int64)
        np.add.at(indptr, ubrow + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, ubcol, blocks, csr.shape, check=False)

    def to_csr(self) -> "CSRMatrix":
        """Expand blocks back to scalar CSR, dropping stored zeros."""
        from repro.sparse.coo import COOMatrix

        b = self.block_size
        n_brows = self.indptr.size - 1
        brow = np.repeat(np.arange(n_brows, dtype=np.int64), np.diff(self.indptr))
        # scalar coordinates for every block entry
        shape3 = self.blocks.shape
        rows = np.broadcast_to(
            brow[:, None, None] * b + np.arange(b)[None, :, None], shape3
        ).ravel()
        cols = np.broadcast_to(
            self.indices[:, None, None] * b + np.arange(b)[None, None, :], shape3
        ).ravel()
        vals = self.blocks.ravel()
        mask = vals != 0
        in_range = (rows < self.shape[0]) & (cols < self.shape[1])
        keep = mask & in_range
        coo = COOMatrix(rows[keep], cols[keep], vals[keep], self.shape, check=False)
        return coo.to_csr()

    def to_dense(self) -> np.ndarray:
        return self.to_csr().to_dense()

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` with block-level gather + batched matvec."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.shape[1]:
            raise SparseValueError(
                f"matvec: matrix is {self.shape}, x has length {x.size}"
            )
        b = self.block_size
        n_brows = self.indptr.size - 1
        m_pad = (-(-self.shape[1] // b)) * b
        x_pad = np.zeros(m_pad)
        x_pad[: x.size] = x
        xb = x_pad.reshape(-1, b)
        # (n_blocks, b) = block @ x_block for every block at once
        prod = np.einsum("nij,nj->ni", self.blocks, xb[self.indices])
        brow = np.repeat(np.arange(n_brows, dtype=np.int64), np.diff(self.indptr))
        yb = np.zeros((n_brows, b))
        np.add.at(yb, brow, prod)
        return yb.ravel()[: self.shape[0]]
