"""Sparse matrix constructors."""

from __future__ import annotations

import numpy as np

from repro.errors import SparseFormatError, SparseValueError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def from_edge_list(
    edges: np.ndarray,
    weights: np.ndarray | None = None,
    n_nodes: int | None = None,
    symmetrize: bool = True,
) -> COOMatrix:
    """Build an adjacency matrix from an ``(nnz, 2)`` edge list.

    Parameters
    ----------
    edges:
        Integer array of node index pairs.  Self-loops are dropped.
    weights:
        Optional per-edge weights (default 1.0).
    n_nodes:
        Number of nodes; inferred as ``edges.max() + 1`` when omitted.
    symmetrize:
        Mirror each edge so the graph is undirected (duplicate mirrored
        pairs are summed).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise SparseValueError(f"edge list must be (nnz, 2), got {edges.shape}")
    if weights is None:
        weights = np.ones(edges.shape[0])
    else:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.size != edges.shape[0]:
            raise SparseValueError(
                f"{edges.shape[0]} edges but {weights.size} weights"
            )
    if n_nodes is None:
        n_nodes = int(edges.max()) + 1 if edges.size else 0
    keep = edges[:, 0] != edges[:, 1]
    edges = edges[keep]
    weights = weights[keep]
    row, col = edges[:, 0], edges[:, 1]
    if symmetrize:
        row, col = np.concatenate([row, col]), np.concatenate([col, row])
        weights = np.concatenate([weights, weights])
    coo = COOMatrix(row, col, weights, (n_nodes, n_nodes))
    return coo.sum_duplicates() if symmetrize else coo


def diags(d: np.ndarray) -> CSRMatrix:
    """Diagonal matrix from a vector, as CSR."""
    d = np.asarray(d, dtype=np.float64).ravel()
    n = d.size
    indptr = np.arange(n + 1, dtype=np.int64)
    indices = np.arange(n, dtype=np.int64)
    return CSRMatrix(indptr, indices, d.copy(), (n, n), check=False)


def identity(n: int) -> CSRMatrix:
    """The n×n identity, as CSR."""
    if n < 0:
        raise SparseFormatError(f"negative size {n}")
    return diags(np.ones(n))


def random_sparse(
    n: int,
    m: int,
    density: float,
    rng: np.random.Generator | None = None,
    symmetric: bool = False,
) -> COOMatrix:
    """A random sparse matrix with roughly ``density`` fill, values U(0, 1).

    With ``symmetric=True`` (requires ``n == m``) the result is the
    symmetrized upper triangle — a valid similarity matrix.
    """
    if not 0.0 <= density <= 1.0:
        raise SparseValueError(f"density must be in [0, 1], got {density}")
    if symmetric and n != m:
        raise SparseValueError("symmetric matrix must be square")
    rng = np.random.default_rng() if rng is None else rng
    nnz = int(round(density * n * m))
    if nnz == 0:
        return COOMatrix(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), (n, m)
        )
    flat = rng.choice(n * m, size=min(nnz, n * m), replace=False)
    row, col = flat // m, flat % m
    data = rng.random(row.size)
    coo = COOMatrix(row, col, data, (n, m), check=False)
    if symmetric:
        mask = row <= col
        coo = COOMatrix(row[mask], col[mask], data[mask], (n, m), check=False)
        mirrored = COOMatrix(
            np.concatenate([coo.row, coo.col[coo.row != coo.col]]),
            np.concatenate([coo.col, coo.row[coo.row != coo.col]]),
            np.concatenate([coo.data, coo.data[coo.row != coo.col]]),
            (n, m),
            check=False,
        )
        return mirrored.sum_duplicates()
    return coo.sum_duplicates()
