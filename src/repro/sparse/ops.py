"""Format-generic sparse operations."""

from __future__ import annotations

import numpy as np

from repro.errors import SparseValueError
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

AnySparse = COOMatrix | CSRMatrix | CSCMatrix


def row_sums(A: AnySparse) -> np.ndarray:
    """Per-row sums for any format (degree vector of a similarity graph)."""
    if isinstance(A, (COOMatrix, CSRMatrix)):
        return A.row_sums()
    if isinstance(A, CSCMatrix):
        return np.bincount(A.indices, weights=A.data, minlength=A.shape[0])
    raise SparseValueError(f"unsupported sparse type {type(A).__name__}")


def scale_rows(A: AnySparse, s: np.ndarray) -> AnySparse:
    """``diag(s) @ A`` preserving the input format."""
    if isinstance(A, (COOMatrix, CSRMatrix)):
        return A.scale_rows(s)
    if isinstance(A, CSCMatrix):
        s = np.asarray(s, dtype=np.float64).ravel()
        if s.size != A.shape[0]:
            raise SparseValueError(
                f"scale_rows: matrix has {A.shape[0]} rows, s has {s.size}"
            )
        return CSCMatrix(A.indptr, A.indices, A.data * s[A.indices], A.shape, check=False)
    raise SparseValueError(f"unsupported sparse type {type(A).__name__}")


def scale_cols(A: AnySparse, s: np.ndarray) -> AnySparse:
    """``A @ diag(s)`` preserving the input format."""
    s = np.asarray(s, dtype=np.float64).ravel()
    if s.size != A.shape[1]:
        raise SparseValueError(
            f"scale_cols: matrix has {A.shape[1]} cols, s has {s.size}"
        )
    if isinstance(A, COOMatrix):
        return COOMatrix(A.row, A.col, A.data * s[A.col], A.shape, check=False)
    if isinstance(A, CSRMatrix):
        return A.scale_cols(s)
    if isinstance(A, CSCMatrix):
        return CSCMatrix(
            A.indptr, A.indices, A.data * s[A._cols()], A.shape, check=False
        )
    raise SparseValueError(f"unsupported sparse type {type(A).__name__}")


def spmm(A: AnySparse, X: np.ndarray) -> np.ndarray:
    """Sparse × dense product ``A @ X`` for any format."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        return A.matvec(X)
    if isinstance(A, CSRMatrix):
        return A.matmat(X)
    return A.to_csr().matmat(X)
