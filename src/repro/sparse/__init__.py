"""Sparse matrix formats, written from scratch.

The paper stores the similarity graph in Coordinate (COO) format during
construction and converts to Compressed Sparse Row (CSR) for the
eigensolver's matrix-vector products; CSC and BSR are "also supported in our
implementation" (§IV.A).  This subpackage provides all four with validated
constructors, conversions, and vectorized reference kernels — no scipy.

These are *host-side* structures; their device-resident counterparts live in
``repro.cusparse``.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.bsr import BSRMatrix
from repro.sparse.construct import (
    diags,
    from_edge_list,
    identity,
    random_sparse,
)
from repro.sparse.ops import spmm, row_sums, scale_rows, scale_cols

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "BSRMatrix",
    "diags",
    "from_edge_list",
    "identity",
    "random_sparse",
    "spmm",
    "row_sums",
    "scale_rows",
    "scale_cols",
]
