"""Compressed Sparse Column (CSC) format.

The column-major dual of CSR; ``indptr`` delimits columns and ``indices``
holds row indices.  Supported because the paper lists it (§IV.A); the
pipeline itself prefers CSR for SpMV.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SparseFormatError, SparseValueError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.coo import COOMatrix
    from repro.sparse.csr import CSRMatrix


class CSCMatrix:
    """A sparse matrix in compressed sparse column format."""

    format = "csc"

    def __init__(self, indptr, indices, data, shape: tuple[int, int], check: bool = True):
        self.indptr = np.asarray(indptr, dtype=np.int64).ravel()
        self.indices = np.asarray(indices, dtype=np.int64).ravel()
        self.data = np.asarray(data, dtype=np.float64).ravel()
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise SparseFormatError(f"invalid shape {shape!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        self._col_expansion: np.ndarray | None = None
        if check:
            self._validate()

    def _validate(self) -> None:
        n, m = self.shape
        if self.indptr.size != m + 1:
            raise SparseFormatError(
                f"indptr length {self.indptr.size} != n_cols+1 = {m + 1}"
            )
        if self.indptr.size and self.indptr[0] != 0:
            raise SparseFormatError(f"indptr[0] must be 0, got {self.indptr[0]}")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise SparseFormatError(
                f"indptr[-1]={self.indptr[-1]} != nnz={self.indices.size}"
            )
        if self.indices.size != self.data.size:
            raise SparseFormatError(
                f"indices/data length mismatch: {self.indices.size} vs {self.data.size}"
            )
        if self.indices.size:
            rmin, rmax = self.indices.min(), self.indices.max()
            if rmin < 0 or rmax >= n:
                raise SparseFormatError(
                    f"row index out of range [0, {n}): found [{rmin}, {rmax}]"
                )

    @property
    def nnz(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __repr__(self) -> str:
        return f"<CSCMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz}>"

    def copy(self) -> "CSCMatrix":
        return CSCMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(),
            self.shape, check=False,
        )

    def col_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def _cols(self) -> np.ndarray:
        if self._col_expansion is None or self._col_expansion.size != self.nnz:
            self._col_expansion = np.repeat(
                np.arange(self.shape[1], dtype=np.int64), self.col_lengths()
            )
        return self._col_expansion

    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            self.indices.copy(), self._cols().copy(), self.data.copy(),
            self.shape, check=False,
        )

    def to_csr(self) -> "CSRMatrix":
        return self.to_coo().to_csr()

    def to_csc(self) -> "CSCMatrix":
        return self

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        np.add.at(out, (self.indices, self._cols()), self.data)
        return out

    def transpose(self) -> "CSCMatrix":
        """Aᵀ as CSC — the CSR arrays of A reinterpreted column-wise."""
        return self.to_coo().transpose().to_csc()

    @property
    def T(self) -> "CSCMatrix":
        return self.transpose()

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` via column-scaled scatter into rows."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.shape[1]:
            raise SparseValueError(
                f"matvec: matrix is {self.shape}, x has length {x.size}"
            )
        y = np.bincount(
            self.indices, weights=self.data * x[self._cols()], minlength=self.shape[0]
        )
        if out is not None:
            np.copyto(out, y)
            return out
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``y = Aᵀ @ x`` — a gather per column (reduceat-friendly layout)."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.shape[0]:
            raise SparseValueError(
                f"rmatvec: matrix is {self.shape}, x has length {x.size}"
            )
        return np.bincount(
            self._cols(), weights=self.data * x[self.indices], minlength=self.shape[1]
        )

    def col_sums(self) -> np.ndarray:
        return np.bincount(self._cols(), weights=self.data, minlength=self.shape[1])

    def getcol(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column ``j``."""
        if not 0 <= j < self.shape[1]:
            raise SparseValueError(f"col {j} out of range for {self.shape}")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]
