"""Coordinate (COO) sparse matrix format.

COO stores every nonzero as a ``(row, col, value)`` triple across three
parallel ``nnz``-length arrays — "the simplest sparse matrix representation"
(paper §IV.A) and the natural output of parallel similarity construction,
where thread *i* writes edge *i*'s value independently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SparseFormatError, SparseValueError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.csc import CSCMatrix
    from repro.sparse.csr import CSRMatrix


class COOMatrix:
    """A sparse matrix in coordinate format.

    Parameters
    ----------
    row, col:
        Integer index arrays of equal length ``nnz``.
    data:
        Nonzero values, length ``nnz``.
    shape:
        ``(n_rows, n_cols)``.
    check:
        Validate index ranges on construction (O(nnz)); disable only on
        trusted internal paths.
    """

    format = "coo"

    def __init__(self, row, col, data, shape: tuple[int, int], check: bool = True):
        self.row = np.asarray(row, dtype=np.int64).ravel()
        self.col = np.asarray(col, dtype=np.int64).ravel()
        self.data = np.asarray(data, dtype=np.float64).ravel()
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise SparseFormatError(f"invalid shape {shape!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        if not (self.row.size == self.col.size == self.data.size):
            raise SparseFormatError(
                f"COO arrays disagree on nnz: row={self.row.size} "
                f"col={self.col.size} data={self.data.size}"
            )
        if check:
            self._validate()

    def _validate(self) -> None:
        n, m = self.shape
        if self.row.size:
            rmin, rmax = self.row.min(), self.row.max()
            cmin, cmax = self.col.min(), self.col.max()
            if rmin < 0 or rmax >= n:
                raise SparseFormatError(
                    f"row index out of range [0, {n}): found [{rmin}, {rmax}]"
                )
            if cmin < 0 or cmax >= m:
                raise SparseFormatError(
                    f"col index out of range [0, {m}): found [{cmin}, {cmax}]"
                )

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "COOMatrix":
        return self.transpose()

    def transpose(self) -> "COOMatrix":
        """Transpose is free in COO: swap the index arrays."""
        return COOMatrix(
            self.col, self.row, self.data, (self.shape[1], self.shape[0]), check=False
        )

    def copy(self) -> "COOMatrix":
        return COOMatrix(
            self.row.copy(), self.col.copy(), self.data.copy(), self.shape, check=False
        )

    def __repr__(self) -> str:
        return f"<COOMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz}>"

    # ------------------------------------------------------------------
    # cleanup
    # ------------------------------------------------------------------
    def sum_duplicates(self) -> "COOMatrix":
        """Return a copy with duplicate ``(i, j)`` entries summed."""
        if self.nnz == 0:
            return self.copy()
        keys = self.row * self.shape[1] + self.col
        order = np.argsort(keys, kind="stable")
        keys_s = keys[order]
        data_s = self.data[order]
        starts = np.concatenate(([0], np.flatnonzero(np.diff(keys_s)) + 1))
        summed = np.add.reduceat(data_s, starts)
        uniq = keys_s[starts]
        return COOMatrix(
            uniq // self.shape[1], uniq % self.shape[1], summed, self.shape, check=False
        )

    def eliminate_zeros(self) -> "COOMatrix":
        """Return a copy with explicitly stored zeros removed."""
        mask = self.data != 0
        return COOMatrix(
            self.row[mask], self.col[mask], self.data[mask], self.shape, check=False
        )

    def sorted_by_row(self) -> "COOMatrix":
        """Return a copy sorted by (row, col) — the precondition of coo2csr."""
        keys = self.row * self.shape[1] + self.col
        order = np.argsort(keys, kind="stable")
        return COOMatrix(
            self.row[order], self.col[order], self.data[order], self.shape, check=False
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRMatrix":
        """Compress row indices into a CSR indptr (``cusparseXcoo2csr``)."""
        from repro.sparse.csr import CSRMatrix

        n = self.shape[0]
        order = np.argsort(self.row * self.shape[1] + self.col, kind="stable")
        rows = self.row[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(
            indptr, self.col[order], self.data[order], self.shape, check=False
        )

    def to_csc(self) -> "CSCMatrix":
        from repro.sparse.csc import CSCMatrix

        m = self.shape[1]
        order = np.argsort(self.col * self.shape[0] + self.row, kind="stable")
        cols = self.col[order]
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSCMatrix(
            indptr, self.row[order], self.data[order], self.shape, check=False
        )

    def to_coo(self) -> "COOMatrix":
        return self

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` via scatter-add on row indices."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.shape[1]:
            raise SparseValueError(
                f"matvec: matrix is {self.shape}, x has length {x.size}"
            )
        y = np.bincount(
            self.row, weights=self.data * x[self.col], minlength=self.shape[0]
        )
        if out is not None:
            np.copyto(out, y)
            return out
        return y

    def row_sums(self) -> np.ndarray:
        """Per-row sums of stored values (the degree vector for a graph)."""
        return np.bincount(self.row, weights=self.data, minlength=self.shape[0])

    def scale_rows(self, s: np.ndarray) -> "COOMatrix":
        """Return ``diag(s) @ A`` — the ``ScaleElements`` kernel of Alg. 2."""
        s = np.asarray(s, dtype=np.float64).ravel()
        if s.size != self.shape[0]:
            raise SparseValueError(
                f"scale_rows: matrix has {self.shape[0]} rows, s has {s.size}"
            )
        return COOMatrix(
            self.row, self.col, self.data * s[self.row], self.shape, check=False
        )

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (duplicates summed)."""
        k = min(self.shape)
        mask = self.row == self.col
        out = np.zeros(k)
        np.add.at(out, self.row[mask], self.data[mask])
        return out
