"""Streams and events on the simulated timeline.

The paper's pipeline is serialized on the default stream (each eigensolver
iteration must round-trip the PCIe bus), so the stream model here is simple:
a stream is a view onto the device timeline, and events capture simulated
timestamps.  ``Event.elapsed_time`` reproduces ``cudaEventElapsedTime``
semantics (milliseconds).
"""

from __future__ import annotations

from repro.chaos.runtime import chaos_check
from repro.cuda.device import Device, get_default_device
from repro.errors import StreamError


class Event:
    """A timestamp marker on a device timeline (``cudaEvent_t``)."""

    def __init__(self, device: Device | None = None) -> None:
        self.device = device if device is not None else get_default_device()
        self._time: float | None = None

    def record(self, stream: "Stream | None" = None) -> "Event":
        if stream is not None and stream.device is not self.device:
            raise StreamError("event and stream belong to different devices")
        chaos_check("cuda.stream.event", self.device)
        self._time = self.device.elapsed
        return self

    @property
    def is_recorded(self) -> bool:
        return self._time is not None

    @property
    def time(self) -> float:
        if self._time is None:
            raise StreamError("event has not been recorded")
        return self._time

    def elapsed_time(self, end: "Event") -> float:
        """Milliseconds between this event and ``end`` (CUDA convention)."""
        if self.device is not end.device:
            raise StreamError("events recorded on different devices")
        return (end.time - self.time) * 1e3


class Stream:
    """An in-order work queue (the simulation executes synchronously)."""

    def __init__(self, device: Device | None = None) -> None:
        self.device = device if device is not None else get_default_device()

    def synchronize(self) -> None:
        """Completes eagerly; still a fault site (``cudaStreamSynchronize``
        is where asynchronous device errors surface on real hardware)."""
        chaos_check("cuda.stream.sync", self.device)

    def record_event(self) -> Event:
        return Event(self.device).record(self)

    def __repr__(self) -> str:
        return f"<Stream on {self.device.spec.name!r}>"
