"""Streams and events on the simulated timeline.

The paper's pipeline is serialized on the default stream (each eigensolver
iteration must round-trip the PCIe bus), so for a single job a stream is
just a view onto the device timeline, and events capture simulated
timestamps; ``Event.elapsed_time`` reproduces ``cudaEventElapsedTime``
semantics (milliseconds).

For the serving layer each stream additionally behaves as an in-order
*lane* with a known horizon: :meth:`Stream.reserve` books a span of
simulated work onto the stream, starting no earlier than both the caller's
ready time and the stream's previous work — exactly the FIFO semantics of
a real CUDA stream.  The scheduler multiplexes jobs over several streams
per device (and several devices) by reserving spans and taking the
earliest-available lane.
"""

from __future__ import annotations

from repro.chaos.runtime import chaos_check
from repro.cuda.device import Device, get_default_device
from repro.errors import StreamError


class Event:
    """A timestamp marker on a device timeline (``cudaEvent_t``)."""

    def __init__(self, device: Device | None = None) -> None:
        self.device = device if device is not None else get_default_device()
        self._time: float | None = None

    def record(self, stream: "Stream | None" = None) -> "Event":
        if stream is not None and stream.device is not self.device:
            raise StreamError("event and stream belong to different devices")
        chaos_check("cuda.stream.event", self.device)
        self._time = self.device.elapsed
        return self

    @property
    def is_recorded(self) -> bool:
        return self._time is not None

    @property
    def time(self) -> float:
        if self._time is None:
            raise StreamError("event has not been recorded")
        return self._time

    def elapsed_time(self, end: "Event") -> float:
        """Milliseconds between this event and ``end`` (CUDA convention)."""
        if self.device is not end.device:
            raise StreamError("events recorded on different devices")
        return (end.time - self.time) * 1e3


class Stream:
    """An in-order work queue (the simulation executes synchronously).

    Parameters
    ----------
    device:
        Owning device (default device if omitted).
    name:
        Optional label; lanes created by the serving scheduler are named
        ``"dev<i>/s<j>"`` so schedule exports are readable.
    """

    def __init__(self, device: Device | None = None, name: str = "") -> None:
        self.device = device if device is not None else get_default_device()
        self.name = name
        #: device-issued stream id (0 is the default stream; every Stream
        #: object is a non-default stream) — the tag the stream-aware
        #: allocator keys its free lists on
        self.stream_id = self.device._issue_stream_id()
        #: simulated time at which all work queued so far has completed
        self.free_at = 0.0

    def synchronize(self) -> None:
        """Completes eagerly; still a fault site (``cudaStreamSynchronize``
        is where asynchronous device errors surface on real hardware)."""
        chaos_check("cuda.stream.sync", self.device)

    def record_event(self) -> Event:
        return Event(self.device).record(self)

    # ------------------------------------------------------------------
    # lane scheduling (serving layer)
    # ------------------------------------------------------------------
    def available_at(self, ready_at: float = 0.0) -> float:
        """Earliest simulated time work ready at ``ready_at`` could start."""
        return max(self.free_at, ready_at)

    def reserve(self, ready_at: float, duration: float) -> tuple[float, float]:
        """Book ``duration`` seconds of in-order work onto this stream.

        The work starts at ``max(ready_at, free_at)`` (FIFO within the
        stream, dependency-honoring across streams) and pushes the
        stream's horizon to its end.  Returns ``(start, end)``.
        """
        if duration < 0:
            raise StreamError(f"negative duration: {duration}")
        if ready_at < 0:
            raise StreamError(f"negative ready_at: {ready_at}")
        start = self.available_at(ready_at)
        end = start + duration
        self.free_at = end
        return start, end

    # ------------------------------------------------------------------
    # copy-engine lane (async transfers overlapping compute)
    # ------------------------------------------------------------------
    def enqueue_h2d(self, nbytes: int, ready_at: float = 0.0) -> tuple[float, float]:
        """Queue ``cudaMemcpyAsync`` H2D from pinned memory on this stream.

        The copy starts no earlier than ``ready_at`` and the stream's
        previous work (FIFO), and is laid onto the device timeline with
        ``record_at`` so it can overlap kernels already recorded on the
        default stream — the classic copy-engine/compute overlap.  Returns
        the ``(start, end)`` simulated span.
        """
        start = self.available_at(ready_at)
        dt = self.device._record_h2d_at(nbytes, start)
        self.free_at = start + dt
        return start, self.free_at

    def enqueue_d2h(self, nbytes: int, ready_at: float = 0.0) -> tuple[float, float]:
        """Queue ``cudaMemcpyAsync`` D2H into pinned memory on this stream
        (see :meth:`enqueue_h2d`)."""
        start = self.available_at(ready_at)
        dt = self.device._record_d2h_at(nbytes, start)
        self.free_at = start + dt
        return start, self.free_at

    def enqueue_p2p(
        self,
        nbytes: int,
        ready_at: float = 0.0,
        peer: str = "",
        src: int | None = None,
    ) -> tuple[float, float]:
        """Queue ``cudaMemcpyPeerAsync`` *into* this stream's device.

        Successive peer copies on the same stream serialize (they share
        the destination device's PCIe link), which is exactly the FIFO
        behavior modeled by the lane horizon (see :meth:`enqueue_h2d`).
        ``src`` names the source device slot so a topology-aware cost
        model can price the actual link the pair crosses.
        """
        start = self.available_at(ready_at)
        dt = self.device._record_p2p_at(nbytes, start, peer=peer, src=src)
        self.free_at = start + dt
        return start, self.free_at

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Stream{label} on {self.device.spec.name!r} free_at={self.free_at:.6f}>"
