"""Timeline export in Chrome trace-event format.

The simulated timeline is exactly the data ``nvprof``/Nsight would show
for the real implementation; exporting it as a Chrome ``trace_events``
JSON (load in ``chrome://tracing`` or Perfetto) gives the same visual:
kernels and transfers on separate tracks, stages as colored spans.
"""

from __future__ import annotations

import json
import os

from repro.hw.timeline import Timeline

#: track (tid) per event category — transfers get their own copy-engine
#: rows, mirroring how real GPUs overlap copy and compute engines
_TRACKS = {"kernel": 0, "cpu": 1, "h2d": 2, "d2h": 3, "overhead": 4}
_TRACK_NAMES = {
    0: "GPU compute",
    1: "CPU (host phases)",
    2: "PCIe H2D",
    3: "PCIe D2H",
    4: "overhead",
}


def timeline_to_trace_events(timeline: Timeline) -> list[dict]:
    """Convert a timeline into Chrome ``trace_events`` dicts (µs units)."""
    events: list[dict] = []
    for tid, name in _TRACK_NAMES.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for ev in timeline:
        events.append(
            {
                "name": ev.name,
                "cat": ev.tag or "untagged",
                "ph": "X",
                "pid": 1,
                "tid": _TRACKS.get(ev.category, 4),
                "ts": ev.start * 1e6,
                "dur": ev.duration * 1e6,
                "args": {"stage": ev.tag, "category": ev.category},
            }
        )
    return events


def export_chrome_trace(timeline: Timeline, path: str | os.PathLike) -> int:
    """Write the timeline to ``path`` as a Chrome trace JSON.

    Returns the number of duration events written.
    """
    events = timeline_to_trace_events(timeline)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return sum(1 for e in events if e.get("ph") == "X")
