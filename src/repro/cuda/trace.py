"""Timeline export in Chrome trace-event format.

The simulated timeline is exactly the data ``nvprof``/Nsight would show
for the real implementation; exporting it as a Chrome ``trace_events``
JSON (load in ``chrome://tracing`` or Perfetto) gives the same visual:
kernels and transfers on separate tracks, stages as colored spans.
"""

from __future__ import annotations

import json
import os

from repro.hw.timeline import Timeline

#: track (tid) per event category — transfers get their own copy-engine
#: rows, mirroring how real GPUs overlap copy and compute engines
_TRACKS = {"kernel": 0, "cpu": 1, "h2d": 2, "d2h": 3, "overhead": 4, "p2p": 5}
_TRACK_NAMES = {
    0: "GPU compute",
    1: "CPU (host phases)",
    2: "PCIe H2D",
    3: "PCIe D2H",
    4: "overhead",
    5: "P2P halo",
}


def timeline_to_trace_events(timeline: Timeline) -> list[dict]:
    """Convert a timeline into Chrome ``trace_events`` dicts (µs units)."""
    events: list[dict] = []
    for tid, name in _TRACK_NAMES.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for ev in timeline:
        events.append(
            {
                "name": ev.name,
                "cat": ev.tag or "untagged",
                "ph": "X",
                "pid": 1,
                "tid": _TRACKS.get(ev.category, 4),
                "ts": ev.start * 1e6,
                "dur": ev.duration * 1e6,
                "args": {"stage": ev.tag, "category": ev.category},
            }
        )
    return events


def schedule_to_trace_events(timeline: Timeline) -> list[dict]:
    """Convert an *overlapped* schedule timeline into Chrome trace dicts.

    Used for the serving scheduler's view, where events were recorded at
    absolute times with ``Timeline.record_at`` and the ``tag`` names the
    lane (``"dev0/s1"``): each distinct tag becomes its own track, so
    concurrent batches render as parallel rows instead of one interleaved
    (and visually overlapping) track.
    """
    lanes = sorted({ev.tag or "unscheduled" for ev in timeline})
    tid_of = {lane: i for i, lane in enumerate(lanes)}
    events: list[dict] = []
    for lane, tid in tid_of.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for ev in timeline:
        events.append(
            {
                "name": ev.name,
                "cat": ev.category,
                "ph": "X",
                "pid": 1,
                "tid": tid_of[ev.tag or "unscheduled"],
                "ts": ev.start * 1e6,
                "dur": ev.duration * 1e6,
                "args": {"lane": ev.tag, "category": ev.category},
            }
        )
    return events


def export_chrome_trace(
    timeline: Timeline, path: str | os.PathLike, tracks: str = "category"
) -> int:
    """Write the timeline to ``path`` as a Chrome trace JSON.

    ``tracks="category"`` (default) gives the nvprof-style view: one row
    per event category.  ``tracks="lane"`` gives the scheduler view: one
    row per tag, for overlapped timelines built with
    ``Timeline.record_at``.  Returns the number of duration events
    written.
    """
    if tracks == "category":
        events = timeline_to_trace_events(timeline)
    elif tracks == "lane":
        events = schedule_to_trace_events(timeline)
    else:
        raise ValueError(f"tracks must be 'category' or 'lane', got {tracks!r}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return sum(1 for e in events if e.get("ph") == "X")
