"""Device memory: allocator and device-resident arrays.

A :class:`DeviceArray` is a handle to memory "on the device".  The backing
store is a NumPy array (the simulation substrate), but the type system of the
package treats host and device data as distinct worlds:

* host ndarrays enter the device only through ``Device.to_device`` /
  ``Device.empty``-family calls, which charge allocation and H2D time;
* device arrays leave only through :meth:`DeviceArray.copy_to_host`, which
  charges D2H time;
* kernels (``repro.cuda.kernel``) and the simulated libraries
  (``repro.cublas``, ``repro.cusparse``, ``repro.thrust``) are the only code
  that touches ``DeviceArray.data`` directly — exactly the set of actors that
  may dereference a device pointer in real CUDA.

The allocator enforces the device memory capacity (5 GB on the K20c), so
oversubscription fails the same way ``cudaMalloc`` would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import DeviceArrayError, DeviceMemoryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cuda.device import Device


class DeviceArray:
    """A device-resident n-dimensional array handle.

    Create instances through the owning :class:`~repro.cuda.device.Device`
    (``to_device``, ``empty``, ``zeros``, ``full``); the constructor is
    internal.
    """

    __slots__ = ("_data", "_device", "_valid")

    def __init__(self, data: np.ndarray, device: "Device") -> None:
        self._data = data
        self._device = device
        self._valid = True

    # -- pointer-like introspection ------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The raw device buffer.  Only simulated-device code may touch it."""
        self._check_valid()
        return self._data

    @property
    def device(self) -> "Device":
        return self._device

    @property
    def shape(self) -> tuple[int, ...]:
        self._check_valid()
        return self._data.shape

    @property
    def ndim(self) -> int:
        self._check_valid()
        return self._data.ndim

    @property
    def dtype(self) -> np.dtype:
        self._check_valid()
        return self._data.dtype

    @property
    def size(self) -> int:
        self._check_valid()
        return self._data.size

    @property
    def nbytes(self) -> int:
        self._check_valid()
        return self._data.nbytes

    @property
    def itemsize(self) -> int:
        self._check_valid()
        return self._data.itemsize

    def __len__(self) -> int:
        self._check_valid()
        return len(self._data)

    def __repr__(self) -> str:
        if not self._valid:
            return "<DeviceArray (freed)>"
        return (
            f"<DeviceArray shape={self._data.shape} dtype={self._data.dtype} "
            f"on {self._device.spec.name!r}>"
        )

    # -- lifecycle -------------------------------------------------------
    def _check_valid(self) -> None:
        if not self._valid:
            raise DeviceArrayError("use of freed DeviceArray")

    def free(self) -> None:
        """Release the allocation back to the device (``cudaFree``)."""
        if self._valid:
            self._device._release(self._data.nbytes)
            self._valid = False
            self._data = np.empty(0)

    @property
    def is_valid(self) -> bool:
        return self._valid

    # -- transfers ---------------------------------------------------------
    def copy_to_host(self, out: np.ndarray | None = None) -> np.ndarray:
        """Copy device → host, charging D2H transfer time.

        Parameters
        ----------
        out:
            Optional preallocated host buffer (same shape/dtype); the
            analogue of reusing a pinned staging buffer.
        """
        self._check_valid()
        self._device._record_d2h(self._data.nbytes)
        if out is None:
            return self._data.copy()
        if out.shape != self._data.shape or out.dtype != self._data.dtype:
            raise DeviceArrayError(
                f"host buffer mismatch: {out.shape}/{out.dtype} vs "
                f"{self._data.shape}/{self._data.dtype}"
            )
        np.copyto(out, self._data)
        return out

    def copy_from_host(self, src: np.ndarray) -> "DeviceArray":
        """Overwrite contents from a host array (H2D into existing buffer)."""
        self._check_valid()
        src = np.asarray(src)
        if src.shape != self._data.shape or src.dtype != self._data.dtype:
            raise DeviceArrayError(
                f"host source mismatch: {src.shape}/{src.dtype} vs "
                f"{self._data.shape}/{self._data.dtype}"
            )
        self._device._record_h2d(src.nbytes)
        np.copyto(self._data, src)
        return self

    def copy(self) -> "DeviceArray":
        """Device→device copy (no PCIe traffic; charges a stream kernel)."""
        self._check_valid()
        out = self._device.empty(self._data.shape, self._data.dtype)
        self._device.charge_kernel(
            "cudaMemcpyDtoD", flops=0, bytes_moved=2 * self._data.nbytes
        )
        np.copyto(out._data, self._data)
        return out

    # -- shape manipulation (metadata only, free on device) ---------------
    def reshape(self, *shape: int | Sequence[int]) -> "DeviceArray":
        self._check_valid()
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])  # type: ignore[assignment]
        view = self._data.reshape(*shape)
        out = DeviceArray.__new__(DeviceArray)
        out._data = view
        out._device = self._device
        out._valid = True
        return out

    def ravel(self) -> "DeviceArray":
        return self.reshape(self._data.size)

    def view_rows(self, lo: int, hi: int) -> "DeviceArray":
        """A zero-copy view of rows ``[lo, hi)`` — pointer arithmetic on the
        device buffer, as kernels tiling a large matrix would do."""
        self._check_valid()
        if not 0 <= lo <= hi <= self._data.shape[0]:
            raise DeviceArrayError(
                f"row slice [{lo}, {hi}) out of range for shape {self._data.shape}"
            )
        out = DeviceArray.__new__(DeviceArray)
        out._data = self._data[lo:hi]
        out._device = self._device
        out._valid = True
        return out


class BufferGroup:
    """A registry of device buffers for exception-safe cleanup.

    Allocation sites can fault (OOM or injected chaos) at any point in a
    multi-buffer routine; registering each buffer as it is created lets the
    error path release everything acquired so far with one call.  ``free``
    is idempotent, so buffers already released individually on the success
    path are skipped.

    Usage::

        with BufferGroup() as bufs:
            a = bufs.add(dev.empty(...))
            b = bufs.add(dev.empty(...))
            ...
        # everything still live is released on exit, error or not
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: list[DeviceArray] = []

    def add(self, buf: "DeviceArray") -> "DeviceArray":
        self._bufs.append(buf)
        return buf

    def __len__(self) -> int:
        return len(self._bufs)

    def __enter__(self) -> "BufferGroup":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.free_all()

    def free_all(self) -> None:
        """Release every registered buffer that is still live.

        Idempotent: buffers already freed individually (or by a previous
        ``free_all``) are skipped rather than relying on caller discipline,
        and a repeated call is a no-op.  Each release routes through the
        owning device's allocator, so with the caching allocator the blocks
        land back on its free lists.
        """
        bufs, self._bufs = self._bufs, []
        for buf in bufs:
            if buf.is_valid:
                buf.free()


def _as_device_data(x: "DeviceArray | np.ndarray", device: "Device") -> np.ndarray:
    """Internal: unwrap a DeviceArray, verifying device residency."""
    if isinstance(x, DeviceArray):
        if x.device is not device:
            raise DeviceArrayError("operands live on different devices")
        return x.data
    raise DeviceArrayError(
        f"expected a DeviceArray (device-resident operand), got {type(x).__name__}; "
        "move host data with Device.to_device first"
    )


class Allocator:
    """Tracks device memory usage and enforces capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("device capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.used_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative allocation")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise DeviceMemoryError(
                f"out of device memory: requested {nbytes} bytes with "
                f"{self.capacity_bytes - self.used_bytes} of "
                f"{self.capacity_bytes} free"
            )
        self.used_bytes += nbytes
        self.alloc_count += 1
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative release")
        self.used_bytes = max(0, self.used_bytes - nbytes)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes
