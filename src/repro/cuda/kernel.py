"""Kernel objects and the launch machinery.

A :class:`Kernel` couples three things:

* a **body** — a Python function with signature ``body(tid, *args)`` where
  ``tid`` is the *vector of global thread indices* covered by the launch.
  Bodies are written the way a CUDA kernel is written ("thread ``i`` handles
  element ``i``") but execute vectorized over all threads at once, which is
  the honest Python equivalent of SIMT execution;
* a **cost descriptor** — ``cost(n_threads, *args) -> (flops, bytes)``
  describing the work one launch performs, fed to the device roofline model;
* a **kind** — ``"stream"``, ``"dense"`` or ``"gather"`` selecting which
  efficiency class the kernel belongs to.

:func:`launch` validates the grid/block configuration against device limits
(the analogue of ``cudaErrorInvalidConfiguration``), unwraps device operands,
executes the body, and charges simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.device import Device
from repro.cuda.memory import DeviceArray
from repro.errors import InvalidKernelLaunch


@dataclass(frozen=True)
class LaunchConfig:
    """``<<<grid, block>>>`` launch parameters (1-D)."""

    grid: int
    block: int

    @property
    def n_threads(self) -> int:
        return self.grid * self.block

    def validate(self, device: Device) -> None:
        spec = device.spec
        if self.grid <= 0 or self.block <= 0:
            raise InvalidKernelLaunch(
                f"grid and block must be positive, got <<<{self.grid}, {self.block}>>>"
            )
        if self.block > spec.max_threads_per_block:
            raise InvalidKernelLaunch(
                f"block size {self.block} exceeds device limit "
                f"{spec.max_threads_per_block}"
            )
        if self.grid > spec.max_grid_dim_x:
            raise InvalidKernelLaunch(
                f"grid size {self.grid} exceeds device limit {spec.max_grid_dim_x}"
            )


class Kernel:
    """A named device kernel with a body and a cost descriptor."""

    def __init__(
        self,
        name: str,
        body: Callable[..., None],
        cost: Callable[..., tuple[float, float]],
        kind: str = "stream",
        itemsize: int = 8,
    ) -> None:
        if kind not in ("stream", "dense", "gather"):
            raise ValueError(f"unknown kernel kind {kind!r}")
        self.name = name
        self.body = body
        self.cost = cost
        self.kind = kind
        self.itemsize = itemsize

    def __repr__(self) -> str:
        return f"<Kernel {self.name!r} kind={self.kind}>"


def kernel(
    name: str,
    cost: Callable[..., tuple[float, float]],
    kind: str = "stream",
    itemsize: int = 8,
) -> Callable[[Callable[..., None]], Kernel]:
    """Decorator form: ``@kernel("compute_average", cost=..., kind=...)``."""

    def wrap(body: Callable[..., None]) -> Kernel:
        return Kernel(name, body, cost, kind=kind, itemsize=itemsize)

    return wrap


def _find_device(args: tuple) -> Device:
    for a in args:
        if isinstance(a, DeviceArray):
            return a.device
    raise InvalidKernelLaunch(
        "kernel launch requires at least one DeviceArray operand to bind a device"
    )


def launch(
    k: Kernel,
    config: LaunchConfig | tuple[int, int],
    *args,
    n_threads: int | None = None,
) -> float:
    """Execute one kernel launch; returns the simulated duration in seconds.

    Parameters
    ----------
    k:
        The kernel to run.
    config:
        ``LaunchConfig`` or a ``(grid, block)`` pair.
    args:
        Kernel arguments.  ``DeviceArray`` operands are unwrapped to raw
        buffers for the body; all must live on the same device.
    n_threads:
        Logical thread count (≤ grid·block).  Defaults to grid·block; bodies
        receive ``tid = arange(n_threads)`` so trailing threads that a real
        kernel would mask off simply never materialize.
    """
    if not isinstance(config, LaunchConfig):
        config = LaunchConfig(*config)
    device = _find_device(args)
    config.validate(device)

    if n_threads is None:
        n_threads = config.n_threads
    if n_threads > config.n_threads:
        raise InvalidKernelLaunch(
            f"n_threads={n_threads} exceeds launch capacity {config.n_threads}"
        )

    unwrapped = []
    for a in args:
        if isinstance(a, DeviceArray):
            if a.device is not device:
                raise InvalidKernelLaunch("kernel operands on different devices")
            unwrapped.append(a.data)
        else:
            unwrapped.append(a)

    # fault site: a transient launch failure performs no work, so it is
    # consulted before the body touches any operand (retry stays safe)
    chaos_check(f"cuda.kernel:{k.name}", device)

    tid = np.arange(n_threads, dtype=np.int64)
    k.body(tid, *unwrapped)

    flops, bytes_moved = k.cost(n_threads, *unwrapped)
    return device.charge_kernel(
        k.name, flops=flops, bytes_moved=bytes_moved, kind=k.kind, itemsize=k.itemsize
    )
