"""The simulated CUDA device: context, allocator, timeline and cost models.

A :class:`Device` plays the role of a CUDA context bound to one GPU.  It owns

* an :class:`~repro.cuda.memory.Allocator` sized to the device memory,
* a :class:`~repro.hw.timeline.Timeline` that accumulates simulated time,
* the GPU and PCIe cost models derived from its :class:`~repro.hw.spec`.

A module-level *default device* mirrors the CUDA notion of the current
context; library code (cuBLAS/cuSPARSE/Thrust wrappers, kernels) operates on
whatever device owns its operands.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.allocator import AllocOutcome, CachingAllocator, PinnedHostPool
from repro.cuda.memory import Allocator, DeviceArray
from repro.hw.costmodel import GPUCostModel, TransferCostModel
from repro.hw.spec import GPUSpec, K20C, PCIE_X16_GEN2, PCIeSpec
from repro.hw.timeline import Timeline
from repro.hw.topology import PCIeTopology


class Device:
    """A simulated GPU device / CUDA context.

    Parameters
    ----------
    spec:
        Hardware description; defaults to the paper's Tesla K20c.
    pcie:
        Link description; defaults to PCIe x16 Gen2 (Table I).
    timeline:
        Optionally share a timeline with other components (e.g. so CPU
        phases and GPU phases interleave on one clock).
    caching:
        Use the size-bucketed :class:`~repro.cuda.allocator.CachingAllocator`
        (the default); ``False`` falls back to the plain byte-counting
        allocator, paying ``cudaMalloc``/``cudaFree`` latency on every call.
    device_index:
        Slot of this device on the node (``cudaSetDevice`` ordinal); used
        to look up per-pair peer links in ``topology``.
    topology:
        Optional :class:`~repro.hw.topology.PCIeTopology` describing the
        node; when set, peer copies are priced by the link the pair
        actually crosses (same-switch direct vs. host-bridged) instead of
        the flat ``pcie`` law.
    """

    def __init__(
        self,
        spec: GPUSpec = K20C,
        pcie: PCIeSpec = PCIE_X16_GEN2,
        timeline: Timeline | None = None,
        caching: bool = True,
        device_index: int = 0,
        topology: PCIeTopology | None = None,
    ) -> None:
        self.spec = spec
        self.pcie = pcie
        self.caching = caching
        self.device_index = int(device_index)
        self.topology = topology
        self.allocator = self._make_allocator()
        self.timeline = timeline if timeline is not None else Timeline()
        self.cost = GPUCostModel(spec)
        self.transfer_cost = TransferCostModel(pcie, topology)
        #: pinned-host staging pool every async PCIe leg stages through
        self.host_pool = PinnedHostPool()
        #: stream whose free lists allocations are tagged with (see
        #: :meth:`stream_scope`); None means the default stream (id 0)
        self._alloc_scope = None
        #: issued stream ids (0 is the default stream)
        self._stream_ids_issued = 0
        #: cumulative simulated seconds by high-level class, convenience view
        self.kernel_launches = 0
        #: modeled device-memory bytes moved by SpMV/SpMM kernels — the
        #: same roofline byte expressions the cost model prices, summed so
        #: the precision ablation can gate on storage-width traffic wins
        self.spmv_traffic_bytes = 0.0
        self._reset_transfer_counters()
        #: measured SpMV kernel times by (format, n_rows, nnz) — autotuner
        #: feedback (sum of durations, count of products)
        self._spmv_measurements: dict[tuple[str, int, int], tuple[float, int]] = {}

    def _make_allocator(self) -> Allocator:
        if self.caching:
            return CachingAllocator(self.spec.memory_bytes)
        return Allocator(self.spec.memory_bytes)

    def _reset_transfer_counters(self) -> None:
        #: PCIe traffic counters (observability; time lives on the timeline)
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        #: peer (device-to-device) traffic, counted on the destination device
        self.bytes_p2p = 0
        self.n_h2d = 0
        self.n_d2h = 0
        self.n_p2p = 0
        #: transfers the GPU-resident eigensolver never issued
        self.transfers_elided = 0
        self.bytes_elided = 0
        #: seconds of transfer time hidden behind already-scheduled work
        self.transfer_overlap_s = 0.0

    # ------------------------------------------------------------------
    # allocation + movement
    # ------------------------------------------------------------------
    def _issue_stream_id(self) -> int:
        """Hand a fresh non-default stream id to a new :class:`Stream`."""
        self._stream_ids_issued += 1
        return self._stream_ids_issued

    def _alloc_stream_id(self) -> int:
        scope = self._alloc_scope
        return scope.stream_id if scope is not None else 0

    def _alloc_ready(self) -> float:
        """When the current scope's in-flight work — and therefore the free
        event of a block released now — completes."""
        scope = self._alloc_scope
        if scope is not None:
            return max(self.elapsed, scope.free_at)
        return self.elapsed

    @contextlib.contextmanager
    def stream_scope(self, stream) -> Iterator[None]:
        """Tag allocations/frees inside the block with ``stream``'s id.

        The allocator analogue of ``cudaStreamSetAttribute``-era stream
        association: blocks freed under the scope carry the stream's
        horizon as their free-event time, so other streams may only reuse
        them once that work has drained (see
        :class:`~repro.cuda.allocator.CachingAllocator`).
        """
        prev = self._alloc_scope
        self._alloc_scope = stream
        try:
            yield
        finally:
            self._alloc_scope = prev

    def _new_array(self, data: np.ndarray) -> DeviceArray:
        # The fault site runs before the cache is consulted, so injected
        # OOM faults surface even when the request would have been a hit.
        chaos_check("cuda.alloc", self, nbytes=data.nbytes)
        if isinstance(self.allocator, CachingAllocator):
            outcome = self.allocator.allocate(
                data.nbytes, stream=self._alloc_stream_id(), now=self.elapsed
            )
        else:
            outcome = self.allocator.allocate(data.nbytes)
        if isinstance(outcome, AllocOutcome):
            if outcome.flushed_segments:
                self.timeline.record(
                    f"cudaFree[cache-trim x{outcome.flushed_segments}]",
                    "overhead",
                    outcome.flushed_segments * self.spec.free_overhead_s,
                )
            if not outcome.hit:
                self.timeline.record(
                    "cudaMalloc", "overhead", self.spec.malloc_overhead_s
                )
        else:  # plain allocator: every call is a real cudaMalloc
            self.timeline.record(
                "cudaMalloc", "overhead", self.spec.malloc_overhead_s
            )
        return DeviceArray(data, self)

    def _release(self, nbytes: int) -> None:
        if isinstance(self.allocator, CachingAllocator):
            real_free = self.allocator.release(
                nbytes, stream=self._alloc_stream_id(), ready=self._alloc_ready()
            )
        else:
            real_free = self.allocator.release(nbytes)
        if real_free is None or real_free:
            # plain allocator (returns None) or an uncached large block
            self.timeline.record("cudaFree", "overhead", self.spec.free_overhead_s)

    @contextlib.contextmanager
    def scratch(self, nbytes: int) -> Iterator[None]:
        """Temporary device storage for one thrust/CUB call.

        The ``ThrustAllocator`` pattern: sort double buffers and scan tile
        state come from the caching allocator's free lists (usually a hit —
        no ``cudaMalloc`` latency) and return there when the call ends.
        Scratch traffic keeps separate counters so steady-state *array*
        allocation invariants stay visible.  Not a chaos fault site: the
        enclosing thrust call's kernel site already covers injection.
        """
        nbytes = int(nbytes)
        if isinstance(self.allocator, CachingAllocator):
            outcome = self.allocator.allocate_scratch(
                nbytes, stream=self._alloc_stream_id(), now=self.elapsed
            )
            if outcome.flushed_segments:
                self.timeline.record(
                    f"cudaFree[cache-trim x{outcome.flushed_segments}]",
                    "overhead",
                    outcome.flushed_segments * self.spec.free_overhead_s,
                )
            if not outcome.hit:
                self.timeline.record(
                    "cudaMalloc", "overhead", self.spec.malloc_overhead_s
                )
            try:
                yield
            finally:
                self.allocator.release_scratch(
                    nbytes, stream=self._alloc_stream_id(), ready=self._alloc_ready()
                )
        else:  # plain allocator: scratch is a real malloc/free round trip
            self.allocator.allocate(nbytes)
            self.timeline.record(
                "cudaMalloc", "overhead", self.spec.malloc_overhead_s
            )
            try:
                yield
            finally:
                self.allocator.release(nbytes)
                self.timeline.record(
                    "cudaFree", "overhead", self.spec.free_overhead_s
                )

    def empty(self, shape: int | Sequence[int], dtype=np.float64) -> DeviceArray:
        """``cudaMalloc`` without initialization."""
        return self._new_array(np.empty(shape, dtype=dtype))

    def zeros(self, shape: int | Sequence[int], dtype=np.float64) -> DeviceArray:
        """Allocate and ``cudaMemset`` to zero (charges a streaming kernel)."""
        arr = self._new_array(np.zeros(shape, dtype=dtype))
        self.charge_kernel("cudaMemset", flops=0, bytes_moved=arr.nbytes)
        return arr

    def full(
        self, shape: int | Sequence[int], fill_value: float, dtype=np.float64
    ) -> DeviceArray:
        """Allocate and fill with a constant (Thrust ``fill``)."""
        arr = self._new_array(np.full(shape, fill_value, dtype=dtype))
        self.charge_kernel("thrust::fill", flops=0, bytes_moved=arr.nbytes)
        return arr

    def to_device(self, host: np.ndarray, dtype=None) -> DeviceArray:
        """Allocate on the device and copy a host array over PCIe."""
        host = np.ascontiguousarray(host, dtype=dtype)
        arr = self._new_array(host.copy())
        try:
            self._record_h2d(host.nbytes)
        except BaseException:
            # a failed upload must not leak the fresh allocation
            arr.free()
            raise
        return arr

    # ------------------------------------------------------------------
    # time accounting
    # ------------------------------------------------------------------
    def _record_h2d(self, nbytes: int) -> None:
        chaos_check("cuda.h2d", self, nbytes=nbytes)
        self.host_pool.stage(nbytes)
        self.timeline.record(
            f"memcpyH2D[{nbytes}B]", "h2d", self.transfer_cost.h2d_time(nbytes)
        )
        self.n_h2d += 1
        self.bytes_h2d += nbytes

    def _record_d2h(self, nbytes: int) -> None:
        chaos_check("cuda.d2h", self, nbytes=nbytes)
        self.host_pool.stage(nbytes)
        self.timeline.record(
            f"memcpyD2H[{nbytes}B]", "d2h", self.transfer_cost.d2h_time(nbytes)
        )
        self.n_d2h += 1
        self.bytes_d2h += nbytes

    def _record_h2d_at(self, nbytes: int, start: float) -> float:
        """Asynchronous H2D (``cudaMemcpyAsync`` from pinned memory): the
        transfer is laid onto the timeline at an absolute start so it can
        overlap already-recorded kernel work.  Returns its duration."""
        chaos_check("cuda.h2d", self, nbytes=nbytes)
        self.host_pool.stage(nbytes)
        dt = self.transfer_cost.h2d_time(nbytes)
        before = self.timeline.clock.now
        self.timeline.record_at(f"memcpyH2DAsync[{nbytes}B]", "h2d", start, dt)
        self.n_h2d += 1
        self.bytes_h2d += nbytes
        self.transfer_overlap_s += max(0.0, min(start + dt, before) - start)
        return dt

    def _record_d2h_at(self, nbytes: int, start: float) -> float:
        """Asynchronous D2H into a pinned staging buffer (see
        :meth:`_record_h2d_at`)."""
        chaos_check("cuda.d2h", self, nbytes=nbytes)
        self.host_pool.stage(nbytes)
        dt = self.transfer_cost.d2h_time(nbytes)
        before = self.timeline.clock.now
        self.timeline.record_at(f"memcpyD2HAsync[{nbytes}B]", "d2h", start, dt)
        self.n_d2h += 1
        self.bytes_d2h += nbytes
        self.transfer_overlap_s += max(0.0, min(start + dt, before) - start)
        return dt

    def _record_p2p_at(
        self, nbytes: int, start: float, peer: str = "", src: int | None = None
    ) -> float:
        """Asynchronous peer copy (``cudaMemcpyPeerAsync``) *into* this
        device, laid onto the timeline at an absolute start time so halo
        exchanges overlap local kernel work.  Traffic is counted on the
        destination device.  ``src`` is the source device slot; with a
        topology attached it selects the per-pair link law (direct vs.
        host-bridged).  Returns the transfer duration."""
        chaos_check("cuda.p2p", self, nbytes=nbytes)
        dt = self.transfer_cost.p2p_time(nbytes, src=src, dst=self.device_index)
        before = self.timeline.clock.now
        label = f"memcpyPeerAsync[{nbytes}B{'<-' + peer if peer else ''}]"
        self.timeline.record_at(label, "p2p", start, dt)
        self.n_p2p += 1
        self.bytes_p2p += nbytes
        self.transfer_overlap_s += max(0.0, min(start + dt, before) - start)
        return dt

    def note_elided_transfer(self, count: int, nbytes: int) -> None:
        """Account for PCIe crossings a device-resident data path avoided."""
        self.transfers_elided += count
        self.bytes_elided += nbytes

    def charge_scalar_d2h(self, nbytes: int = 8) -> None:
        """Charge a scalar readback (device -> host) over PCIe.

        The public surface for latency-bound control-flow reads: a
        convergence counter, a dot product, a norm.  The transfer is
        dominated by link latency, not bandwidth, and shows up in
        :meth:`transfer_stats` like any other D2H crossing.
        """
        self._record_d2h(nbytes)

    def note_spmv_time(
        self, fmt: str, n_rows: int, nnz: int, seconds: float
    ) -> None:
        """Record one measured SpMV kernel duration for ``fmt`` on a matrix
        of the given shape, feeding :func:`~repro.cusparse.formats.autotune_format`
        evidence on subsequent solves."""
        key = (fmt, int(n_rows), int(nnz))
        total, count = self._spmv_measurements.get(key, (0.0, 0))
        self._spmv_measurements[key] = (total + float(seconds), count + 1)

    def measured_spmv_times(self, n_rows: int, nnz: int) -> dict[str, float]:
        """Mean measured per-SpMV seconds by format for a matrix shape."""
        out: dict[str, float] = {}
        for (fmt, rows, z), (total, count) in self._spmv_measurements.items():
            if rows == int(n_rows) and z == int(nnz) and count:
                out[fmt] = total / count
        return out

    def charge_kernel(
        self,
        name: str,
        flops: float,
        bytes_moved: float,
        kind: str = "stream",
        itemsize: int = 8,
    ) -> float:
        """Charge one kernel launch to the timeline; returns its duration."""
        dt = self.cost.kernel_time(flops, bytes_moved, kind=kind, itemsize=itemsize)
        self.timeline.record(name, "kernel", dt)
        self.kernel_launches += 1
        return dt

    def charge_cpu(self, name: str, seconds: float) -> float:
        """Charge a host-side phase (modeled CPU work) to the shared timeline."""
        self.timeline.record(name, "cpu", seconds)
        return seconds

    @contextlib.contextmanager
    def stage(self, tag: str) -> Iterator[None]:
        """Tag all events recorded inside the block with a stage label."""
        prev = self.timeline._tag
        self.timeline.set_tag(tag)
        try:
            yield
        finally:
            self.timeline.set_tag(prev)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Total simulated seconds on this device's timeline."""
        return self.timeline.clock.now

    def memory_info(self) -> tuple[int, int]:
        """(free, total) device memory in bytes, like ``cudaMemGetInfo``."""
        return self.allocator.free_bytes, self.allocator.capacity_bytes

    def alloc_stats(self) -> dict:
        """Allocator counters (hits/misses/reserve) for profiling surfaces."""
        if isinstance(self.allocator, CachingAllocator):
            return self.allocator.stats()
        return {
            "caching": False,
            "hits": 0,
            "misses": self.allocator.alloc_count,
            "hit_rate": 0.0,
            "flushes": 0,
            "segment_frees": 0,
            "splits": 0,
            "coalesces": 0,
            "same_stream_hits": 0,
            "event_gated_hits": 0,
            "blocked_reuses": 0,
            "scratch_requests": 0,
            "scratch_hits": 0,
            "scratch_bytes": 0,
            "bytes_in_use": self.allocator.used_bytes,
            "bytes_reserved": self.allocator.used_bytes,
            "bytes_cached": 0,
            "peak_bytes_in_use": self.allocator.peak_bytes,
            "peak_bytes_reserved": self.allocator.peak_bytes,
        }

    def transfer_stats(self) -> dict:
        """PCIe traffic counters (bytes moved, elisions, overlap) plus the
        pinned-host staging pool the async legs ride through."""
        out = {
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
            "bytes_p2p": self.bytes_p2p,
            "n_h2d": self.n_h2d,
            "n_d2h": self.n_d2h,
            "n_p2p": self.n_p2p,
            "transfers_elided": self.transfers_elided,
            "bytes_elided": self.bytes_elided,
            "overlap_s": self.transfer_overlap_s,
        }
        out.update(self.host_pool.stats())
        return out

    def reset(self) -> None:
        """Clear the timeline and allocation statistics (new context)."""
        self.timeline.clear()
        self.allocator = self._make_allocator()
        self.kernel_launches = 0
        self.spmv_traffic_bytes = 0.0
        self._reset_transfer_counters()
        self._spmv_measurements = {}
        self.host_pool = PinnedHostPool()
        self._alloc_scope = None
        self._stream_ids_issued = 0

    def __repr__(self) -> str:
        used = self.allocator.used_bytes
        return (
            f"<Device {self.spec.name!r} mem={used}/{self.spec.memory_bytes}B "
            f"t={self.elapsed:.6f}s>"
        )


_default_device: Device | None = None


def get_default_device() -> Device:
    """Return the process-wide default device, creating a K20c on first use."""
    global _default_device
    if _default_device is None:
        _default_device = Device()
    return _default_device


def set_default_device(device: Device | None) -> None:
    """Replace the process-wide default device (None resets to lazy K20c)."""
    global _default_device
    _default_device = device


@contextlib.contextmanager
def default_device(device: Device) -> Iterator[Device]:
    """Temporarily install ``device`` as the default (scoped context)."""
    global _default_device
    prev = _default_device
    _default_device = device
    try:
        yield device
    finally:
        _default_device = prev
