"""The simulated CUDA device: context, allocator, timeline and cost models.

A :class:`Device` plays the role of a CUDA context bound to one GPU.  It owns

* an :class:`~repro.cuda.memory.Allocator` sized to the device memory,
* a :class:`~repro.hw.timeline.Timeline` that accumulates simulated time,
* the GPU and PCIe cost models derived from its :class:`~repro.hw.spec`.

A module-level *default device* mirrors the CUDA notion of the current
context; library code (cuBLAS/cuSPARSE/Thrust wrappers, kernels) operates on
whatever device owns its operands.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.memory import Allocator, DeviceArray
from repro.hw.costmodel import GPUCostModel, TransferCostModel
from repro.hw.spec import GPUSpec, K20C, PCIE_X16_GEN2, PCIeSpec
from repro.hw.timeline import Timeline


class Device:
    """A simulated GPU device / CUDA context.

    Parameters
    ----------
    spec:
        Hardware description; defaults to the paper's Tesla K20c.
    pcie:
        Link description; defaults to PCIe x16 Gen2 (Table I).
    timeline:
        Optionally share a timeline with other components (e.g. so CPU
        phases and GPU phases interleave on one clock).
    """

    def __init__(
        self,
        spec: GPUSpec = K20C,
        pcie: PCIeSpec = PCIE_X16_GEN2,
        timeline: Timeline | None = None,
    ) -> None:
        self.spec = spec
        self.pcie = pcie
        self.allocator = Allocator(spec.memory_bytes)
        self.timeline = timeline if timeline is not None else Timeline()
        self.cost = GPUCostModel(spec)
        self.transfer_cost = TransferCostModel(pcie)
        #: cumulative simulated seconds by high-level class, convenience view
        self.kernel_launches = 0

    # ------------------------------------------------------------------
    # allocation + movement
    # ------------------------------------------------------------------
    def _new_array(self, data: np.ndarray) -> DeviceArray:
        chaos_check("cuda.alloc", self, nbytes=data.nbytes)
        self.allocator.allocate(data.nbytes)
        return DeviceArray(data, self)

    def _release(self, nbytes: int) -> None:
        self.allocator.release(nbytes)

    def empty(self, shape: int | Sequence[int], dtype=np.float64) -> DeviceArray:
        """``cudaMalloc`` without initialization."""
        return self._new_array(np.empty(shape, dtype=dtype))

    def zeros(self, shape: int | Sequence[int], dtype=np.float64) -> DeviceArray:
        """Allocate and ``cudaMemset`` to zero (charges a streaming kernel)."""
        arr = self._new_array(np.zeros(shape, dtype=dtype))
        self.charge_kernel("cudaMemset", flops=0, bytes_moved=arr.nbytes)
        return arr

    def full(
        self, shape: int | Sequence[int], fill_value: float, dtype=np.float64
    ) -> DeviceArray:
        """Allocate and fill with a constant (Thrust ``fill``)."""
        arr = self._new_array(np.full(shape, fill_value, dtype=dtype))
        self.charge_kernel("thrust::fill", flops=0, bytes_moved=arr.nbytes)
        return arr

    def to_device(self, host: np.ndarray, dtype=None) -> DeviceArray:
        """Allocate on the device and copy a host array over PCIe."""
        host = np.ascontiguousarray(host, dtype=dtype)
        arr = self._new_array(host.copy())
        try:
            self._record_h2d(host.nbytes)
        except BaseException:
            # a failed upload must not leak the fresh allocation
            arr.free()
            raise
        return arr

    # ------------------------------------------------------------------
    # time accounting
    # ------------------------------------------------------------------
    def _record_h2d(self, nbytes: int) -> None:
        chaos_check("cuda.h2d", self, nbytes=nbytes)
        self.timeline.record(
            f"memcpyH2D[{nbytes}B]", "h2d", self.transfer_cost.h2d_time(nbytes)
        )

    def _record_d2h(self, nbytes: int) -> None:
        chaos_check("cuda.d2h", self, nbytes=nbytes)
        self.timeline.record(
            f"memcpyD2H[{nbytes}B]", "d2h", self.transfer_cost.d2h_time(nbytes)
        )

    def charge_kernel(
        self,
        name: str,
        flops: float,
        bytes_moved: float,
        kind: str = "stream",
        itemsize: int = 8,
    ) -> float:
        """Charge one kernel launch to the timeline; returns its duration."""
        dt = self.cost.kernel_time(flops, bytes_moved, kind=kind, itemsize=itemsize)
        self.timeline.record(name, "kernel", dt)
        self.kernel_launches += 1
        return dt

    def charge_cpu(self, name: str, seconds: float) -> float:
        """Charge a host-side phase (modeled CPU work) to the shared timeline."""
        self.timeline.record(name, "cpu", seconds)
        return seconds

    @contextlib.contextmanager
    def stage(self, tag: str) -> Iterator[None]:
        """Tag all events recorded inside the block with a stage label."""
        prev = self.timeline._tag
        self.timeline.set_tag(tag)
        try:
            yield
        finally:
            self.timeline.set_tag(prev)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Total simulated seconds on this device's timeline."""
        return self.timeline.clock.now

    def memory_info(self) -> tuple[int, int]:
        """(free, total) device memory in bytes, like ``cudaMemGetInfo``."""
        return self.allocator.free_bytes, self.allocator.capacity_bytes

    def reset(self) -> None:
        """Clear the timeline and allocation statistics (new context)."""
        self.timeline.clear()
        self.allocator = Allocator(self.spec.memory_bytes)
        self.kernel_launches = 0

    def __repr__(self) -> str:
        used = self.allocator.used_bytes
        return (
            f"<Device {self.spec.name!r} mem={used}/{self.spec.memory_bytes}B "
            f"t={self.elapsed:.6f}s>"
        )


_default_device: Device | None = None


def get_default_device() -> Device:
    """Return the process-wide default device, creating a K20c on first use."""
    global _default_device
    if _default_device is None:
        _default_device = Device()
    return _default_device


def set_default_device(device: Device | None) -> None:
    """Replace the process-wide default device (None resets to lazy K20c)."""
    global _default_device
    _default_device = device


@contextlib.contextmanager
def default_device(device: Device) -> Iterator[Device]:
    """Temporarily install ``device`` as the default (scoped context)."""
    global _default_device
    prev = _default_device
    _default_device = device
    try:
        yield device
    finally:
        _default_device = prev
