"""nvprof-style profiling over the simulated timeline.

The :class:`Profiler` wraps a device and produces :class:`ProfileReport`
objects: per-stage and per-category simulated-time aggregations.  Table VII
of the paper ("Comparison Between Data Communication Time and Computation
Time") is exactly ``report.communication`` vs ``report.computation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cuda.device import Device
from repro.hw.timeline import COMMUNICATION_CATEGORIES


@dataclass(frozen=True)
class ProfileReport:
    """Aggregated simulated times for one profiled region."""

    #: total simulated seconds spent in H2D+D2H transfers
    communication: float
    #: total simulated seconds spent in kernels + modeled CPU phases
    computation: float
    #: seconds per event category ("kernel", "h2d", "d2h", "cpu", "overhead")
    by_category: dict[str, float] = field(default_factory=dict)
    #: seconds per stage tag ("similarity", "eigensolver", "kmeans", ...)
    by_stage: dict[str, float] = field(default_factory=dict)
    #: number of kernel launches observed
    kernel_launches: int = 0
    #: caching-allocator counters over the profiled region (hits, misses,
    #: hit_rate, bytes_reserved, ...); empty if the device was not sampled
    allocator: dict = field(default_factory=dict)
    #: PCIe traffic counters over the profiled region (bytes_h2d, bytes_d2h,
    #: transfers_elided, bytes_elided, overlap_s, ...)
    transfers: dict = field(default_factory=dict)
    #: per-kernel launch counts and simulated seconds, keyed by kernel name
    #: (``{"fused_assign": {"count": 12, "seconds": 3.1e-4}, ...}``)
    kernels: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.communication + self.computation

    def communication_fraction(self) -> float:
        """Fraction of total simulated time spent on the PCIe bus."""
        t = self.total
        return self.communication / t if t > 0 else 0.0

    def format_table(self) -> str:
        """Render the report as a fixed-width text table."""
        lines = [
            f"{'category':<12}{'seconds':>14}",
            "-" * 26,
        ]
        for cat, secs in sorted(self.by_category.items()):
            lines.append(f"{cat:<12}{secs:>14.6f}")
        lines.append("-" * 26)
        lines.append(f"{'comm':<12}{self.communication:>14.6f}")
        lines.append(f"{'compute':<12}{self.computation:>14.6f}")
        return "\n".join(lines)


class Profiler:
    """Collects a :class:`ProfileReport` from a device timeline.

    Usage::

        prof = Profiler(device)
        prof.start()
        ...  # run simulated work
        report = prof.stop()
    """

    #: allocator/transfer counters that accumulate monotonically — these are
    #: reported as deltas over the profiled region; the rest (bytes_in_use,
    #: bytes_reserved, peaks, ...) are point-in-time gauges.
    _ALLOC_DELTA_KEYS = (
        "hits", "misses", "flushes", "segment_frees", "splits", "coalesces",
        "same_stream_hits", "event_gated_hits", "blocked_reuses",
        "scratch_requests", "scratch_hits", "scratch_bytes",
    )

    def __init__(self, device: Device) -> None:
        self.device = device
        self._start_index: int | None = None
        self._start_alloc: dict = {}
        self._start_transfers: dict = {}

    def start(self) -> None:
        self._start_index = len(self.device.timeline)
        self._start_alloc = self.device.alloc_stats()
        self._start_transfers = self.device.transfer_stats()

    def stop(self) -> ProfileReport:
        if self._start_index is None:
            raise RuntimeError("Profiler.stop() called before start()")
        events = self.device.timeline.events[self._start_index :]
        alloc = self.device.alloc_stats()
        for key in self._ALLOC_DELTA_KEYS:
            alloc[key] -= self._start_alloc.get(key, 0)
        n = alloc["hits"] + alloc["misses"]
        alloc["hit_rate"] = alloc["hits"] / n if n else 0.0
        transfers = self.device.transfer_stats()
        for key, start_val in self._start_transfers.items():
            transfers[key] -= start_val
        self._start_index = None
        return _aggregate(events, allocator=alloc, transfers=transfers)

    def snapshot(self) -> ProfileReport:
        """Report over the device's entire timeline (no start/stop needed)."""
        return _aggregate(
            self.device.timeline.events,
            allocator=self.device.alloc_stats(),
            transfers=self.device.transfer_stats(),
        )


def merge_reports(reports) -> ProfileReport:
    """Sum several :class:`ProfileReport`\\ s into one.

    The serving layer runs work on a pool of devices, each with its own
    profiler; the service-level communication/computation split (and the
    per-stage breakdown) is the sum over the pool.  Note the merged
    ``total`` is aggregate busy time, not a makespan — overlap accounting
    lives in the scheduler's timeline.
    """
    comm = 0.0
    comp = 0.0
    by_cat: dict[str, float] = {}
    by_stage: dict[str, float] = {}
    kernels = 0
    by_kernel: dict[str, dict] = {}
    alloc: dict = {}
    transfers: dict = {}
    for rep in reports:
        comm += rep.communication
        comp += rep.computation
        kernels += rep.kernel_launches
        for cat, secs in rep.by_category.items():
            by_cat[cat] = by_cat.get(cat, 0.0) + secs
        for stage, secs in rep.by_stage.items():
            by_stage[stage] = by_stage.get(stage, 0.0) + secs
        for name, slot in rep.kernels.items():
            merged = by_kernel.setdefault(name, {"count": 0, "seconds": 0.0})
            merged["count"] += slot["count"]
            merged["seconds"] += slot["seconds"]
        for key, val in rep.allocator.items():
            if key == "caching":
                alloc["caching"] = bool(alloc.get("caching")) or bool(val)
            elif key != "hit_rate":
                alloc[key] = alloc.get(key, 0) + val
        for key, val in rep.transfers.items():
            transfers[key] = transfers.get(key, 0) + val
    if alloc:
        n = alloc.get("hits", 0) + alloc.get("misses", 0)
        alloc["hit_rate"] = alloc.get("hits", 0) / n if n else 0.0
    return ProfileReport(
        communication=comm,
        computation=comp,
        by_category=by_cat,
        by_stage=by_stage,
        kernel_launches=kernels,
        allocator=alloc,
        transfers=transfers,
        kernels=by_kernel,
    )


def _aggregate(events, allocator: dict | None = None, transfers: dict | None = None) -> ProfileReport:
    comm = 0.0
    comp = 0.0
    by_cat: dict[str, float] = {}
    by_stage: dict[str, float] = {}
    kernels = 0
    by_kernel: dict[str, dict] = {}
    for ev in events:
        by_cat[ev.category] = by_cat.get(ev.category, 0.0) + ev.duration
        by_stage[ev.tag] = by_stage.get(ev.tag, 0.0) + ev.duration
        if ev.category in COMMUNICATION_CATEGORIES:
            comm += ev.duration
        else:
            comp += ev.duration
        if ev.category == "kernel":
            kernels += 1
            slot = by_kernel.setdefault(ev.name, {"count": 0, "seconds": 0.0})
            slot["count"] += 1
            slot["seconds"] += ev.duration
    return ProfileReport(
        communication=comm,
        computation=comp,
        by_category=by_cat,
        by_stage=by_stage,
        kernel_launches=kernels,
        allocator=allocator if allocator is not None else {},
        transfers=transfers if transfers is not None else {},
        kernels=by_kernel,
    )
