"""Launch-configuration helpers: grid sizing and a simple occupancy model."""

from __future__ import annotations

import math

from repro.errors import InvalidKernelLaunch
from repro.hw.spec import GPUSpec


def grid_1d(n_threads_needed: int, block_size: int = 256) -> tuple[int, int]:
    """Return ``(grid_dim, block_dim)`` covering at least ``n_threads_needed``.

    The idiomatic CUDA ``(N + B - 1) / B`` computation.
    """
    if n_threads_needed < 0:
        raise InvalidKernelLaunch(f"negative thread count: {n_threads_needed}")
    if block_size <= 0:
        raise InvalidKernelLaunch(f"non-positive block size: {block_size}")
    if n_threads_needed == 0:
        return 1, block_size
    return (n_threads_needed + block_size - 1) // block_size, block_size


def occupancy(
    spec: GPUSpec, block_size: int, registers_per_thread: int = 32
) -> float:
    """Fraction of maximum resident warps achieved per SM.

    A coarse Kepler model: each SM supports 64 resident warps and has a
    64K-register file; occupancy is limited by whichever runs out first.
    Used only for reporting — the cost model folds average occupancy into
    its efficiency factors.
    """
    if block_size <= 0 or block_size > spec.max_threads_per_block:
        raise InvalidKernelLaunch(f"invalid block size {block_size}")
    warps_per_block = math.ceil(block_size / spec.warp_size)
    max_warps = 64
    regs_per_sm = 65536
    blocks_by_warps = max_warps // warps_per_block if warps_per_block else 0
    regs_per_block = registers_per_thread * block_size
    blocks_by_regs = regs_per_sm // max(1, regs_per_block)
    # Kepler caps resident blocks per SM at 16.
    resident_blocks = max(0, min(blocks_by_warps, blocks_by_regs, 16))
    return min(1.0, resident_blocks * warps_per_block / max_warps)
