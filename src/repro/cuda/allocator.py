"""Caching device allocator: size-bucketed free lists over device memory.

Real ``cudaMalloc``/``cudaFree`` are expensive (device-wide synchronization
plus driver work, ~10 us each), which is why every serious CUDA runtime —
PyTorch's ``CUDACachingAllocator``, CUB/Thrust's ``CachingDeviceAllocator``,
cuDF's RMM pools — caches freed blocks instead of returning them to the
driver.  The hot loops in this pipeline hit exactly that pattern: the
k-means Lloyd iteration allocates and frees seven temporaries per sweep,
the Lanczos restart loop cycles small staging buffers, and Thrust sorts
grab scratch space per call.

:class:`CachingAllocator` layers a size-bucketed free list on top of the
byte-counting :class:`~repro.cuda.memory.Allocator`:

* requests are rounded up to a 512 B-granular *bucket*; a freed block
  parks on its bucket's free list rather than shrinking the reservation;
* an allocation served from a free list is a **hit** — no ``cudaMalloc``
  latency is charged by the device;
* when no exact-size block is parked but a *larger* one is, the request is
  **split** out of the smallest such block: the child serves the request
  (a hit — no malloc latency) and the remainder parks on its own bucket,
  ready to coalesce back into the parent when the child is released —
  the best-fit split/merge dance of the PyTorch block pool;
* a **miss** reserves a fresh bucket from capacity (charging malloc
  latency); if the reservation would exceed capacity the cache is flushed
  (``cudaFree`` of every parked block) and the reservation retried once —
  the same flush-and-retry PyTorch performs before surfacing OOM;
* blocks larger than ``large_threshold`` are never cached (a pathological
  working set must not pin the whole device), mirroring the size-class
  split of the real allocators.

Because the simulation tracks byte counts rather than addresses, a "block"
is a counter per bucket; fragmentation manifests as the gap between
``used_bytes`` (requested) and ``reserved_bytes`` (bucket-rounded), which
the stats expose.  Faults are injected *before* the cache is consulted
(``Device._new_array``), so chaos OOM faults are never masked by a hit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.memory import Allocator
from repro.errors import DeviceMemoryError

#: smallest bucket handed out — sub-512 B requests round up to this, like
#: the 512 B minimum block of the PyTorch allocator.
MIN_BUCKET_BYTES = 512

#: blocks above this size bypass the cache entirely (freed eagerly).
LARGE_BLOCK_THRESHOLD = 256 * 1024 * 1024


def bucket_bytes(nbytes: int) -> int:
    """Round a request up to its size class (512 B granularity).

    Multiples of 512 B, the PyTorch allocator's ``kMinBlockSize`` rounding:
    repeated same-shape allocations (the hot-loop pattern) land in the same
    class and reuse each other's blocks, while worst-case internal
    fragmentation stays under 512 B per block — power-of-two classes would
    waste up to half the device on oddly-sized working sets.
    """
    if nbytes < 0:
        raise ValueError("negative allocation")
    if nbytes == 0:
        return 0
    return -(-nbytes // MIN_BUCKET_BYTES) * MIN_BUCKET_BYTES


@dataclass(frozen=True)
class AllocOutcome:
    """What one ``allocate`` call did, so the device can charge for it.

    ``hit`` means the request was served from the free list (no malloc
    latency); ``split`` marks the hits that carved the block out of a
    larger parked one; ``flushed_segments`` counts cached blocks returned
    to the driver by a flush-and-retry before the reservation succeeded
    (each one is a real ``cudaFree``).
    """

    hit: bool
    flushed_segments: int = 0
    split: bool = False


class CachingAllocator(Allocator):
    """Size-bucketed caching allocator over the device byte budget.

    Inherits the byte accounting of :class:`Allocator` — ``used_bytes`` is
    requested bytes in live arrays, identical to the non-caching allocator —
    and adds ``reserved_bytes``: the bucket-rounded footprint held from the
    device, including parked free blocks.
    """

    def __init__(
        self,
        capacity_bytes: int,
        large_threshold: int = LARGE_BLOCK_THRESHOLD,
    ) -> None:
        super().__init__(capacity_bytes)
        self.large_threshold = int(large_threshold)
        self.reserved_bytes = 0
        self.peak_reserved_bytes = 0
        #: bucket size -> number of parked (freed, reusable) blocks
        self._free_blocks: dict[int, int] = {}
        self.n_hits = 0
        self.n_misses = 0
        self.n_flushes = 0
        #: real cudaFree calls (flush segments + eager large-block frees)
        self.n_segment_frees = 0
        self.n_splits = 0
        self.n_coalesces = 0
        #: outstanding split remainders: (child_bucket, remainder_bucket)
        #: -> count; a release of a child-sized block whose matching
        #: remainder is still parked coalesces the pair back together
        self._split_pairs: dict[tuple[int, int], int] = {}

    # -- free-list bookkeeping -----------------------------------------
    @property
    def free_bytes(self) -> int:
        """Allocatable headroom: capacity minus the *rounded* live
        footprint.  Parked blocks count as free — a miss that needs their
        space reclaims them with a flush-and-retry — but live-block
        rounding does not, so working-set sizing (k-means auto-tiling)
        never plans into bytes the buckets have already swallowed."""
        return self.capacity_bytes - (self.reserved_bytes - self.cached_bytes)

    @property
    def cached_bytes(self) -> int:
        """Bytes parked on free lists (reserved but not in use)."""
        return sum(b * n for b, n in self._free_blocks.items())

    @property
    def cached_blocks(self) -> int:
        return sum(self._free_blocks.values())

    def empty_cache(self) -> int:
        """Flush every parked block back to the driver (``cudaFree`` each).

        Returns the number of segments released, so callers can charge the
        corresponding free latency.
        """
        segments = self.cached_blocks
        self.reserved_bytes -= self.cached_bytes
        self._free_blocks.clear()
        self._split_pairs.clear()  # the remainders just went back to the driver
        self.n_segment_frees += segments
        return segments

    # -- allocate / release --------------------------------------------
    def allocate(self, nbytes: int) -> AllocOutcome:
        if nbytes < 0:
            raise ValueError("negative allocation")
        bucket = bucket_bytes(nbytes)
        parked = self._free_blocks.get(bucket, 0)
        if parked > 0 and bucket <= self.large_threshold:
            if parked == 1:
                del self._free_blocks[bucket]
            else:
                self._free_blocks[bucket] = parked - 1
            self.used_bytes += nbytes
            self.alloc_count += 1
            self.n_hits += 1
            self.peak_bytes = max(self.peak_bytes, self.used_bytes)
            return AllocOutcome(hit=True)

        if 0 < bucket <= self.large_threshold:
            # no exact-size block parked: carve the request out of the
            # smallest larger one (best-fit split, as the real caching
            # allocators do) instead of paying cudaMalloc latency.  The
            # remainder — always a 512 B multiple ≥ 512 B — parks on its
            # own bucket and can coalesce back when the child is released.
            parent = min(
                (
                    b
                    for b, cnt in self._free_blocks.items()
                    if cnt > 0 and b > bucket and b <= self.large_threshold
                ),
                default=0,
            )
            if parent:
                if self._free_blocks[parent] == 1:
                    del self._free_blocks[parent]
                else:
                    self._free_blocks[parent] -= 1
                remainder = parent - bucket
                self._free_blocks[remainder] = (
                    self._free_blocks.get(remainder, 0) + 1
                )
                pair = (bucket, remainder)
                self._split_pairs[pair] = self._split_pairs.get(pair, 0) + 1
                self.used_bytes += nbytes
                self.alloc_count += 1
                self.n_hits += 1
                self.n_splits += 1
                self.peak_bytes = max(self.peak_bytes, self.used_bytes)
                return AllocOutcome(hit=True, split=True)

        flushed = 0
        if self.reserved_bytes + bucket > self.capacity_bytes:
            flushed = self.empty_cache()
            if flushed:
                self.n_flushes += 1
            if self.reserved_bytes + bucket > self.capacity_bytes:
                raise DeviceMemoryError(
                    f"out of device memory: requested {nbytes} bytes "
                    f"(rounds to {bucket}) with "
                    f"{self.capacity_bytes - self.reserved_bytes} of "
                    f"{self.capacity_bytes} unreserved"
                )
        self.reserved_bytes += bucket
        self.used_bytes += nbytes
        self.alloc_count += 1
        self.n_misses += 1
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)
        return AllocOutcome(hit=False, flushed_segments=flushed)

    def release(self, nbytes: int) -> bool:
        """Return a block to the cache; returns True iff a real ``cudaFree``
        happened (large blocks bypass the cache)."""
        if nbytes < 0:
            raise ValueError("negative release")
        self.used_bytes = max(0, self.used_bytes - nbytes)
        bucket = bucket_bytes(nbytes)
        if bucket == 0:
            return False
        if bucket > self.large_threshold:
            self.reserved_bytes = max(0, self.reserved_bytes - bucket)
            self.n_segment_frees += 1
            return True
        # coalesce: if this block was split off a parent whose remainder is
        # still parked, merge the two back into one parent-sized block
        for (child, remainder), cnt in self._split_pairs.items():
            if (
                child == bucket
                and cnt > 0
                and self._free_blocks.get(remainder, 0) > 0
            ):
                if cnt == 1:
                    del self._split_pairs[(child, remainder)]
                else:
                    self._split_pairs[(child, remainder)] = cnt - 1
                if self._free_blocks[remainder] == 1:
                    del self._free_blocks[remainder]
                else:
                    self._free_blocks[remainder] -= 1
                parent = child + remainder
                self._free_blocks[parent] = self._free_blocks.get(parent, 0) + 1
                self.n_coalesces += 1
                return False
        self._free_blocks[bucket] = self._free_blocks.get(bucket, 0) + 1
        return False

    # -- stats -----------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        n = self.n_hits + self.n_misses
        return self.n_hits / n if n else 0.0

    def stats(self) -> dict:
        """Counters for Profiler / ServiceReport / CLI surfacing."""
        return {
            "caching": True,
            "hits": self.n_hits,
            "misses": self.n_misses,
            "hit_rate": self.hit_rate,
            "flushes": self.n_flushes,
            "segment_frees": self.n_segment_frees,
            "splits": self.n_splits,
            "coalesces": self.n_coalesces,
            "bytes_in_use": self.used_bytes,
            "bytes_reserved": self.reserved_bytes,
            "bytes_cached": self.cached_bytes,
            "peak_bytes_in_use": self.peak_bytes,
            "peak_bytes_reserved": self.peak_reserved_bytes,
        }
