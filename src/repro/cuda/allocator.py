"""Caching device allocator: stream-aware, size-bucketed free lists.

Real ``cudaMalloc``/``cudaFree`` are expensive (device-wide synchronization
plus driver work, ~10 us each), which is why every serious CUDA runtime —
PyTorch's ``CUDACachingAllocator``, CUB/Thrust's ``CachingDeviceAllocator``,
cuDF's RMM pools — caches freed blocks instead of returning them to the
driver.  The hot loops in this pipeline hit exactly that pattern: the
k-means Lloyd iteration allocates and frees seven temporaries per sweep,
the Lanczos restart loop cycles small staging buffers, and Thrust sorts
grab scratch space per call.

:class:`CachingAllocator` layers a size-bucketed free list on top of the
byte-counting :class:`~repro.cuda.memory.Allocator`:

* requests are rounded up to a 512 B-granular *bucket*; a freed block
  parks on its bucket's free list rather than shrinking the reservation;
* an allocation served from a free list is a **hit** — no ``cudaMalloc``
  latency is charged by the device;
* when no exact-size block is parked but a *larger* one is, the request is
  **split** out of the smallest such block: the child serves the request
  (a hit — no malloc latency) and the remainder parks on its own bucket,
  ready to coalesce back into the parent when the child is released —
  the best-fit split/merge dance of the PyTorch block pool;
* a **miss** reserves a fresh bucket from capacity (charging malloc
  latency); if the reservation would exceed capacity the cache is flushed
  (``cudaFree`` of every parked block) and the reservation retried once —
  the same flush-and-retry PyTorch performs before surfacing OOM;
* blocks larger than ``large_threshold`` are never cached (a pathological
  working set must not pin the whole device), mirroring the size-class
  split of the real allocators.

**Stream awareness** (the PyTorch per-stream block-pool rule): every parked
block remembers the stream it was freed on and the simulated time its
free *event* completes.  A request on the same stream reuses the block
immediately — stream FIFO ordering guarantees the old use finished — and
counts as a ``same_stream`` hit.  A request on a *different* stream may
only take the block once its free event has completed (``now >= ready``),
an ``event_gated`` hit; before that the block is invisible to other
streams (``blocked_reuses`` counts requests that had parked bytes they
were not allowed to touch).  Work on the default stream alone never hits
the gate, so single-stream behavior is byte-for-byte the pre-stream-aware
allocator.

**Thrust scratch** rides the same free lists through
``allocate_scratch``/``release_scratch`` (the ``ThrustAllocator`` pattern:
``thrust::sort`` double buffers and CUB scan tile state come from the
caching allocator, not raw ``cudaMalloc``).  Scratch traffic keeps its own
counters so the steady-state *array* allocation counts — e.g. the k-means
zero-allocs-per-iteration invariant — stay meaningful.

Because the simulation tracks byte counts rather than addresses, a "block"
is an entry per bucket; fragmentation manifests as the gap between
``used_bytes`` (requested) and ``reserved_bytes`` (bucket-rounded), which
the stats expose.  Faults are injected *before* the cache is consulted
(``Device._new_array``), so chaos OOM faults are never masked by a hit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.memory import Allocator
from repro.errors import DeviceMemoryError

#: smallest bucket handed out — sub-512 B requests round up to this, like
#: the 512 B minimum block of the PyTorch allocator.
MIN_BUCKET_BYTES = 512

#: blocks above this size bypass the cache entirely (freed eagerly).
LARGE_BLOCK_THRESHOLD = 256 * 1024 * 1024

#: stream id of the default (NULL) stream.
DEFAULT_STREAM = 0


def bucket_bytes(nbytes: int) -> int:
    """Round a request up to its size class (512 B granularity).

    Multiples of 512 B, the PyTorch allocator's ``kMinBlockSize`` rounding:
    repeated same-shape allocations (the hot-loop pattern) land in the same
    class and reuse each other's blocks, while worst-case internal
    fragmentation stays under 512 B per block — power-of-two classes would
    waste up to half the device on oddly-sized working sets.
    """
    if nbytes < 0:
        raise ValueError("negative allocation")
    if nbytes == 0:
        return 0
    return -(-nbytes // MIN_BUCKET_BYTES) * MIN_BUCKET_BYTES


@dataclass(frozen=True)
class AllocOutcome:
    """What one ``allocate`` call did, so the device can charge for it.

    ``hit`` means the request was served from the free list (no malloc
    latency); ``split`` marks the hits that carved the block out of a
    larger parked one; ``flushed_segments`` counts cached blocks returned
    to the driver by a flush-and-retry before the reservation succeeded
    (each one is a real ``cudaFree``).  ``same_stream`` / ``event_gated``
    classify a hit by how the stream rules admitted it.
    """

    hit: bool
    flushed_segments: int = 0
    split: bool = False
    #: hit reused a block freed on the requesting stream (FIFO-safe)
    same_stream: bool = False
    #: hit reused another stream's block after its free event completed
    event_gated: bool = False


class _FreeBlock:
    """One parked block: the stream that freed it and when its free event
    completes on the simulated clock."""

    __slots__ = ("stream", "ready")

    def __init__(self, stream: int, ready: float) -> None:
        self.stream = stream
        self.ready = ready


class PinnedHostPool:
    """Pinned-host (``cudaHostAlloc``) staging pool for H2D/D2H legs.

    Every async PCIe leg in the simulation stages through pinned host
    memory — that is what justifies the link's modeled ``efficiency``
    (pageable transfers run far below it) and what lets ``cudaMemcpyAsync``
    overlap compute at all.  The pool mirrors how runtimes manage that
    memory: registrations are expensive (``cudaHostAlloc`` synchronizes
    the device), so the pool grows to the high-water staging size once and
    every later leg reuses it.  The counters feed ``transfer_stats`` /
    the profiler; staging never adds simulated time of its own — its cost
    is already baked into the PCIe efficiency factor.
    """

    __slots__ = ("pool_bytes", "n_registrations", "n_stages", "n_reuses",
                 "staged_bytes")

    def __init__(self) -> None:
        #: current pinned pool size (high-water mark of staging requests)
        self.pool_bytes = 0
        #: cudaHostAlloc-style pool growths
        self.n_registrations = 0
        #: staging trips through the pool (one per async transfer leg)
        self.n_stages = 0
        #: trips served by an existing registration (no host-alloc)
        self.n_reuses = 0
        #: total bytes staged through the pool
        self.staged_bytes = 0

    def stage(self, nbytes: int) -> bool:
        """Record one transfer leg staging ``nbytes``; returns True when
        the pool had to grow (a new pinned registration)."""
        if nbytes < 0:
            raise ValueError("negative staging size")
        self.n_stages += 1
        self.staged_bytes += nbytes
        if nbytes > self.pool_bytes:
            self.pool_bytes = nbytes
            self.n_registrations += 1
            return True
        self.n_reuses += 1
        return False

    def stats(self) -> dict:
        return {
            "pinned_pool_bytes": self.pool_bytes,
            "pinned_registrations": self.n_registrations,
            "pinned_stages": self.n_stages,
            "pinned_reuses": self.n_reuses,
            "pinned_staged_bytes": self.staged_bytes,
        }


class CachingAllocator(Allocator):
    """Size-bucketed caching allocator over the device byte budget.

    Inherits the byte accounting of :class:`Allocator` — ``used_bytes`` is
    requested bytes in live arrays, identical to the non-caching allocator —
    and adds ``reserved_bytes``: the bucket-rounded footprint held from the
    device, including parked free blocks.
    """

    def __init__(
        self,
        capacity_bytes: int,
        large_threshold: int = LARGE_BLOCK_THRESHOLD,
    ) -> None:
        super().__init__(capacity_bytes)
        self.large_threshold = int(large_threshold)
        self.reserved_bytes = 0
        self.peak_reserved_bytes = 0
        #: bucket size -> parked (freed, reusable) blocks with stream tags
        self._free_lists: dict[int, list[_FreeBlock]] = {}
        self.n_hits = 0
        self.n_misses = 0
        self.n_flushes = 0
        #: real cudaFree calls (flush segments + eager large-block frees)
        self.n_segment_frees = 0
        self.n_splits = 0
        self.n_coalesces = 0
        #: stream-rule classification of hits (arrays + scratch)
        self.n_same_stream_hits = 0
        self.n_event_gated_hits = 0
        #: requests that found parked bytes but were denied reuse because
        #: another stream's free event had not completed yet
        self.n_blocked_reuses = 0
        #: thrust scratch traffic (kept out of the array hit/miss counters)
        self.n_scratch_requests = 0
        self.n_scratch_hits = 0
        self.scratch_bytes_served = 0
        #: outstanding split remainders: (child_bucket, remainder_bucket)
        #: -> count; a release of a child-sized block whose matching
        #: remainder is still parked coalesces the pair back together
        self._split_pairs: dict[tuple[int, int], int] = {}

    # -- free-list bookkeeping -----------------------------------------
    @property
    def free_bytes(self) -> int:
        """Allocatable headroom: capacity minus the *rounded* live
        footprint.  Parked blocks count as free — a miss that needs their
        space reclaims them with a flush-and-retry — but live-block
        rounding does not, so working-set sizing (k-means auto-tiling)
        never plans into bytes the buckets have already swallowed."""
        return self.capacity_bytes - (self.reserved_bytes - self.cached_bytes)

    @property
    def cached_bytes(self) -> int:
        """Bytes parked on free lists (reserved but not in use)."""
        return sum(b * len(blks) for b, blks in self._free_lists.items())

    @property
    def cached_blocks(self) -> int:
        return sum(len(blks) for blks in self._free_lists.values())

    def parked_blocks(self, bucket: int) -> int:
        """Number of parked blocks on one bucket's free list (test/debug)."""
        return len(self._free_lists.get(bucket, ()))

    def empty_cache(self) -> int:
        """Flush every parked block back to the driver (``cudaFree`` each).

        ``cudaFree`` synchronizes the device, so pending free events are
        moot — every parked block goes back regardless of stream tags.
        Returns the number of segments released, so callers can charge the
        corresponding free latency.
        """
        segments = self.cached_blocks
        self.reserved_bytes -= self.cached_bytes
        self._free_lists.clear()
        self._split_pairs.clear()  # the remainders just went back to the driver
        self.n_segment_frees += segments
        return segments

    # -- stream admission ------------------------------------------------
    def _take_usable(
        self, bucket: int, stream: int, now: float
    ) -> _FreeBlock | None:
        """Pop a parked block of ``bucket`` the stream rules admit, or
        None.  Same-stream blocks win over event-gated ones (no reason to
        cross streams when a FIFO-safe block exists)."""
        blocks = self._free_lists.get(bucket)
        if not blocks:
            return None
        pick = None
        for i, blk in enumerate(blocks):
            if blk.stream == stream:
                pick = i
                break
            if pick is None and blk.ready <= now:
                pick = i
        if pick is None:
            return None
        blk = blocks.pop(pick)
        if not blocks:
            del self._free_lists[bucket]
        return blk

    def _park(self, bucket: int, stream: int, ready: float) -> None:
        self._free_lists.setdefault(bucket, []).append(
            _FreeBlock(stream, ready)
        )

    # -- allocate / release --------------------------------------------
    def allocate(
        self,
        nbytes: int,
        stream: int = DEFAULT_STREAM,
        now: float = 0.0,
        scratch: bool = False,
    ) -> AllocOutcome:
        if nbytes < 0:
            raise ValueError("negative allocation")
        bucket = bucket_bytes(nbytes)
        if scratch:
            self.n_scratch_requests += 1
            self.scratch_bytes_served += nbytes
        had_parked = self.parked_blocks(bucket) > 0
        if bucket <= self.large_threshold:
            blk = self._take_usable(bucket, stream, now)
            if blk is not None:
                return self._account_hit(
                    nbytes, blk, stream, scratch, split=False
                )
            if had_parked:
                self.n_blocked_reuses += 1

        if 0 < bucket <= self.large_threshold:
            # no exact-size block usable: carve the request out of the
            # smallest admissible larger one (best-fit split, as the real
            # caching allocators do) instead of paying cudaMalloc latency.
            # The remainder — always a 512 B multiple ≥ 512 B — parks on
            # its own bucket and can coalesce back when the child is
            # released.
            for parent in sorted(self._free_lists):
                if parent <= bucket or parent > self.large_threshold:
                    continue
                blk = self._take_usable(parent, stream, now)
                if blk is None:
                    continue
                remainder = parent - bucket
                self._park(remainder, blk.stream, blk.ready)
                pair = (bucket, remainder)
                self._split_pairs[pair] = self._split_pairs.get(pair, 0) + 1
                self.n_splits += 1
                return self._account_hit(
                    nbytes, blk, stream, scratch, split=True
                )

        flushed = 0
        if self.reserved_bytes + bucket > self.capacity_bytes:
            flushed = self.empty_cache()
            if flushed:
                self.n_flushes += 1
            if self.reserved_bytes + bucket > self.capacity_bytes:
                raise DeviceMemoryError(
                    f"out of device memory: requested {nbytes} bytes "
                    f"(rounds to {bucket}) with "
                    f"{self.capacity_bytes - self.reserved_bytes} of "
                    f"{self.capacity_bytes} unreserved"
                )
        self.reserved_bytes += bucket
        self.used_bytes += nbytes
        if not scratch:
            self.alloc_count += 1
            self.n_misses += 1
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)
        return AllocOutcome(hit=False, flushed_segments=flushed)

    def _account_hit(
        self,
        nbytes: int,
        blk: _FreeBlock,
        stream: int,
        scratch: bool,
        split: bool,
    ) -> AllocOutcome:
        same = blk.stream == stream
        if same:
            self.n_same_stream_hits += 1
        else:
            self.n_event_gated_hits += 1
        self.used_bytes += nbytes
        if scratch:
            self.n_scratch_hits += 1
        else:
            self.alloc_count += 1
            self.n_hits += 1
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return AllocOutcome(
            hit=True, split=split, same_stream=same, event_gated=not same
        )

    def release(
        self,
        nbytes: int,
        stream: int = DEFAULT_STREAM,
        ready: float = 0.0,
        scratch: bool = False,
    ) -> bool:
        """Return a block to the cache; returns True iff a real ``cudaFree``
        happened (large blocks bypass the cache).

        ``ready`` is when the freeing stream's in-flight work — and
        therefore the block's free event — completes; other streams may
        not reuse the block before then.
        """
        if nbytes < 0:
            raise ValueError("negative release")
        self.used_bytes = max(0, self.used_bytes - nbytes)
        bucket = bucket_bytes(nbytes)
        if bucket == 0:
            return False
        if bucket > self.large_threshold:
            self.reserved_bytes = max(0, self.reserved_bytes - bucket)
            self.n_segment_frees += 1
            return True
        # coalesce: if this block was split off a parent whose remainder is
        # still parked, merge the two back into one parent-sized block
        for (child, remainder), cnt in self._split_pairs.items():
            if child != bucket or cnt <= 0:
                continue
            rem_blocks = self._free_lists.get(remainder)
            if not rem_blocks:
                continue
            if cnt == 1:
                del self._split_pairs[(child, remainder)]
            else:
                self._split_pairs[(child, remainder)] = cnt - 1
            rem = rem_blocks.pop(0)
            if not rem_blocks:
                del self._free_lists[remainder]
            parent = child + remainder
            # the merged block is usable only when both halves are: the
            # remainder's free event and this release's both gate it
            self._park(parent, stream, max(ready, rem.ready))
            self.n_coalesces += 1
            return False
        self._park(bucket, stream, ready)
        return False

    # -- thrust scratch (ThrustAllocator pattern) ------------------------
    def allocate_scratch(
        self,
        nbytes: int,
        stream: int = DEFAULT_STREAM,
        now: float = 0.0,
    ) -> AllocOutcome:
        """Temporary storage for a thrust/CUB call, served from the same
        free lists as array allocations but counted separately — the
        per-call ``raw_allocate`` of PyTorch's ``ThrustAllocator``."""
        return self.allocate(nbytes, stream=stream, now=now, scratch=True)

    def release_scratch(
        self,
        nbytes: int,
        stream: int = DEFAULT_STREAM,
        ready: float = 0.0,
    ) -> bool:
        return self.release(nbytes, stream=stream, ready=ready, scratch=True)

    # -- stats -----------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        n = self.n_hits + self.n_misses
        return self.n_hits / n if n else 0.0

    def stats(self) -> dict:
        """Counters for Profiler / ServiceReport / CLI surfacing."""
        return {
            "caching": True,
            "hits": self.n_hits,
            "misses": self.n_misses,
            "hit_rate": self.hit_rate,
            "flushes": self.n_flushes,
            "segment_frees": self.n_segment_frees,
            "splits": self.n_splits,
            "coalesces": self.n_coalesces,
            "same_stream_hits": self.n_same_stream_hits,
            "event_gated_hits": self.n_event_gated_hits,
            "blocked_reuses": self.n_blocked_reuses,
            "scratch_requests": self.n_scratch_requests,
            "scratch_hits": self.n_scratch_hits,
            "scratch_bytes": self.scratch_bytes_served,
            "bytes_in_use": self.used_bytes,
            "bytes_reserved": self.reserved_bytes,
            "bytes_cached": self.cached_bytes,
            "peak_bytes_in_use": self.peak_bytes,
            "peak_bytes_reserved": self.peak_reserved_bytes,
        }
