"""Simulated CUDA runtime.

The subpackage reproduces the slice of the CUDA runtime the paper relies on:

* :class:`~repro.cuda.device.Device` — a GPU context with a device-memory
  allocator, a simulated timeline, and cost models built from a
  :class:`~repro.hw.spec.GPUSpec`;
* :class:`~repro.cuda.memory.DeviceArray` — device-resident ndarray handles;
  moving data on/off the device charges PCIe time to the timeline;
* :class:`~repro.cuda.kernel.Kernel` and
  :func:`~repro.cuda.kernel.launch` — kernel objects executed over a grid of
  thread blocks; the *numerics* run vectorized on the host while the *cost*
  is charged from the roofline model;
* :class:`~repro.cuda.stream.Stream` / :class:`~repro.cuda.stream.Event` —
  enough of the stream API for timing regions;
* :class:`~repro.cuda.profiler.Profiler` — nvprof-style per-category
  aggregation (communication vs computation, Table VII).

All numerics executed through this layer are real; only time is simulated.
"""

from repro.cuda.device import Device, get_default_device, set_default_device, default_device
from repro.cuda.memory import DeviceArray
from repro.cuda.kernel import Kernel, launch, LaunchConfig
from repro.cuda.launch import grid_1d, occupancy
from repro.cuda.stream import Stream, Event
from repro.cuda.profiler import Profiler, ProfileReport, merge_reports
from repro.cuda.trace import (
    export_chrome_trace,
    schedule_to_trace_events,
    timeline_to_trace_events,
)

__all__ = [
    "Device",
    "get_default_device",
    "set_default_device",
    "default_device",
    "DeviceArray",
    "Kernel",
    "launch",
    "LaunchConfig",
    "grid_1d",
    "occupancy",
    "Stream",
    "Event",
    "Profiler",
    "ProfileReport",
    "merge_reports",
    "export_chrome_trace",
    "schedule_to_trace_events",
    "timeline_to_trace_events",
]
