"""Stage-boundary marks for preemptive scheduling.

A unit of serving work (a k-means run, a cold fit) executes as one
opaque ``fn(device)`` call on the serial cost model, so by itself the
scheduler only knows the unit's total duration.  Preemption needs more:
the simulated times at which the unit could be *safely* suspended — the
natural save/restore points of the real algorithms.  Those are:

- every k-means Lloyd iteration (labels + centroids are consistent
  between iterations), and
- every Lanczos implicit restart (the factorization is compacted to a
  checkpointable basis block — the same point the resilience layer's
  checkpoint/restart machinery already uses).

The stage implementations call :func:`mark_boundary` at those points.
When no collector is active (every non-serving fit) the call is a
no-op costing one truth test; the serving scheduler wraps each unit's
execution in :func:`collect_boundaries` and converts the collected
device timestamps into offsets inside the unit's placed span.

The collector is a plain stack, not a context variable: the simulation
is single-threaded and units never nest scheduler runs, but a stack
keeps the semantics obvious if they ever do.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_stack: list[list[float]] = []


def mark_boundary(device) -> None:
    """Record ``device.elapsed`` as a preemption-safe point.

    Call this where the running algorithm could suspend and later resume
    without recomputation (end of a Lloyd iteration, a Lanczos restart).
    No-op unless a :func:`collect_boundaries` scope is active.
    """
    if _stack:
        _stack[-1].append(device.elapsed)


@contextmanager
def collect_boundaries() -> Iterator[list[float]]:
    """Collect the boundary marks fired while the scope is active.

    Yields the (live) list of absolute device timestamps; the caller
    turns them into offsets relative to the unit's own start.
    """
    marks: list[float] = []
    _stack.append(marks)
    try:
        yield marks
    finally:
        _stack.pop()
