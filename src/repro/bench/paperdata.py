"""The paper's published measurements, transcribed verbatim.

Keys follow the evaluation section: Tables III-VI give per-stage seconds
for CUDA/Matlab/Python on each dataset (Figures 3-6 plot the same data);
Table VII gives the communication/computation split of the CUDA runs; the
§V.C prose adds the vectorized similarity variants for DTI.
"""

from __future__ import annotations

PAPER_TABLES: dict = {
    # Table III / Figure 3 — DTI (142541 nodes, 3992290 edges, k=500)
    "table3_dti": {
        "similarity": {"cuda": 0.0331, "matlab": 221.249, "python": 220.880},
        "eigensolver": {"cuda": 475.442, "matlab": 603.165, "python": 3281.973},
        "kmeans": {"cuda": 5.407, "matlab": 1785.17, "python": 2154.7818},
    },
    # §V.C prose: vectorized similarity variants on DTI
    "dti_vectorized_similarity": {"matlab": 5.753, "python": 6.271},
    # Table IV / Figure 4 — FB (4039 nodes, 88234 edges, k=10)
    "table4_fb": {
        "eigensolver": {"cuda": 0.0216, "matlab": 0.1027, "python": 0.0851},
        "kmeans": {"cuda": 0.007251, "matlab": 0.0205, "python": 0.0259},
    },
    # Table V / Figure 5 — Syn200 (20000 nodes, 773388 edges, k=200)
    "table5_syn200": {
        "eigensolver": {"cuda": 4.1153, "matlab": 6.9531, "python": 18.915},
        "kmeans": {"cuda": 0.02478, "matlab": 38.3728, "python": 2.4719},
    },
    # Table VI / Figure 6 — DBLP (317080 nodes, 1049866 edges, k=500)
    "table6_dblp": {
        "eigensolver": {"cuda": 682.643, "matlab": 1885.2303, "python": 9338.31},
        "kmeans": {"cuda": 1.79456, "matlab": 1012.92, "python": 719.686},
    },
    # Table VII — CUDA communication vs computation seconds
    "table7_comm": {
        "dti": {"communication": 2.248, "computation": 475.213},
        "fb": {"communication": 0.002131, "computation": 0.02635},
        "dblp": {"communication": 2.731, "computation": 680.31},
        "syn200": {"communication": 0.0741, "computation": 3.8201},
    },
}

#: dataset name -> the Table III-VI key carrying its stage times
TABLE_OF_DATASET = {
    "dti": "table3_dti",
    "fb": "table4_fb",
    "syn200": "table5_syn200",
    "dblp": "table6_dblp",
}
