"""Benchmark harness: experiment runner, paper data, reporting.

Every table and figure of the paper's evaluation (§V) has a bench in
``benchmarks/`` built from these pieces:

* :mod:`repro.bench.paperdata` — the published numbers, transcribed;
* :mod:`repro.bench.runner` — runs one Table II workload through the
  hybrid pipeline and both baselines, collecting simulated/modeled times,
  and projects them to paper scale;
* :mod:`repro.bench.report` — fixed-width tables comparing measured
  against published values (who wins / by what factor).
"""

from repro.bench.paperdata import PAPER_TABLES
from repro.bench.record import diff_records, load_record, save_record
from repro.bench.runner import ComparisonResult, project_paper_scale, run_comparison
from repro.bench.report import format_comparison, format_paper_check, speedup

__all__ = [
    "PAPER_TABLES",
    "diff_records",
    "load_record",
    "save_record",
    "ComparisonResult",
    "run_comparison",
    "project_paper_scale",
    "format_comparison",
    "format_paper_check",
    "speedup",
]
