"""Fixed-width reporting for the benchmark harness."""

from __future__ import annotations

from repro.bench.runner import ComparisonResult


def speedup(baseline: float, ours: float) -> float:
    """Baseline-over-ours ratio; inf-safe."""
    if ours <= 0:
        return float("inf")
    return baseline / ours


def format_comparison(r: ComparisonResult) -> str:
    """Render one workload's three-column stage table (the Table III-VI
    layout), on the measured scaled workload."""
    lines = [
        f"dataset {r.dataset!r} @ scale {r.scale} — "
        f"n={r.n} edges={r.nnz_directed} k={r.k}",
        f"{'stage':<14}{'CUDA(sim)/s':>14}{'Matlab/s':>12}{'Python/s':>12}"
        f"{'vsM':>8}{'vsP':>8}",
        "-" * 68,
    ]
    for stage, cols in r.stages.items():
        lines.append(
            f"{stage:<14}{cols['cuda']:>14.5f}{cols['matlab']:>12.5f}"
            f"{cols['python']:>12.5f}"
            f"{speedup(cols['matlab'], cols['cuda']):>7.1f}x"
            f"{speedup(cols['python'], cols['cuda']):>7.1f}x"
        )
    if r.quality:
        q = ", ".join(f"{k}={v:.3f}" for k, v in r.quality.items())
        lines.append(f"ARI vs ground truth: {q}")
    lines.append(
        f"CUDA comm {r.comm:.5f}s vs comp {r.comp:.5f}s "
        f"({100 * r.comm / max(r.comm + r.comp, 1e-30):.1f}% on PCIe)"
    )
    return "\n".join(lines)


def format_paper_check(r: ComparisonResult) -> str:
    """Paper-scale projection next to the published numbers, with the
    shape verdict (same winner? factor within the same order?)."""
    if not r.projection or not r.paper:
        return "(no projection/paper data)"
    lines = [
        f"paper-scale projection for {r.dataset!r} "
        f"(n={r.n} scaled run drove the iteration counts)",
        f"{'stage':<14}{'column':<10}{'paper/s':>12}{'projected/s':>14}{'ratio':>8}",
        "-" * 58,
    ]
    for stage, pub in r.paper.items():
        proj = r.projection.get(stage, {})
        for col in ("cuda", "matlab", "python"):
            if col in pub and col in proj:
                ratio = proj[col] / pub[col] if pub[col] > 0 else float("inf")
                lines.append(
                    f"{stage:<14}{col:<10}{pub[col]:>12.4f}"
                    f"{proj[col]:>14.4f}{ratio:>7.2f}x"
                )
    # shape verdict: does the projected winner match the published winner?
    verdicts = []
    for stage, pub in r.paper.items():
        proj = r.projection.get(stage, {})
        cols = [c for c in ("cuda", "matlab", "python") if c in pub and c in proj]
        if len(cols) >= 2:
            pub_win = min(cols, key=lambda c: pub[c])
            proj_win = min(cols, key=lambda c: proj[c])
            verdicts.append(
                f"{stage}: winner {'MATCHES' if pub_win == proj_win else 'DIFFERS'}"
                f" (paper={pub_win}, projected={proj_win})"
            )
    lines.extend(verdicts)
    return "\n".join(lines)
