"""Experiment runner: one Table II workload through all three columns.

:func:`run_comparison` executes the hybrid CUDA pipeline (simulated K20c
times) and the Matlab-like / Python-like baselines (modeled Xeon times) on
a scaled-down instance, collecting per-stage numbers, clustering quality
against ground truth, and the iteration counts the paper-scale projection
needs.

:func:`project_paper_scale` re-evaluates every cost model at the paper's
published workload parameters (Table II n/edges/k, d=90 for DTI), reusing
the measured restart and Lloyd-iteration counts — the two quantities that
depend on spectral structure rather than on raw size.  The projection is
what EXPERIMENTS.md compares against Tables III-VII.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import cost as bcost
from repro.baselines.cost import MATLAB_2015A, PYTHON_27
from repro.baselines.matlab_like import run_matlab_like
from repro.baselines.python_like import run_python_like
from repro.bench.paperdata import PAPER_TABLES, TABLE_OF_DATASET
from repro.core.pipeline import SpectralClustering
from repro.cuda.device import Device
from repro.datasets.registry import PAPER_STATS, load_dataset
from repro.hw.costmodel import CPUCostModel, GPUCostModel, TransferCostModel
from repro.hw.spec import K20C, PCIE_X16_GEN2, XEON_E5_2690
from repro.metrics.external import adjusted_rand_index


@dataclass
class ComparisonResult:
    """All three columns on one workload."""

    dataset: str
    scale: float
    n: int
    nnz_directed: int
    k: int
    #: stage -> column -> seconds (simulated for cuda, modeled for others)
    stages: dict
    #: column -> ARI against the generator's ground truth
    quality: dict
    #: measured counters reused by the projection
    counters: dict
    #: CUDA communication/computation seconds (Table VII axis)
    comm: float = 0.0
    comp: float = 0.0
    #: stage -> column -> seconds at the paper-scale workload
    projection: dict = field(default_factory=dict)
    #: the published Table III-VI rows for this dataset
    paper: dict = field(default_factory=dict)


def run_comparison(
    name: str,
    scale: float = 0.05,
    seed: int = 0,
    eig_tol: float = 1e-8,
    kmeans_max_iter: int = 100,
    project: bool = True,
) -> ComparisonResult:
    """Run one dataset through CUDA + Matlab-like + Python-like columns."""
    ds = load_dataset(name, scale=scale, seed=seed)
    point_input = ds.points is not None
    kw: dict = (
        dict(X=ds.points, edges=ds.edges)
        if point_input
        else dict(graph=ds.graph)
    )

    device = Device()
    sc = SpectralClustering(
        n_clusters=ds.n_clusters,
        eig_tol=eig_tol,
        kmeans_max_iter=kmeans_max_iter,
        seed=seed,
        device=device,
    )
    res = sc.fit(**kw)

    mat = run_matlab_like(
        n_clusters=ds.n_clusters, seed=seed, eig_tol=eig_tol,
        kmeans_max_iter=kmeans_max_iter, **kw,
    )
    py = run_python_like(
        n_clusters=ds.n_clusters, seed=seed, eig_tol=eig_tol,
        kmeans_max_iter=kmeans_max_iter, **kw,
    )

    stage_names = (
        ["similarity", "eigensolver", "kmeans"]
        if point_input
        else ["eigensolver", "kmeans"]
    )
    stages = {
        s: {
            "cuda": res.timings.simulated.get(s, 0.0)
            + (res.timings.simulated.get("laplacian", 0.0) if s == "eigensolver" else 0.0),
            "matlab": mat.modeled[s],
            "python": py.modeled[s],
        }
        for s in stage_names
    }

    quality = {}
    if ds.labels is not None:
        quality = {
            "cuda": adjusted_rand_index(res.labels, ds.labels),
            "matlab": adjusted_rand_index(mat.labels, ds.labels),
            "python": adjusted_rand_index(py.labels, ds.labels),
        }

    counters = dict(
        n_op=res.eig_stats["n_op"],
        n_restarts=res.eig_stats["n_restarts"],
        m=res.eig_stats["m"],
        cuda_kmeans_iters=res.kmeans.n_iter,
        matlab_kmeans_iters=mat.result.kmeans.n_iter,
        python_kmeans_iters=py.result.kmeans.n_iter,
    )
    out = ComparisonResult(
        dataset=name,
        scale=scale,
        n=ds.n,
        nnz_directed=ds.n_edges,
        k=ds.n_clusters,
        stages=stages,
        quality=quality,
        counters=counters,
        comm=res.profile.communication,
        comp=res.profile.computation,
        paper=PAPER_TABLES.get(TABLE_OF_DATASET[name], {}),
    )
    if project:
        out.projection = project_paper_scale(name, counters)
    return out


def _cuda_eigensolver_projection(
    n: int, nnz_sym: int, k: int, m: int, n_op: int, n_restarts: int
) -> tuple[float, float]:
    """(computation, communication) seconds of Algorithm 3 at a workload.

    Models the device-resident RCI path: the iteration vector and Lanczos
    basis live on the GPU, so each reverse-communication step is two
    on-device gemv sweeps plus the SpMV with **no** per-op PCIe round
    trip.  Only ARPACK's small tridiagonal state crosses the bus per
    restart, plus one seed upload and one result download.
    """
    gpu = GPUCostModel(K20C)
    cpu = CPUCostModel(XEON_E5_2690)
    pcie = TransferCostModel(PCIE_X16_GEN2)
    j_avg = (k + m) / 2.0
    gemv = gpu.kernel_time(
        2.0 * j_avg * n, (j_avg * n + 2.0 * n) * 8.0, kind="stream"
    )
    per_op_comp = 2.0 * gemv + gpu.spmv_time(n, nnz_sym)
    comp = n_op * per_op_comp
    # restart: host tridiagonal math + on-device basis rotation V <- V Q
    comp += n_restarts * (
        cpu.blas3_time(15.0 * m**3, threads=1)
        + cpu.blas3_time(6.0 * (m - k) * m * m, threads=1)
        + gpu.gemm_time(n, k, m)
    )
    comp += gpu.gemm_time(n, k, m)  # Ritz-vector assembly
    comm = pcie.h2d_time(n * 8)  # seed vector up
    comm += n_restarts * (
        pcie.d2h_time(2 * m * 8) + pcie.h2d_time(m * k * 8)
    )
    comm += pcie.d2h_time(n * k * 8)  # embedding down
    return comp, comm


def _cuda_kmeans_projection(n: int, d: int, k: int, iters: int) -> float:
    """Algorithm 4 per-iteration cost at a workload (gemm + argmin + sort)."""
    gpu = GPUCostModel(K20C)
    per_iter = (
        gpu.gemm_time(n, k, d)
        + gpu.kernel_time(float(n) * k, float(n) * k * 8, kind="stream")  # init S
        + gpu.kernel_time(float(n) * k, float(n) * k * 8, kind="stream")  # argmin
        + gpu.sort_time(n)
        + gpu.kernel_time(float(n) * d, float(n) * d * 8 * 2, kind="stream")  # reduce
    )
    init = gpu.gemm_time(n, k, d) * 0.5  # k-means++ distance passes
    return iters * per_iter + init


def _cuda_similarity_projection(n: int, d: int, nnz_dir: int) -> float:
    """Algorithm 1 at a workload: transfers + the three kernels + sort."""
    gpu = GPUCostModel(K20C)
    pcie = TransferCostModel(PCIE_X16_GEN2)
    t = pcie.h2d_time(n * d * 8) + pcie.h2d_time(nnz_dir * 16)
    t += gpu.kernel_time(float(n) * d, float(n) * d * 8, kind="stream")  # average
    t += gpu.kernel_time(3.0 * n * d, 2.0 * n * d * 8, kind="stream")  # update
    t += gpu.kernel_time(
        2.0 * nnz_dir * d, 2.0 * nnz_dir * d * 8, kind="stream"
    )  # similarity
    t += gpu.sort_time(2 * nnz_dir)
    return t


def project_paper_scale(name: str, counters: dict) -> dict:
    """Evaluate all cost models at the paper's Table II workload.

    Restart counts and Lloyd iteration counts are carried over from the
    measured scaled run; ``n_op`` is recomputed from the paper-scale basis
    size via the IRAM schedule ``n_op = m + restarts · (m - k)``.
    """
    stats = PAPER_STATS[name]
    n = stats["nodes"]
    nnz_dir = stats["edges"]
    nnz_sym = 2 * nnz_dir
    k = stats["clusters"]
    d = stats.get("dim", k)  # embedding dim for kmeans is k
    m = min(n, 2 * k + 1)
    restarts = counters["n_restarts"]
    n_op = m + restarts * (m - k)

    proj: dict = {}
    if name == "dti":
        proj["similarity"] = {
            "cuda": _cuda_similarity_projection(n, stats["dim"], nnz_dir),
            "matlab": bcost.similarity_serial_time(MATLAB_2015A, nnz_dir),
            "python": bcost.similarity_serial_time(PYTHON_27, nnz_dir),
            "matlab_vectorized": bcost.similarity_vectorized_time(
                MATLAB_2015A, nnz_dir
            ),
            "python_vectorized": bcost.similarity_vectorized_time(
                PYTHON_27, nnz_dir
            ),
        }
    comp, comm = _cuda_eigensolver_projection(n, nnz_sym, k, m, n_op, restarts)
    proj["eigensolver"] = {
        "cuda": comp + comm,
        "cuda_communication": comm,
        "matlab": bcost.eigensolver_time(
            MATLAB_2015A, n=n, nnz=nnz_sym, k=k, m=m,
            n_op=n_op, n_restarts=restarts,
        ),
        "python": bcost.eigensolver_time(
            PYTHON_27, n=n, nnz=nnz_sym, k=k, m=m,
            n_op=n_op, n_restarts=restarts,
        ),
    }
    proj["kmeans"] = {
        "cuda": _cuda_kmeans_projection(n, k, k, counters["cuda_kmeans_iters"]),
        "matlab": bcost.kmeans_time(
            MATLAB_2015A, n=n, d=k, k=k, iters=counters["matlab_kmeans_iters"]
        ),
        "python": bcost.kmeans_time(
            PYTHON_27, n=n, d=k, k=k, iters=counters["python_kmeans_iters"]
        ),
    }
    return proj
