"""Experiment records: JSON persistence and regression comparison.

A :class:`~repro.bench.runner.ComparisonResult` can be frozen to JSON so a
later run can be compared against it — the mechanism for tracking whether
a code change moved the simulated tables (which are deterministic given
seed and scale, so any drift is a real behavioral change).
"""

from __future__ import annotations

import dataclasses
import json
import os

from repro.bench.runner import ComparisonResult
from repro.errors import BenchmarkError

#: bump when the record layout changes incompatibly
SCHEMA_VERSION = 1


def record_to_dict(r: ComparisonResult) -> dict:
    """Flatten a comparison result into JSON-serializable primitives."""
    d = dataclasses.asdict(r)
    d["schema_version"] = SCHEMA_VERSION
    return d


def save_record(path: str | os.PathLike, r: ComparisonResult) -> None:
    """Write one comparison result as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record_to_dict(r), fh, indent=2, sort_keys=True)


def load_record(path: str | os.PathLike) -> dict:
    """Load a record written by :func:`save_record`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            d = json.load(fh)
    except FileNotFoundError:
        raise BenchmarkError(f"no such record: {path}") from None
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"corrupt record {path}: {exc}") from None
    if d.get("schema_version") != SCHEMA_VERSION:
        raise BenchmarkError(
            f"record schema {d.get('schema_version')} != {SCHEMA_VERSION}"
        )
    return d


def diff_records(
    old: dict, new: ComparisonResult | dict, rel_tol: float = 0.05
) -> list[str]:
    """Compare stage times between a stored record and a new result.

    Returns human-readable drift lines for every (stage, column) whose
    simulated/modeled time moved by more than ``rel_tol`` relatively —
    empty list means no drift.
    """
    new_d = new if isinstance(new, dict) else record_to_dict(new)
    if old.get("dataset") != new_d.get("dataset"):
        raise BenchmarkError(
            f"records compare different datasets: "
            f"{old.get('dataset')!r} vs {new_d.get('dataset')!r}"
        )
    drifts: list[str] = []
    for stage, cols in old.get("stages", {}).items():
        for col, old_v in cols.items():
            new_v = new_d.get("stages", {}).get(stage, {}).get(col)
            if new_v is None:
                drifts.append(f"{stage}/{col}: missing in new run")
                continue
            if old_v == 0:
                if new_v != 0:
                    drifts.append(f"{stage}/{col}: 0 -> {new_v:.6g}")
                continue
            rel = abs(new_v - old_v) / abs(old_v)
            if rel > rel_tol:
                drifts.append(
                    f"{stage}/{col}: {old_v:.6g} -> {new_v:.6g} "
                    f"({100 * rel:.1f}% drift)"
                )
    return drifts
