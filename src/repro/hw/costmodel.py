"""Analytic cost models converting work descriptors into simulated seconds.

The central primitive is the *roofline*: a kernel that performs ``flops``
floating point operations and moves ``bytes`` through memory takes::

    t = max(flops / achievable_flops, bytes / achievable_bandwidth)

plus a fixed launch overhead.  Achievable rates are peak rates scaled by the
efficiency factors carried on the hardware spec, so the same kernel
description yields different times on different platforms — which is exactly
how the paper's speedup tables arise.

These models are deliberately simple and fully documented: the goal of the
reproduction is that the *shape* of the results (which implementation wins,
by roughly what factor, and where the crossovers fall) emerges from first
principles flop/byte/latency accounting rather than from hard-coded answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import CPUSpec, GPUSpec, PCIeSpec
from repro.hw.topology import PCIeTopology


def roofline_time(
    flops: float, bytes_moved: float, flops_per_s: float, bytes_per_s: float
) -> float:
    """Roofline execution time: the slower of the compute and memory legs.

    Parameters
    ----------
    flops:
        Floating point operations performed.
    bytes_moved:
        Bytes read + written through device memory.
    flops_per_s, bytes_per_s:
        Achievable rates (already efficiency-scaled).
    """
    if flops < 0 or bytes_moved < 0:
        raise ValueError("work must be non-negative")
    t_compute = flops / flops_per_s if flops_per_s > 0 else 0.0
    t_memory = bytes_moved / bytes_per_s if bytes_per_s > 0 else 0.0
    return max(t_compute, t_memory)


@dataclass(frozen=True)
class CostModel:
    """Base class: cost models are pure functions of (work, spec)."""


@dataclass(frozen=True)
class GPUCostModel(CostModel):
    """Kernel cost model for a :class:`~repro.hw.spec.GPUSpec`.

    Three kernel classes are distinguished, matching how real kernels hit
    the K20c:

    * ``dense``   — BLAS-3-like, compute bound at ``gemm_efficiency`` of peak;
    * ``stream``  — coalesced streaming (elementwise, reductions), bandwidth
      bound at ``stream_efficiency``;
    * ``gather``  — irregular access (SpMV, scatter), bandwidth bound at
      ``gather_efficiency``.
    """

    gpu: GPUSpec

    def _rates(self, kind: str, itemsize: int) -> tuple[float, float]:
        peak_f = self.gpu.peak_flops(itemsize)
        peak_b = self.gpu.mem_bandwidth_bytes_s
        if kind == "dense":
            return peak_f * self.gpu.gemm_efficiency, peak_b
        if kind == "stream":
            return peak_f * 0.5, peak_b * self.gpu.stream_efficiency
        if kind == "gather":
            return peak_f * 0.25, peak_b * self.gpu.gather_efficiency
        raise ValueError(f"unknown kernel kind: {kind!r}")

    def kernel_time(
        self,
        flops: float,
        bytes_moved: float,
        kind: str = "stream",
        itemsize: int = 8,
    ) -> float:
        """Simulated seconds for one kernel launch of the given class."""
        f_rate, b_rate = self._rates(kind, itemsize)
        body = roofline_time(flops, bytes_moved, f_rate, b_rate)
        return self.gpu.kernel_launch_overhead_s + body

    def gemm_time(self, m: int, n: int, k: int, itemsize: int = 8) -> float:
        """C(m,n) += A(m,k) @ B(k,n): 2mnk flops, (mk+kn+2mn) elements."""
        flops = 2.0 * m * n * k
        bytes_moved = (m * k + k * n + 2 * m * n) * itemsize
        return self.kernel_time(flops, bytes_moved, kind="dense", itemsize=itemsize)

    # -- sparse byte formulas (shared with the traffic meter) ------------
    # Each *_bytes staticmethod is the exact memory-traffic expression its
    # *_time counterpart prices, exposed so kernels can meter
    # ``Device.spmv_traffic_bytes`` with the same numbers the roofline
    # charges — the byte-traffic regression gate compares these, not
    # seconds, because launch overhead would mask the storage-width win
    # on small graphs.

    @staticmethod
    def spmv_bytes(n_rows: int, nnz: int, itemsize: int = 8) -> float:
        """CSR SpMV traffic: nnz·(itemsize+4) matrix bytes + vector legs."""
        return nnz * (itemsize + 4) + 2.0 * n_rows * itemsize + nnz * itemsize

    @staticmethod
    def spmv_halo_bytes(n_rows: int, nnz: int, itemsize: int = 8) -> float:
        """Halo-segment SpMV traffic (y accumulate touches only halo rows)."""
        touched = float(min(n_rows, nnz))
        return nnz * (itemsize + 4) + nnz * itemsize + 2.0 * touched * itemsize

    @staticmethod
    def spmm_bytes(n_rows: int, nnz: int, p: int, itemsize: int = 8) -> float:
        """CSR SpMM traffic: matrix structure once, B gathers + C per column."""
        return (
            nnz * (itemsize + 4)          # matrix values + column indices, once
            + (n_rows + 1.0) * 8.0        # row pointers, once
            + nnz * p * itemsize          # gathered B rows, per column
            + 2.0 * n_rows * p * itemsize  # C read+write, per column
        )

    @staticmethod
    def ellmv_bytes(n_rows: int, nnz: int, width: int, itemsize: int = 8) -> float:
        """ELL SpMV traffic: padded streaming legs + irregular x gathers."""
        padded = float(n_rows) * width
        return padded * (itemsize + 4) + 2.0 * n_rows * itemsize + float(nnz) * itemsize

    @staticmethod
    def ellmm_bytes(
        n_rows: int, nnz: int, width: int, p: int, itemsize: int = 8
    ) -> float:
        """ELL SpMM traffic: padded matrix once, B gathers + C per column."""
        padded = float(n_rows) * width
        return (
            padded * (itemsize + 4)
            + 2.0 * n_rows * p * itemsize
            + float(nnz) * p * itemsize
        )

    def spmv_time(self, n_rows: int, nnz: int, itemsize: int = 8) -> float:
        """CSR SpMV: 2·nnz flops; nnz·(itemsize+4) matrix bytes + vector traffic."""
        flops = 2.0 * nnz
        bytes_moved = self.spmv_bytes(n_rows, nnz, itemsize)
        return self.kernel_time(flops, bytes_moved, kind="gather", itemsize=itemsize)

    def spmv_halo_time(self, n_rows: int, nnz: int, itemsize: int = 8) -> float:
        """Halo segment of a row-partitioned SpMV (``y += A_halo @ x_halo``).

        The halo kernel is enqueued on the same stream immediately behind
        the local kernel, so its host-side dispatch latency overlaps the
        local kernel's execution — no launch overhead is charged, only the
        roofline body.  The accumulate touches at most ``min(n_rows, nnz)``
        rows of y (rows with no off-device neighbours are untouched).
        """
        flops = 2.0 * nnz
        bytes_moved = self.spmv_halo_bytes(n_rows, nnz, itemsize)
        f_rate, b_rate = self._rates("gather", itemsize)
        return roofline_time(flops, bytes_moved, f_rate, b_rate)

    @staticmethod
    def spmm_halo_bytes(n_rows: int, nnz: int, p: int, itemsize: int = 8) -> float:
        """Halo-segment SpMM traffic (C accumulate touches only halo rows)."""
        touched = float(min(n_rows, nnz))
        return (
            nnz * (itemsize + 4)
            + nnz * p * itemsize
            + 2.0 * touched * p * itemsize
        )

    def spmm_halo_time(
        self, n_rows: int, nnz: int, p: int, itemsize: int = 8
    ) -> float:
        """Halo segment of a row-partitioned SpMM (``C += A_halo @ B_halo``).

        Block analogue of :meth:`spmv_halo_time`: enqueued back-to-back
        behind the local block kernel on the same stream, so no launch
        overhead is charged — only the roofline body over the halo
        nonzeros, amortized across the ``p`` columns.
        """
        flops = 2.0 * nnz * p
        bytes_moved = self.spmm_halo_bytes(n_rows, nnz, p, itemsize)
        f_rate, b_rate = self._rates("gather", itemsize)
        return roofline_time(flops, bytes_moved, f_rate, b_rate)

    def spmm_time(
        self, n_rows: int, nnz: int, p: int, itemsize: int = 8
    ) -> float:
        """CSR SpMM (``cusparseDcsrmm``): one launch computing ``p`` output
        columns.

        Unlike ``p`` independent csrmv sweeps, the matrix structure
        (row pointers, column indices, values) streams through the SM once
        and is reused across all columns of B held in registers/shared
        memory, so only the gathered B rows (``nnz·p`` elements) and the C
        output (``2·n_rows·p``) scale with ``p``.  That amortization is why
        the membership-matrix centroid update beats per-column sweeps.
        """
        flops = 2.0 * nnz * p
        bytes_moved = self.spmm_bytes(n_rows, nnz, p, itemsize)
        return self.kernel_time(flops, bytes_moved, kind="gather", itemsize=itemsize)

    def sort_time(self, n_keys: int) -> float:
        """Radix sort of ``n_keys`` key/value pairs (Thrust)."""
        if n_keys <= 0:
            return self.gpu.kernel_launch_overhead_s
        return self.gpu.kernel_launch_overhead_s + n_keys / self.gpu.sort_keys_per_s

    # -- sparse format kernels (the CSR/ELL/HYB autotuning family) ------
    def ellmv_time(
        self, n_rows: int, nnz: int, width: int, itemsize: int = 8
    ) -> float:
        """ELLPACK SpMV: the matrix is padded to ``n_rows x width`` and laid
        out column-major, so one thread per row reads it fully coalesced.

        The padded matrix (values + column indices) and the y vector stream
        at ``stream_efficiency``; only the x gathers stay irregular.  Padding
        costs real flops and bytes, which is exactly the CSR/ELL trade-off
        the heuristic weighs.
        """
        padded = float(n_rows) * width
        flops = 2.0 * padded
        stream_bytes = padded * (itemsize + 4) + 2.0 * n_rows * itemsize
        gather_bytes = float(nnz) * itemsize
        f_rate, stream_b = self._rates("stream", itemsize)
        _, gather_b = self._rates("gather", itemsize)
        t_memory = stream_bytes / stream_b + gather_bytes / gather_b
        t_compute = flops / f_rate
        return self.gpu.kernel_launch_overhead_s + max(t_compute, t_memory)

    def hybmv_time(
        self,
        n_rows: int,
        nnz_ell: int,
        width: int,
        nnz_coo: int,
        itemsize: int = 8,
    ) -> float:
        """HYB SpMV (cusparseDhybmv): a coalesced ELL pass over the regular
        part plus an atomics-based COO pass over the spill tail — two kernel
        launches, with the COO leg paying the same 2x contention penalty as
        :func:`~repro.cusparse.spmv.coomv`."""
        t = self.ellmv_time(n_rows, nnz_ell, width, itemsize=itemsize)
        if nnz_coo > 0:
            t += self.spmv_time(n_rows, nnz_coo, itemsize=itemsize) * 2.0
        return t

    def ellmm_time(
        self, n_rows: int, nnz: int, width: int, p: int, itemsize: int = 8
    ) -> float:
        """ELLPACK SpMM: one launch computing ``p`` output columns.

        Same layout trade-off as :meth:`ellmv_time` — the padded matrix
        (values + column indices) streams coalesced and is read *once*,
        reused across all ``p`` columns of B, while the gathered B rows
        (``nnz·p`` elements) and the C read+write scale with ``p``.
        """
        padded = float(n_rows) * width
        flops = 2.0 * padded * p
        stream_bytes = padded * (itemsize + 4) + 2.0 * n_rows * p * itemsize
        gather_bytes = float(nnz) * p * itemsize
        f_rate, stream_b = self._rates("stream", itemsize)
        _, gather_b = self._rates("gather", itemsize)
        t_memory = stream_bytes / stream_b + gather_bytes / gather_b
        t_compute = flops / f_rate
        return self.gpu.kernel_launch_overhead_s + max(t_compute, t_memory)

    def hybmm_time(
        self,
        n_rows: int,
        nnz_ell: int,
        width: int,
        nnz_coo: int,
        p: int,
        itemsize: int = 8,
    ) -> float:
        """HYB SpMM: the coalesced ELL pass plus an atomics-based COO tail,
        mirroring :meth:`hybmv_time` (the COO leg pays the same 2x
        contention penalty, scaled to ``p`` columns)."""
        t = self.ellmm_time(n_rows, nnz_ell, width, p, itemsize=itemsize)
        if nnz_coo > 0:
            t += self.spmm_time(n_rows, nnz_coo, p, itemsize=itemsize) * 2.0
        return t

    def format_conversion_time(
        self, nnz: int, padded: int, itemsize: int = 8
    ) -> float:
        """CSR -> ELL/HYB conversion (cusparseDcsr2ell/csr2hyb): one
        streaming pass reading the CSR arrays and writing the padded
        layout."""
        bytes_moved = nnz * (itemsize + 4) + padded * (itemsize + 4)
        return self.kernel_time(0.0, bytes_moved, kind="stream", itemsize=itemsize)


@dataclass(frozen=True)
class CPUCostModel(CostModel):
    """Cost model for host-side phases.

    Distinguishes tuned multithreaded BLAS (OpenBLAS/MKL — the ARPACK
    ``TakeStep`` path), single-threaded BLAS (the Python 2.7 scipy builds the
    paper benchmarked against used unthreaded reference BLAS for several
    ops), memory-bound sweeps, and *interpreted scalar loops* (the paper's
    serial Matlab/Python similarity construction)."""

    cpu: CPUSpec

    def blas3_time(self, flops: float, threads: int | None = None) -> float:
        """Dense BLAS-3 time with ``threads`` cores (default: all)."""
        t = self.cpu.cores if threads is None else max(1, min(threads, self.cpu.cores))
        rate = (
            t * self.cpu.peak_flops_single_thread * self.cpu.blas3_efficiency
        )
        return flops / rate

    def blas1_time(self, bytes_moved: float, threads: int | None = None) -> float:
        """Memory-bound BLAS-1/2 time; bandwidth saturates past ~4 threads."""
        t = self.cpu.cores if threads is None else max(1, min(threads, self.cpu.cores))
        frac = min(1.0, t / 4.0)
        rate = self.cpu.mem_bandwidth_bytes_s * self.cpu.blas1_efficiency * frac
        return bytes_moved / rate

    def spmv_time(self, n_rows: int, nnz: int, threads: int = 1, itemsize: int = 8) -> float:
        """CPU CSR SpMV — memory bound with poor locality on the x gathers."""
        bytes_moved = nnz * (itemsize + 4) + 2.0 * n_rows * itemsize + nnz * itemsize
        # Irregular gathers reach ~35% of stream bandwidth on Sandy Bridge.
        frac = min(1.0, threads / 4.0)
        rate = self.cpu.mem_bandwidth_bytes_s * 0.35 * frac
        return bytes_moved / rate

    def interp_loop_time(self, iterations: int, work_per_iter_flops: float = 0.0) -> float:
        """An interpreted (Matlab/Python) scalar ``for`` loop.

        Each trip pays the interpreter dispatch overhead; any vectorized body
        work is added at single-thread BLAS rate.
        """
        body = 0.0
        if work_per_iter_flops > 0:
            body = iterations * work_per_iter_flops / (
                self.cpu.peak_flops_single_thread * 0.25
            )
        return iterations * self.cpu.interp_loop_overhead_s + body


@dataclass(frozen=True)
class TransferCostModel(CostModel):
    """Host<->device transfer cost over a :class:`~repro.hw.spec.PCIeSpec`.

    With a :class:`~repro.hw.topology.PCIeTopology` attached, peer copies
    are priced per (src, dst) pair — same-switch pairs follow the direct
    link law, cross-bridge pairs the slower host-bridged law.  Without one
    (or when a call site does not know the pair) every peer copy falls
    back to the single-link law, which is the pre-topology behavior.
    """

    pcie: PCIeSpec
    topology: "PCIeTopology | None" = None

    def h2d_time(self, nbytes: int) -> float:
        return self.pcie.transfer_time(nbytes)

    def d2h_time(self, nbytes: int) -> float:
        return self.pcie.transfer_time(nbytes)

    def p2p_time(
        self, nbytes: int, src: int | None = None, dst: int | None = None
    ) -> float:
        """Device-to-device peer copy (``cudaMemcpyPeerAsync``).

        Peers behind the same PCIe switch follow the identical
        latency + bandwidth law as a host transfer — the DMA just never
        touches host memory.  Pairs split across host bridges stage
        through the bridge and pay the topology's ``bridged`` law.
        """
        if self.topology is not None and src is not None and dst is not None:
            return self.topology.p2p_time(nbytes, src, dst)
        return self.pcie.transfer_time(nbytes)
