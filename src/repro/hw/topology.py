"""NUMA/PCIe topology: per-pair peer-link model for multi-GPU platforms.

The single-link :class:`~repro.hw.spec.PCIeSpec` prices every transfer the
same way, which is right for one GPU but wrong for four: on a dual-socket
node two devices behind the same PCIe switch exchange peer DMA at nearly
the host-link law, while a pair split across host bridges (one hop over
QPI on the paper-era platforms) pays extra latency and loses bandwidth to
the bridge staging.  :class:`PCIeTopology` captures exactly that
distinction — a switch id per device slot plus two link laws — so the halo
exchange, the composed multi-device fit and the serving scheduler price
the link a byte actually crosses instead of a platform average.

The model deliberately stays two-tier (direct vs. host-bridged); adding
NVLink-class links later is a third :class:`~repro.hw.spec.PCIeSpec`, not
a new mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hw.spec import PCIE_X16_GEN2, PCIeSpec

#: bandwidth efficiency multiplier for a peer copy staged across the host
#: bridge (QPI hop): the DMA is forwarded through host memory, roughly
#: halving the achievable fraction of the link peak.
BRIDGE_EFFICIENCY_FACTOR = 0.55

#: latency multiplier for a host-bridged peer copy (two DMA setups plus
#: the QPI hop instead of one switch forward).
BRIDGE_LATENCY_FACTOR = 2.5

#: devices sharing one PCIe switch on the modeled node (two x16 slots per
#: switch, the common dual-socket layout of the paper era).
DEVICES_PER_SWITCH = 2


@dataclass(frozen=True)
class PCIeTopology:
    """Per-pair peer-link topology over a set of device slots.

    ``switch_of[d]`` names the PCIe switch device slot ``d`` hangs off;
    peers on the same switch use the ``direct`` link law, peers on
    different switches use the ``bridged`` law (staged across the host
    bridge).  Both laws are plain :class:`~repro.hw.spec.PCIeSpec`
    latency + bandwidth models, so pricing composes with everything that
    already consumes ``transfer_time``.
    """

    name: str
    #: PCIe switch id per device slot (index = device index)
    switch_of: tuple[int, ...]
    #: same-switch peer link (switch forwards the DMA; host never touched)
    direct: PCIeSpec
    #: cross-bridge peer link (staged through the host bridge / QPI)
    bridged: PCIeSpec

    def __post_init__(self) -> None:
        if not self.switch_of:
            raise ValueError("topology needs at least one device slot")

    @property
    def n_devices(self) -> int:
        return len(self.switch_of)

    def _check(self, index: int) -> int:
        if not 0 <= index < len(self.switch_of):
            raise ValueError(
                f"device index {index} outside topology "
                f"(0..{len(self.switch_of) - 1})"
            )
        return index

    def is_direct(self, src: int, dst: int) -> bool:
        """True iff ``src`` and ``dst`` share a PCIe switch."""
        return self.switch_of[self._check(src)] == self.switch_of[self._check(dst)]

    def link(self, src: int, dst: int) -> PCIeSpec:
        """The link law a ``src -> dst`` peer copy follows."""
        return self.direct if self.is_direct(src, dst) else self.bridged

    def p2p_time(self, nbytes: int, src: int, dst: int) -> float:
        """Seconds for a ``cudaMemcpyPeerAsync`` of ``nbytes`` on the pair."""
        return self.link(src, dst).transfer_time(nbytes)

    def pair_table(self) -> dict[tuple[int, int], str]:
        """Human-readable link class per ordered pair (debug/trace aid)."""
        out: dict[tuple[int, int], str] = {}
        for s in range(self.n_devices):
            for d in range(self.n_devices):
                if s != d:
                    out[(s, d)] = "direct" if self.is_direct(s, d) else "bridged"
        return out


def paper_topology(
    n_devices: int,
    pcie: PCIeSpec = PCIE_X16_GEN2,
    devices_per_switch: int = DEVICES_PER_SWITCH,
) -> PCIeTopology:
    """The modeled multi-GPU node: ``devices_per_switch`` slots per PCIe
    switch, switches split across the two host bridges.

    With the default layout a 2-device solve keeps both GPUs on one
    switch — every peer pair is direct, so pricing is identical to the
    single-link model — while 3+ devices start paying the bridged law on
    cross-switch pairs, which is exactly the cliff real 4-GPU nodes show.
    """
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    if devices_per_switch < 1:
        raise ValueError(
            f"devices_per_switch must be >= 1, got {devices_per_switch}"
        )
    bridged = replace(
        pcie,
        name=f"{pcie.name} (host-bridged)",
        efficiency=pcie.efficiency * BRIDGE_EFFICIENCY_FACTOR,
        latency_s=pcie.latency_s * BRIDGE_LATENCY_FACTOR,
    )
    return PCIeTopology(
        name=f"{pcie.name} x{n_devices} ({devices_per_switch}/switch)",
        switch_of=tuple(d // devices_per_switch for d in range(n_devices)),
        direct=pcie,
        bridged=bridged,
    )
