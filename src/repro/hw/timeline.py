"""Simulated clock and event timeline.

Every simulated operation (kernel, transfer, CPU phase) appends a
:class:`TimelineEvent` to a :class:`Timeline` and advances the owning
:class:`SimClock`.  The timeline is the source of truth for all
paper-comparable timing tables; Table VII's communication-vs-computation
split is a two-bucket aggregation over event categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

#: Event categories. ``h2d``/``d2h``/``p2p`` are *communication*; everything
#: else is *computation* for the purpose of Table VII.  ``p2p`` covers
#: device-to-device peer copies (``cudaMemcpyPeerAsync``) used by the
#: multi-GPU eigensolver's halo exchange.
CATEGORIES = ("kernel", "h2d", "d2h", "p2p", "cpu", "overhead")
COMMUNICATION_CATEGORIES = frozenset({"h2d", "d2h", "p2p"})


@dataclass(frozen=True)
class TimelineEvent:
    """One completed simulated operation.

    Attributes
    ----------
    name:
        Human-readable operation name (kernel name, transfer description).
    category:
        One of :data:`CATEGORIES`.
    start, duration:
        Simulated start time and duration, seconds.
    tag:
        Free-form grouping label, used to attribute events to pipeline
        stages ("similarity", "eigensolver", "kmeans").
    """

    name: str
    category: str
    start: float
    duration: float
    tag: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` (no-op if already past it)."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self) -> None:
        self._now = 0.0


class Timeline:
    """An append-only record of simulated events with aggregation helpers."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._events: list[TimelineEvent] = []
        #: current stage tag applied to newly recorded events
        self._tag = ""

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TimelineEvent, ...]:
        return tuple(self._events)

    def set_tag(self, tag: str) -> None:
        """Set the stage tag stamped on subsequent events."""
        self._tag = tag

    def record(self, name: str, category: str, duration: float) -> TimelineEvent:
        """Record an event of ``duration`` seconds and advance the clock."""
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; expected one of {CATEGORIES}"
            )
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        ev = TimelineEvent(
            name=name,
            category=category,
            start=self.clock.now,
            duration=duration,
            tag=self._tag,
        )
        self.clock.advance(duration)
        self._events.append(ev)
        return ev

    def record_at(
        self, name: str, category: str, start: float, duration: float,
        tag: str = "",
    ) -> TimelineEvent:
        """Record an event at an absolute simulated start time.

        Unlike :meth:`record`, the event does not begin at the current
        clock and events may *overlap*: this is how a schedule spanning
        several concurrent streams/devices is laid onto one timeline (the
        serving scheduler's view).  The clock only ever moves forward, to
        the latest event end seen so far.
        """
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; expected one of {CATEGORIES}"
            )
        if start < 0:
            raise ValueError(f"negative start: {start}")
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        ev = TimelineEvent(
            name=name,
            category=category,
            start=start,
            duration=duration,
            tag=tag or self._tag,
        )
        self.clock.advance_to(ev.end)
        self._events.append(ev)
        return ev

    def replace_event(
        self, old: TimelineEvent, new: Iterable[TimelineEvent]
    ) -> None:
        """Swap one recorded event for replacement events, in place.

        :class:`TimelineEvent` is frozen and the timeline is otherwise
        append-only; this is the one sanctioned rewrite, used by the
        serving scheduler when preemption splits or shifts an already
        placed span.  ``old`` is matched by identity (two placements may
        be field-equal), and the replacements keep its position so event
        order stays stable for exports.
        """
        news = list(new)
        for ev in news:
            if ev.category not in CATEGORIES:
                raise ValueError(
                    f"unknown category {ev.category!r}; "
                    f"expected one of {CATEGORIES}"
                )
            if ev.duration < 0:
                raise ValueError(f"negative duration: {ev.duration}")
            if ev.start < 0:
                raise ValueError(f"negative start: {ev.start}")
        for i, ev in enumerate(self._events):
            if ev is old:
                self._events[i:i + 1] = news
                for n in news:
                    self.clock.advance_to(n.end)
                return
        raise ValueError(f"event is not on this timeline: {old!r}")

    def clear(self) -> None:
        self._events.clear()
        self.clock.reset()

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def total(self, category: str | None = None, tag: str | None = None) -> float:
        """Total simulated seconds, optionally filtered."""
        return sum(ev.duration for ev in self._select(category, tag))

    def count(self, category: str | None = None, tag: str | None = None) -> int:
        return sum(1 for _ in self._select(category, tag))

    def _select(
        self, category: str | None, tag: str | None
    ) -> Iterable[TimelineEvent]:
        for ev in self._events:
            if category is not None and ev.category != category:
                continue
            if tag is not None and ev.tag != tag:
                continue
            yield ev

    def communication_time(self, tag: str | None = None) -> float:
        """Total time in H2D/D2H/P2P transfers (Table VII 'Communication')."""
        return sum(
            ev.duration
            for ev in self._select(None, tag)
            if ev.category in COMMUNICATION_CATEGORIES
        )

    def computation_time(self, tag: str | None = None) -> float:
        """Total non-transfer time (Table VII 'Computation')."""
        return sum(
            ev.duration
            for ev in self._select(None, tag)
            if ev.category not in COMMUNICATION_CATEGORIES
        )

    def by_tag(self) -> dict[str, float]:
        """Total simulated seconds per stage tag."""
        out: dict[str, float] = {}
        for ev in self._events:
            out[ev.tag] = out.get(ev.tag, 0.0) + ev.duration
        return out

    def by_category(self, tag: str | None = None) -> dict[str, float]:
        """Total simulated seconds per event category."""
        out: dict[str, float] = {}
        for ev in self._select(None, tag):
            out[ev.category] = out.get(ev.category, 0.0) + ev.duration
        return out

    # ------------------------------------------------------------------
    # occupancy (meaningful for overlapped timelines built by record_at)
    # ------------------------------------------------------------------
    def span(self) -> tuple[float, float]:
        """``(earliest start, latest end)`` over all events (0, 0 if empty)."""
        if not self._events:
            return (0.0, 0.0)
        return (
            min(ev.start for ev in self._events),
            max(ev.end for ev in self._events),
        )

    def busy_time(self, tag: str | None = None) -> float:
        """Length of the union of event intervals (seconds).

        With overlapping events (a multi-stream schedule) this is the
        time at least one lane was busy; on an ordinary serial timeline
        it equals :meth:`total`.
        """
        ivals = sorted(
            (ev.start, ev.end) for ev in self._select(None, tag) if ev.duration > 0
        )
        busy = 0.0
        cur_s: float | None = None
        cur_e = 0.0
        for s, e in ivals:
            if cur_s is None:
                cur_s, cur_e = s, e
            elif s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                busy += cur_e - cur_s
                cur_s, cur_e = s, e
        if cur_s is not None:
            busy += cur_e - cur_s
        return busy

    def utilization(self, tag: str | None = None) -> float:
        """Busy time over the full span — lane/device occupancy in [0, 1]."""
        lo, hi = self.span()
        if hi <= lo:
            return 0.0
        return self.busy_time(tag) / (hi - lo)
