"""Simulated clock and event timeline.

Every simulated operation (kernel, transfer, CPU phase) appends a
:class:`TimelineEvent` to a :class:`Timeline` and advances the owning
:class:`SimClock`.  The timeline is the source of truth for all
paper-comparable timing tables; Table VII's communication-vs-computation
split is a two-bucket aggregation over event categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

#: Event categories. ``h2d``/``d2h`` are *communication*; everything else is
#: *computation* for the purpose of Table VII.
CATEGORIES = ("kernel", "h2d", "d2h", "cpu", "overhead")
COMMUNICATION_CATEGORIES = frozenset({"h2d", "d2h"})


@dataclass(frozen=True)
class TimelineEvent:
    """One completed simulated operation.

    Attributes
    ----------
    name:
        Human-readable operation name (kernel name, transfer description).
    category:
        One of :data:`CATEGORIES`.
    start, duration:
        Simulated start time and duration, seconds.
    tag:
        Free-form grouping label, used to attribute events to pipeline
        stages ("similarity", "eigensolver", "kmeans").
    """

    name: str
    category: str
    start: float
    duration: float
    tag: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def reset(self) -> None:
        self._now = 0.0


class Timeline:
    """An append-only record of simulated events with aggregation helpers."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._events: list[TimelineEvent] = []
        #: current stage tag applied to newly recorded events
        self._tag = ""

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TimelineEvent, ...]:
        return tuple(self._events)

    def set_tag(self, tag: str) -> None:
        """Set the stage tag stamped on subsequent events."""
        self._tag = tag

    def record(self, name: str, category: str, duration: float) -> TimelineEvent:
        """Record an event of ``duration`` seconds and advance the clock."""
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; expected one of {CATEGORIES}"
            )
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        ev = TimelineEvent(
            name=name,
            category=category,
            start=self.clock.now,
            duration=duration,
            tag=self._tag,
        )
        self.clock.advance(duration)
        self._events.append(ev)
        return ev

    def clear(self) -> None:
        self._events.clear()
        self.clock.reset()

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def total(self, category: str | None = None, tag: str | None = None) -> float:
        """Total simulated seconds, optionally filtered."""
        return sum(ev.duration for ev in self._select(category, tag))

    def count(self, category: str | None = None, tag: str | None = None) -> int:
        return sum(1 for _ in self._select(category, tag))

    def _select(
        self, category: str | None, tag: str | None
    ) -> Iterable[TimelineEvent]:
        for ev in self._events:
            if category is not None and ev.category != category:
                continue
            if tag is not None and ev.tag != tag:
                continue
            yield ev

    def communication_time(self, tag: str | None = None) -> float:
        """Total time in H2D + D2H transfers (Table VII 'Communication')."""
        return sum(
            ev.duration
            for ev in self._select(None, tag)
            if ev.category in COMMUNICATION_CATEGORIES
        )

    def computation_time(self, tag: str | None = None) -> float:
        """Total non-transfer time (Table VII 'Computation')."""
        return sum(
            ev.duration
            for ev in self._select(None, tag)
            if ev.category not in COMMUNICATION_CATEGORIES
        )

    def by_tag(self) -> dict[str, float]:
        """Total simulated seconds per stage tag."""
        out: dict[str, float] = {}
        for ev in self._events:
            out[ev.tag] = out.get(ev.tag, 0.0) + ev.duration
        return out

    def by_category(self, tag: str | None = None) -> dict[str, float]:
        """Total simulated seconds per event category."""
        out: dict[str, float] = {}
        for ev in self._select(None, tag):
            out[ev.category] = out.get(ev.category, 0.0) + ev.duration
        return out
