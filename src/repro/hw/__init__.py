"""Hardware specifications and analytic cost models.

This subpackage is the root of the *simulated time* axis: every simulated
CUDA kernel, PCIe transfer and modeled CPU phase converts work (flops, bytes,
iterations) into seconds through the models defined here, and charges the
result to a :class:`~repro.hw.timeline.SimClock`.
"""

from repro.hw.spec import (
    CPUSpec,
    GPUSpec,
    PCIeSpec,
    PlatformSpec,
    K20C,
    XEON_E5_2690,
    PCIE_X16_GEN2,
    PAPER_PLATFORM,
)
from repro.hw.costmodel import (
    CostModel,
    GPUCostModel,
    CPUCostModel,
    TransferCostModel,
    roofline_time,
)
from repro.hw.timeline import SimClock, TimelineEvent, Timeline
from repro.hw.topology import PCIeTopology, paper_topology

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "PCIeSpec",
    "PlatformSpec",
    "K20C",
    "XEON_E5_2690",
    "PCIE_X16_GEN2",
    "PAPER_PLATFORM",
    "CostModel",
    "GPUCostModel",
    "CPUCostModel",
    "TransferCostModel",
    "roofline_time",
    "SimClock",
    "TimelineEvent",
    "Timeline",
    "PCIeTopology",
    "paper_topology",
]
