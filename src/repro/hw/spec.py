"""Hardware specification dataclasses and the paper's platform presets.

Table I of the paper fixes the evaluation platform:

====================  =========================
CPU Model             Intel Xeon E5-2690
CPU Cores             8
DRAM Size             128 GB
GPU Model             Tesla K20c
Device Memory Size    5 GB GDDR5
SMs and SPs           13 and 192
Compute Capability    3.5
CUDA SDK              7.5
PCIe Bus              PCIe x16 Gen2
====================  =========================

The presets below encode those specs together with the public peak numbers
for each part (K20c: 1.17 TFLOP/s double precision, 208 GB/s GDDR5;
E5-2690: 8 cores x 2.9 GHz x 8 DP flops/cycle; PCIe x16 Gen2: 8 GB/s
theoretical, ~6 GB/s achievable).  Efficiency factors - the fraction of peak
a real BLAS kernel reaches - are part of the spec so cost models stay pure
functions of (work, spec).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class GPUSpec:
    """Specification of a (simulated) CUDA device.

    Attributes mirror the properties ``cudaGetDeviceProperties`` would
    report, plus efficiency factors used by the cost model.
    """

    name: str
    sm_count: int
    sp_per_sm: int
    clock_ghz: float
    memory_bytes: int
    mem_bandwidth_gbs: float
    #: double-precision peak, GFLOP/s
    peak_gflops_dp: float
    #: single-precision peak, GFLOP/s
    peak_gflops_sp: float
    compute_capability: tuple[int, int] = (3, 5)
    max_threads_per_block: int = 1024
    max_grid_dim_x: int = 2**31 - 1
    warp_size: int = 32
    #: fixed kernel launch overhead, seconds (driver + dispatch)
    kernel_launch_overhead_s: float = 8.0e-6
    #: ``cudaMalloc`` latency, seconds (driver allocation + implicit sync)
    malloc_overhead_s: float = 1.0e-5
    #: ``cudaFree`` latency, seconds (device-wide synchronization)
    free_overhead_s: float = 6.0e-6
    #: fraction of peak flops a tuned dense kernel (gemm) achieves
    gemm_efficiency: float = 0.80
    #: fraction of peak bandwidth a streaming kernel achieves
    stream_efficiency: float = 0.75
    #: fraction of peak bandwidth an irregular (gather/scatter) kernel achieves
    gather_efficiency: float = 0.25
    #: effective sort throughput, keys/second (radix sort on Kepler)
    sort_keys_per_s: float = 6.0e8

    @property
    def core_count(self) -> int:
        """Total streaming processors (CUDA cores) on the device."""
        return self.sm_count * self.sp_per_sm

    @property
    def mem_bandwidth_bytes_s(self) -> float:
        return self.mem_bandwidth_gbs * 1e9

    def peak_flops(self, dtype_itemsize: int = 8) -> float:
        """Peak FLOP/s for the given element width (8 = double, 4 = single)."""
        gf = self.peak_gflops_dp if dtype_itemsize >= 8 else self.peak_gflops_sp
        return gf * 1e9


@dataclass(frozen=True)
class CPUSpec:
    """Specification of the host CPU used for modeled CPU phases."""

    name: str
    cores: int
    clock_ghz: float
    #: double-precision flops per core per cycle (AVX FMA width)
    flops_per_cycle_dp: float
    dram_bytes: int
    mem_bandwidth_gbs: float
    #: fraction of peak a tuned multithreaded BLAS-3 kernel achieves
    blas3_efficiency: float = 0.85
    #: fraction of peak a BLAS-1/2 (memory bound) kernel achieves, of bandwidth
    blas1_efficiency: float = 0.60
    #: seconds per iteration of an *interpreted* (Matlab/Python 2.7) scalar loop
    interp_loop_overhead_s: float = 5.5e-5

    @property
    def peak_flops_dp(self) -> float:
        """Multithreaded double-precision peak, FLOP/s."""
        return self.cores * self.clock_ghz * 1e9 * self.flops_per_cycle_dp

    @property
    def peak_flops_single_thread(self) -> float:
        return self.clock_ghz * 1e9 * self.flops_per_cycle_dp

    @property
    def mem_bandwidth_bytes_s(self) -> float:
        return self.mem_bandwidth_gbs * 1e9


@dataclass(frozen=True)
class PCIeSpec:
    """PCIe link model: per-transfer latency plus bandwidth term."""

    name: str
    #: theoretical peak, GB/s (the paper quotes 8 GB/s for x16 Gen2)
    peak_gbs: float
    #: achievable fraction of peak for large pinned transfers
    efficiency: float = 0.75
    #: fixed per-transfer latency, seconds (driver + DMA setup)
    latency_s: float = 1.0e-5

    @property
    def effective_bytes_s(self) -> float:
        return self.peak_gbs * 1e9 * self.efficiency

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across the link (one direction)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.effective_bytes_s


@dataclass(frozen=True)
class PlatformSpec:
    """A complete heterogeneous platform: host CPU + device GPU + link."""

    cpu: CPUSpec
    gpu: GPUSpec
    pcie: PCIeSpec
    name: str = "cpu-gpu-platform"

    def with_gpu(self, **kwargs) -> "PlatformSpec":
        """Return a copy with selected GPU fields replaced."""
        return replace(self, gpu=replace(self.gpu, **kwargs))

    def with_cpu(self, **kwargs) -> "PlatformSpec":
        """Return a copy with selected CPU fields replaced."""
        return replace(self, cpu=replace(self.cpu, **kwargs))


#: NVIDIA Tesla K20c as in Table I. 13 SMs x 192 SPs, 5 GB GDDR5.
K20C = GPUSpec(
    name="Tesla K20c",
    sm_count=13,
    sp_per_sm=192,
    clock_ghz=0.706,
    memory_bytes=5 * 1024**3,
    mem_bandwidth_gbs=208.0,
    peak_gflops_dp=1170.0,
    peak_gflops_sp=3520.0,
    compute_capability=(3, 5),
)

#: Intel Xeon E5-2690 (Sandy Bridge EP): 8 cores, 2.9 GHz, AVX (8 DP flop/cyc).
XEON_E5_2690 = CPUSpec(
    name="Intel Xeon E5-2690",
    cores=8,
    clock_ghz=2.9,
    flops_per_cycle_dp=8.0,
    dram_bytes=128 * 1024**3,
    mem_bandwidth_gbs=51.2,
)

#: PCIe x16 Gen2 as in Table I ("theoretical peak bandwidth is 8 GB/s").
PCIE_X16_GEN2 = PCIeSpec(name="PCIe x16 Gen2", peak_gbs=8.0)

#: The full Table I platform.
PAPER_PLATFORM = PlatformSpec(
    cpu=XEON_E5_2690, gpu=K20C, pcie=PCIE_X16_GEN2, name="paper-table1"
)
