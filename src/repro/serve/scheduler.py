"""The multi-stream, multi-device scheduler.

The simulated runtime executes synchronously, but serving wants the
*schedule* a real deployment would see: several CUDA streams per device
and several devices draining work concurrently.  The scheduler bridges
the two honestly:

1. a unit of work (an operator build, a Lanczos solve, one request's
   k-means) **executes** on a real :class:`~repro.cuda.device.Device`,
   charging its kernels/transfers to that device's serial timeline — the
   duration is exactly what the cost model says the unit takes;
2. the unit is then **placed** on the earliest-available stream lane
   (FIFO per stream, dependencies respected via ``ready_at``) using
   :meth:`~repro.cuda.stream.Stream.reserve`, and the placement is
   recorded on an *overlapped* service timeline
   (:meth:`~repro.hw.timeline.Timeline.record_at`);
3. queue waits, latencies, makespan and occupancy are read off that
   overlapped timeline, so concurrency never conjures up compute time —
   it only overlaps spans whose durations the serial cost model produced.

Work that must stay device-affine (a Lanczos solve reading an operator
resident on device i's memory) passes ``device=``; host-input work (each
request's k-means re-uploads the embedding) may land on any lane.

Preemptive deadline scheduling
------------------------------
Deadlines used to be observational: a unit placed after its deadline was
*counted* as a miss, never helped.  The scheduler now fights for them.
A width-1 unit carrying a deadline that FIFO placement would miss looks
for a *preemptive slot* on the lanes of the device it executed on:

- **mid-unit split** — a running ``preemptible=True`` unit is suspended
  at its next stage boundary (the :mod:`~repro.cuda.boundaries` marks a
  k-means Lloyd iteration or Lanczos restart fired during execution),
  the urgent unit runs in the gap, and the victim's remainder resumes
  afterwards.  Both switches charge ``ctx_switch_s`` of lane-occupying
  overhead — preemption is never free;
- **queue-jump insert** — the urgent unit slips in front of placed but
  not-yet-started preemptible units (a batch-member boundary), shifting
  them later; no state is saved mid-flight, so no context-switch cost.

Either way, every shifted placement must itself be preemptible and not
*retired*: once another unit's placement consumed a victim's end time
(``depends_on=``), the victim's span is frozen — rewriting it would
falsify history.  Preemption happens only when it converts a miss into a
meet, all rewrites are placement-only (the arithmetic already executed,
so results stay bit-identical), and every preemption is metered
(:class:`SchedulerStats`) and traced on a dedicated ``preempt`` track.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.cuda.boundaries import collect_boundaries
from repro.cuda.device import Device
from repro.cuda.stream import Stream
from repro.errors import ReproError, ServiceError
from repro.hw.spec import GPUSpec, K20C, PCIE_X16_GEN2, PCIeSpec
from repro.hw.timeline import Timeline, TimelineEvent

#: default simulated cost of one context save *or* restore when a
#: preemption splits a running unit (a mid-flight k-means suspend writes
#: back its iteration buffers; ~tens of µs at PCIe gen2 rates)
DEFAULT_CTX_SWITCH_S = 2e-5


@dataclass
class ScheduledUnit:
    """Outcome of one scheduled unit of work."""

    label: str
    value: object | None
    error: ReproError | None
    start: float
    end: float
    lane: str
    device_index: int
    #: every lane the unit occupied (== (lane,) for width-1 units); a
    #: multi-device solve reserves one lane per simulated GPU it spans
    lanes: tuple = ()
    #: fast-lane ordering facts (0 / None for plain batch units)
    priority: int = 0
    deadline: float | None = None
    #: this unit jumped the lane via a preemptive slot
    preempted_victim: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def deadline_met(self) -> bool | None:
        """None when the unit carried no deadline."""
        if self.deadline is None:
            return None
        return self.end <= self.deadline


@dataclass
class SchedulerStats:
    """Deadline and preemption counters (one scheduler's units)."""

    #: units that carried a deadline and finished after it
    deadline_misses: int = 0
    #: units that carried a deadline and met it
    deadlines_met: int = 0
    #: preemptive placements performed (splits + inserts)
    preemptions: int = 0
    #: preemptions that suspended a running unit at a stage boundary
    preemption_splits: int = 0
    #: preemptions that jumped ahead of placed-but-unstarted units
    preemption_inserts: int = 0
    #: deadline misses converted into meets by preemption
    saved_misses: int = 0
    #: placements pushed later by preemptive slots
    shifted_units: int = 0
    #: total context-switch seconds charged to lanes
    ctx_switch_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "deadline_misses": self.deadline_misses,
            "deadlines_met": self.deadlines_met,
            "preemptions": self.preemptions,
            "preemption_splits": self.preemption_splits,
            "preemption_inserts": self.preemption_inserts,
            "saved_misses": self.saved_misses,
            "shifted_units": self.shifted_units,
            "ctx_switch_s": self.ctx_switch_s,
        }


class _Placement:
    """One unit's presence on one lane: its events and rewrite facts."""

    __slots__ = ("unit", "lane_name", "events", "boundaries",
                 "preemptible", "retired")

    def __init__(self, unit, lane_name, events, boundaries, preemptible):
        self.unit = unit
        self.lane_name = lane_name
        #: TimelineEvents currently on the schedule for this unit on this
        #: lane (frozen; swapped wholesale on every rewrite)
        self.events: list[TimelineEvent] = events
        #: absolute simulated times at which the unit may be suspended
        self.boundaries: list[float] = boundaries
        self.preemptible = bool(preemptible)
        #: True once a dependent consumed this unit's end time — its
        #: span is frozen and may no longer be rewritten
        self.retired = False

    @property
    def start(self) -> float:
        return min(ev.start for ev in self.events)

    @property
    def end(self) -> float:
        return max(ev.end for ev in self.events)

    @property
    def movable(self) -> bool:
        return self.preemptible and not self.retired


class _Slot:
    """A feasible preemptive slot on one lane."""

    __slots__ = ("lane", "at", "split", "tail")

    def __init__(self, lane, at, split, tail):
        self.lane = lane
        #: insertion time (the boundary, for splits; the gap start else)
        self.at = at
        #: the running placement to suspend, or None for a pure insert
        self.split: _Placement | None = split
        #: every placement (incl. ``split``) the slot displaces
        self.tail: list[_Placement] = tail


class StreamScheduler:
    """Multiplexes work units over ``n_devices × streams_per_device`` lanes."""

    def __init__(
        self,
        n_devices: int = 1,
        streams_per_device: int = 2,
        spec: GPUSpec = K20C,
        pcie: PCIeSpec = PCIE_X16_GEN2,
        preemption: bool = True,
        ctx_switch_s: float = DEFAULT_CTX_SWITCH_S,
    ) -> None:
        if n_devices < 1:
            raise ServiceError(f"need at least one device, got {n_devices}")
        if streams_per_device < 1:
            raise ServiceError(
                f"need at least one stream per device, got {streams_per_device}"
            )
        if ctx_switch_s < 0:
            raise ServiceError(
                f"ctx_switch_s must be >= 0, got {ctx_switch_s}"
            )
        self.devices = [Device(spec, pcie) for _ in range(n_devices)]
        self.lanes: list[Stream] = [
            Stream(dev, name=f"dev{i}/s{j}")
            for i, dev in enumerate(self.devices)
            for j in range(streams_per_device)
        ]
        #: overlapped schedule: one TimelineEvent per unit, tag = lane name
        self.schedule = Timeline()
        #: EDF preemption on/off (off = PR 9's observational deadlines)
        self.preemption = bool(preemption)
        #: simulated seconds per context save / restore on a split
        self.ctx_switch_s = float(ctx_switch_s)
        self.stats = SchedulerStats()
        #: per-lane placements, kept sorted by start time
        self._placements: dict[str, list[_Placement]] = {
            s.name: [] for s in self.lanes
        }
        #: id(unit) -> its placements (one per occupied lane)
        self._by_unit: dict[int, list[_Placement]] = {}

    @property
    def deadline_misses(self) -> int:
        """Back-compat alias for :attr:`SchedulerStats.deadline_misses`."""
        return self.stats.deadline_misses

    # ------------------------------------------------------------------
    @staticmethod
    def dispatch_order(items: list) -> list:
        """Deadline/priority dispatch order for ready fast-lane work.

        ``items`` expose ``order_key()`` (see
        :meth:`~repro.serve.request.PredictRequest.order_key`): higher
        priority first, then earliest deadline (no deadline sorts last).
        Remaining ties break by **arrival index** — the position in
        ``items``, i.e. submission order — never by request-id
        lexicography, so two equally urgent requests dispatch in the
        order they arrived regardless of how their ids happen to sort.
        """
        return [
            item for _, item in sorted(
                enumerate(items),
                key=lambda pair: (pair[1].order_key()[:2], pair[0]),
            )
        ]

    # ------------------------------------------------------------------
    def _candidate_lanes(self, device: Device | None) -> list[Stream]:
        if device is None:
            return self.lanes
        lanes = [s for s in self.lanes if s.device is device]
        if not lanes:
            raise ServiceError("device is not managed by this scheduler")
        return lanes

    def pick_lane(self, ready_at: float, device: Device | None = None) -> Stream:
        """Earliest-available lane (ties broken by lane order, so the
        schedule is deterministic)."""
        lanes = self._candidate_lanes(device)
        return min(lanes, key=lambda s: s.available_at(ready_at))

    def device_of(self, ready_at: float) -> Device:
        """The device whose earliest lane would start soonest — used to
        pin a batch's operator build before running it."""
        return self.pick_lane(ready_at).device

    # ------------------------------------------------------------------
    def retire(self, unit: ScheduledUnit) -> None:
        """Freeze a unit's placement: it may no longer be preempted.

        Called (directly or via ``depends_on=``) once the unit's span has
        been consumed — its end seeded another placement's ``ready_at``,
        or a response was finalized from it.  Unknown units are ignored
        (a cache-hit path never placed one).
        """
        for p in self._by_unit.get(id(unit), ()):
            p.retired = True

    def _register(
        self, unit, lane, events, boundaries, preemptible
    ) -> _Placement:
        p = _Placement(unit, lane.name, events, boundaries, preemptible)
        pls = self._placements[lane.name]
        bisect.insort(pls, p, key=lambda q: q.start)
        self._by_unit.setdefault(id(unit), []).append(p)
        return p

    # ------------------------------------------------------------------
    # preemptive slot search
    # ------------------------------------------------------------------
    def _lane_slot(
        self, lane: Stream, ready_at: float, duration: float
    ) -> _Slot | None:
        """The earliest preemptive slot on ``lane``, or None.

        Feasibility: every displaced placement must be movable — a single
        non-preemptible or retired unit in the tail freezes everything
        behind it (shifting *around* it would reorder the lane's FIFO).
        """
        pls = self._placements[lane.name]
        idx = next((i for i, p in enumerate(pls) if p.end > ready_at), None)
        if idx is None:
            return None  # lane free after ready_at: FIFO placement is best
        tail = pls[idx:]
        if not all(p.movable for p in tail):
            return None
        head = tail[0]
        if head.start >= ready_at:
            # ready time falls in a gap (or exactly at a queued unit's
            # start): jump the queue, no mid-flight state to save
            return _Slot(lane, ready_at, None, tail)
        # head is mid-flight: suspend at its next stage boundary
        cuts = [b for b in head.boundaries if ready_at < b < head.end]
        if cuts:
            return _Slot(lane, cuts[0], head, tail)
        if len(tail) > 1:
            # no boundary left inside head — slip in right after it, in
            # front of the queued remainder (a batch-member boundary)
            return _Slot(lane, head.end, None, tail[1:])
        return None  # after the sole running unit == plain FIFO placement

    def _best_slot(
        self, ready_at: float, duration: float, device: Device
    ) -> _Slot | None:
        """Earliest-finishing preemptive slot on ``device``'s lanes.

        Restricted to the device the unit *executed* on so the schedule
        never contradicts the per-device profiler charge.
        """
        best: _Slot | None = None
        best_end = float("inf")
        for lane in self.lanes:
            if lane.device is not device:
                continue
            slot = self._lane_slot(lane, ready_at, duration)
            if slot is None:
                continue
            delta = self.ctx_switch_s if slot.split is not None else 0.0
            end = slot.at + delta + duration
            if end < best_end:
                best, best_end = slot, end
        return best

    # ------------------------------------------------------------------
    # placement rewrites
    # ------------------------------------------------------------------
    def _shifted(self, ev: TimelineEvent, shift: float) -> TimelineEvent:
        return TimelineEvent(
            name=ev.name, category=ev.category, start=ev.start + shift,
            duration=ev.duration, tag=ev.tag,
        )

    def _shift_placement(self, p: _Placement, shift: float) -> None:
        """Push a not-yet-started placement ``shift`` seconds later."""
        moved = []
        for ev in p.events:
            nev = self._shifted(ev, shift)
            self.schedule.replace_event(ev, [nev])
            moved.append(nev)
        p.events = moved
        p.boundaries = [b + shift for b in p.boundaries]
        p.unit.start += shift
        p.unit.end += shift

    def _split_placement(
        self, p: _Placement, at: float, shift: float
    ) -> None:
        """Suspend ``p`` at boundary ``at``; its remainder resumes after
        ``shift`` seconds (urgent unit + both context switches)."""
        cut = next(
            ev for ev in p.events if ev.start < at < ev.end
        )
        first = TimelineEvent(
            name=cut.name, category=cut.category, start=cut.start,
            duration=at - cut.start, tag=cut.tag,
        )
        rest = TimelineEvent(
            name=f"{cut.name} (resumed)", category=cut.category,
            start=at + shift, duration=cut.end - at, tag=cut.tag,
        )
        self.schedule.replace_event(cut, [first, rest])
        moved = []
        for ev in p.events:
            if ev is cut:
                moved.extend([first, rest])
            elif ev.start >= at:
                nev = self._shifted(ev, shift)
                self.schedule.replace_event(ev, [nev])
                moved.append(nev)
            else:
                moved.append(ev)
        p.events = moved
        p.boundaries = [b if b <= at else b + shift for b in p.boundaries]
        p.unit.end += shift

    def _commit_slot(
        self, slot: _Slot, name: str, category: str, duration: float
    ) -> tuple[float, float, TimelineEvent, str]:
        """Rewrite the lane for a preemptive placement; returns the
        urgent unit's (start, end, event, victim label)."""
        lane = slot.lane
        split = slot.split
        delta = self.ctx_switch_s if split is not None else 0.0
        shift = duration + 2.0 * delta
        victim = (split or slot.tail[0]).unit.label
        if split is not None:
            self._split_placement(split, slot.at, shift)
            if delta > 0:
                self.schedule.record_at(
                    f"ctx-save[{victim}]", "overhead",
                    slot.at, delta, tag=lane.name,
                )
                self.schedule.record_at(
                    f"ctx-restore[{victim}]", "overhead",
                    slot.at + delta + duration, delta, tag=lane.name,
                )
            self.stats.preemption_splits += 1
            self.stats.ctx_switch_s += 2.0 * delta
        else:
            self.stats.preemption_inserts += 1
        for p in slot.tail:
            if p is split:
                continue
            self._shift_placement(p, shift)
        self.stats.shifted_units += len(slot.tail)
        lane.free_at += shift
        start = slot.at + delta
        ev = self.schedule.record_at(
            name, category, start, duration, tag=lane.name
        )
        # the preemption's own Chrome-trace track: one span covering the
        # stolen window (context switches included)
        self.schedule.record_at(
            f"preempt[{name} over {victim}]", "overhead",
            slot.at, shift, tag="preempt",
        )
        self.stats.preemptions += 1
        self.stats.saved_misses += 1
        return start, start + duration, ev, victim

    # ------------------------------------------------------------------
    def _widen_lanes(
        self, primary: Stream, ready_at: float, width: int
    ) -> list[Stream]:
        """Pick ``width - 1`` extra lanes for a unit anchored on
        ``primary``: distinct other devices first (earliest-available
        lane each), then sibling streams on already-used devices."""
        chosen = [primary]
        used_devices = {id(primary.device)}
        # one lane per *other* device, earliest-available first
        others = sorted(
            (s for s in self.lanes if id(s.device) not in used_devices),
            key=lambda s: (s.available_at(ready_at), self.lanes.index(s)),
        )
        for lane in others:
            if len(chosen) == width:
                break
            if id(lane.device) in used_devices:
                continue
            chosen.append(lane)
            used_devices.add(id(lane.device))
        # spill to sibling streams when width exceeds the device count
        if len(chosen) < width:
            spill = sorted(
                (s for s in self.lanes if s not in chosen),
                key=lambda s: (s.available_at(ready_at), self.lanes.index(s)),
            )
            chosen.extend(spill[: width - len(chosen)])
        return chosen

    def run(
        self,
        label: str,
        ready_at: float,
        fn,
        device: Device | None = None,
        category: str = "kernel",
        width: int = 1,
        priority: int = 0,
        deadline: float | None = None,
        preemptible: bool = False,
        depends_on: tuple = (),
    ) -> ScheduledUnit:
        """Execute ``fn(device)`` and place its cost on ``width`` lanes.

        ``fn`` runs to completion (or to a :class:`ReproError`) on the
        chosen device; the simulated duration it charged — including the
        cost of failed attempts and resilience retries — is reserved on
        the lane starting no earlier than ``ready_at``.  Errors are
        captured, not raised: a faulted unit still occupies its lane for
        the time it burned, exactly like a real stream.

        ``width > 1`` is for gang-scheduled multi-device work (a
        row-partitioned eigensolve spanning ``eig_devices`` GPUs): the
        unit reserves that many lanes — preferring one lane on each
        distinct device before doubling up streams — and all of them
        block for the unit's full duration from a common start, so the
        schedule's occupancy reflects every GPU the solve pinned.

        ``preemptible=True`` allows a later deadline-carrying unit to
        suspend this one at a recorded stage boundary or slip in front
        of it before it starts; stage boundaries are collected from the
        :func:`~repro.cuda.boundaries.mark_boundary` calls ``fn`` fires.
        ``depends_on`` names units whose end times this placement
        consumes — they are retired (frozen) first, so preemption can
        never rewrite a span another unit's start already relied on.

        A unit with a deadline that FIFO placement would miss, with
        ``self.preemption`` on, takes the earliest preemptive slot on
        its execution device — but only when that slot converts the miss
        into a meet; pointless preemption (still missing) never pays the
        disruption.
        """
        if width < 1:
            raise ServiceError(f"width must be >= 1, got {width}")
        if width > len(self.lanes):
            raise ServiceError(
                f"width {width} exceeds the scheduler's {len(self.lanes)} lanes"
            )
        if preemptible and width > 1:
            raise ServiceError(
                "gang-scheduled units cannot be preemptible: suspending one "
                "lane of a multi-device solve would desynchronize the gang"
            )
        if preemptible and deadline is not None:
            raise ServiceError(
                "a unit cannot be both preemptible and deadline-carrying: "
                "its counted meet/miss would be rewritten after the fact"
            )
        for dep in depends_on:
            self.retire(dep)
        lane = self.pick_lane(ready_at, device)
        dev = lane.device
        t0 = dev.elapsed
        value: object | None = None
        error: ReproError | None = None
        with collect_boundaries() as marks:
            try:
                value = fn(dev)
            except ReproError as err:
                error = err
        duration = dev.elapsed - t0
        offsets = sorted({
            m - t0 for m in marks if 0.0 < m - t0 < duration
        })
        name = label if error is None else f"{label} [failed: {type(error).__name__}]"
        gang = (
            self._widen_lanes(lane, ready_at, width) if width > 1 else [lane]
        )
        victim: str | None = None
        if width > 1:
            # gang members start together: none may begin before the
            # busiest chosen lane frees up
            ready_all = max(
                ready_at, *(s.available_at(ready_at) for s in gang)
            )
            start = end = None
            unit = ScheduledUnit(
                label=label, value=value, error=error, start=0.0, end=0.0,
                lane=lane.name, device_index=self.devices.index(dev),
                lanes=tuple(s.name for s in gang),
                priority=priority, deadline=deadline,
            )
            for member in gang:
                s, e = member.reserve(ready_all, duration)
                ev = self.schedule.record_at(
                    name, category, s, duration, tag=member.name
                )
                # gang lanes register non-preemptible placements so a
                # later preemptive slot can never shift around them
                self._register(unit, member, [ev], [], preemptible=False)
                if start is None:
                    start, end = s, e
            unit.start, unit.end = start, end
        else:
            fifo_start = lane.available_at(ready_at)
            fifo_end = fifo_start + duration
            slot = None
            if (
                self.preemption
                and deadline is not None
                and duration > 0
                and fifo_end > deadline
            ):
                cand = self._best_slot(ready_at, duration, dev)
                if cand is not None:
                    delta = (
                        self.ctx_switch_s if cand.split is not None else 0.0
                    )
                    cand_end = cand.at + delta + duration
                    # preempt only to convert the miss into a meet
                    if cand_end <= deadline and cand_end < fifo_end:
                        slot = cand
            if slot is not None:
                start, end, ev, victim = self._commit_slot(
                    slot, name, category, duration
                )
            else:
                start, end = lane.reserve(ready_at, duration)
                ev = self.schedule.record_at(
                    name, category, start, duration, tag=lane.name
                )
            unit = ScheduledUnit(
                label=label, value=value, error=error, start=start, end=end,
                lane=lane.name, device_index=self.devices.index(dev),
                lanes=(lane.name,), priority=priority, deadline=deadline,
                preempted_victim=victim,
            )
            self._register(
                unit, lane, [ev], [start + o for o in offsets], preemptible
            )
        if unit.deadline_met is False:
            self.stats.deadline_misses += 1
        elif unit.deadline_met is True:
            self.stats.deadlines_met += 1
        return unit

    # ------------------------------------------------------------------
    # schedule-level aggregates
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Simulated time at which the last scheduled unit completes."""
        _, hi = self.schedule.span()
        return hi

    def device_busy(self) -> dict[str, float]:
        """Busy seconds per device (union over its lanes' spans)."""
        out: dict[str, float] = {}
        for i, dev in enumerate(self.devices):
            name = f"dev{i}"
            lanes = [s.name for s in self.lanes if s.device is dev]
            busy = 0.0
            for lane in lanes:
                busy += self.schedule.busy_time(tag=lane)
            out[name] = busy
        return out

    def occupancy(self) -> dict[str, float]:
        """Per-device busy fraction of the makespan (0 when nothing ran).

        Summed over a device's lanes, so a device running two streams
        flat-out reports up to ``streams_per_device`` × the makespan of
        busy time normalized back to [0, streams]; divided by lane count
        to land in [0, 1].
        """
        span = self.makespan()
        if span <= 0:
            return {f"dev{i}": 0.0 for i in range(len(self.devices))}
        lanes_per_dev = len(self.lanes) // len(self.devices)
        return {
            name: busy / (span * lanes_per_dev)
            for name, busy in self.device_busy().items()
        }
