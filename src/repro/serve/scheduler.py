"""The multi-stream, multi-device scheduler.

The simulated runtime executes synchronously, but serving wants the
*schedule* a real deployment would see: several CUDA streams per device
and several devices draining work concurrently.  The scheduler bridges
the two honestly:

1. a unit of work (an operator build, a Lanczos solve, one request's
   k-means) **executes** on a real :class:`~repro.cuda.device.Device`,
   charging its kernels/transfers to that device's serial timeline — the
   duration is exactly what the cost model says the unit takes;
2. the unit is then **placed** on the earliest-available stream lane
   (FIFO per stream, dependencies respected via ``ready_at``) using
   :meth:`~repro.cuda.stream.Stream.reserve`, and the placement is
   recorded on an *overlapped* service timeline
   (:meth:`~repro.hw.timeline.Timeline.record_at`);
3. queue waits, latencies, makespan and occupancy are read off that
   overlapped timeline, so concurrency never conjures up compute time —
   it only overlaps spans whose durations the serial cost model produced.

Work that must stay device-affine (a Lanczos solve reading an operator
resident on device i's memory) passes ``device=``; host-input work (each
request's k-means re-uploads the embedding) may land on any lane.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.device import Device
from repro.cuda.stream import Stream
from repro.errors import ReproError, ServiceError
from repro.hw.spec import GPUSpec, K20C, PCIE_X16_GEN2, PCIeSpec
from repro.hw.timeline import Timeline


@dataclass
class ScheduledUnit:
    """Outcome of one scheduled unit of work."""

    label: str
    value: object | None
    error: ReproError | None
    start: float
    end: float
    lane: str
    device_index: int
    #: every lane the unit occupied (== (lane,) for width-1 units); a
    #: multi-device solve reserves one lane per simulated GPU it spans
    lanes: tuple = ()
    #: fast-lane ordering facts (0 / None for plain batch units)
    priority: int = 0
    deadline: float | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def deadline_met(self) -> bool | None:
        """None when the unit carried no deadline."""
        if self.deadline is None:
            return None
        return self.end <= self.deadline


class StreamScheduler:
    """Multiplexes work units over ``n_devices × streams_per_device`` lanes."""

    def __init__(
        self,
        n_devices: int = 1,
        streams_per_device: int = 2,
        spec: GPUSpec = K20C,
        pcie: PCIeSpec = PCIE_X16_GEN2,
    ) -> None:
        if n_devices < 1:
            raise ServiceError(f"need at least one device, got {n_devices}")
        if streams_per_device < 1:
            raise ServiceError(
                f"need at least one stream per device, got {streams_per_device}"
            )
        self.devices = [Device(spec, pcie) for _ in range(n_devices)]
        self.lanes: list[Stream] = [
            Stream(dev, name=f"dev{i}/s{j}")
            for i, dev in enumerate(self.devices)
            for j in range(streams_per_device)
        ]
        #: overlapped schedule: one TimelineEvent per unit, tag = lane name
        self.schedule = Timeline()
        #: units that carried a deadline and finished after it
        self.deadline_misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def dispatch_order(items: list) -> list:
        """Deadline/priority dispatch order for ready fast-lane work.

        ``items`` expose ``order_key()`` (see
        :meth:`~repro.serve.request.PredictRequest.order_key`): higher
        priority first, then earliest deadline (no deadline sorts last),
        then arrival — so an urgent request admitted late still jumps a
        backlog of best-effort ones, and FIFO breaks the remaining ties
        deterministically.
        """
        return sorted(items, key=lambda item: item.order_key())

    # ------------------------------------------------------------------
    def _candidate_lanes(self, device: Device | None) -> list[Stream]:
        if device is None:
            return self.lanes
        lanes = [s for s in self.lanes if s.device is device]
        if not lanes:
            raise ServiceError("device is not managed by this scheduler")
        return lanes

    def pick_lane(self, ready_at: float, device: Device | None = None) -> Stream:
        """Earliest-available lane (ties broken by lane order, so the
        schedule is deterministic)."""
        lanes = self._candidate_lanes(device)
        return min(lanes, key=lambda s: s.available_at(ready_at))

    def device_of(self, ready_at: float) -> Device:
        """The device whose earliest lane would start soonest — used to
        pin a batch's operator build before running it."""
        return self.pick_lane(ready_at).device

    # ------------------------------------------------------------------
    def _widen_lanes(
        self, primary: Stream, ready_at: float, width: int
    ) -> list[Stream]:
        """Pick ``width - 1`` extra lanes for a unit anchored on
        ``primary``: distinct other devices first (earliest-available
        lane each), then sibling streams on already-used devices."""
        chosen = [primary]
        used_devices = {id(primary.device)}
        # one lane per *other* device, earliest-available first
        others = sorted(
            (s for s in self.lanes if id(s.device) not in used_devices),
            key=lambda s: (s.available_at(ready_at), self.lanes.index(s)),
        )
        for lane in others:
            if len(chosen) == width:
                break
            if id(lane.device) in used_devices:
                continue
            chosen.append(lane)
            used_devices.add(id(lane.device))
        # spill to sibling streams when width exceeds the device count
        if len(chosen) < width:
            spill = sorted(
                (s for s in self.lanes if s not in chosen),
                key=lambda s: (s.available_at(ready_at), self.lanes.index(s)),
            )
            chosen.extend(spill[: width - len(chosen)])
        return chosen

    def run(
        self,
        label: str,
        ready_at: float,
        fn,
        device: Device | None = None,
        category: str = "kernel",
        width: int = 1,
        priority: int = 0,
        deadline: float | None = None,
    ) -> ScheduledUnit:
        """Execute ``fn(device)`` and place its cost on ``width`` lanes.

        ``fn`` runs to completion (or to a :class:`ReproError`) on the
        chosen device; the simulated duration it charged — including the
        cost of failed attempts and resilience retries — is reserved on
        the lane starting no earlier than ``ready_at``.  Errors are
        captured, not raised: a faulted unit still occupies its lane for
        the time it burned, exactly like a real stream.

        ``width > 1`` is for gang-scheduled multi-device work (a
        row-partitioned eigensolve spanning ``eig_devices`` GPUs): the
        unit reserves that many lanes — preferring one lane on each
        distinct device before doubling up streams — and all of them
        block for the unit's full duration from a common start, so the
        schedule's occupancy reflects every GPU the solve pinned.
        """
        if width < 1:
            raise ServiceError(f"width must be >= 1, got {width}")
        if width > len(self.lanes):
            raise ServiceError(
                f"width {width} exceeds the scheduler's {len(self.lanes)} lanes"
            )
        lane = self.pick_lane(ready_at, device)
        dev = lane.device
        t0 = dev.elapsed
        value: object | None = None
        error: ReproError | None = None
        try:
            value = fn(dev)
        except ReproError as err:
            error = err
        duration = dev.elapsed - t0
        name = label if error is None else f"{label} [failed: {type(error).__name__}]"
        gang = (
            self._widen_lanes(lane, ready_at, width) if width > 1 else [lane]
        )
        # gang members start together: none may begin before the busiest
        # chosen lane frees up
        ready_all = max(ready_at, *(s.available_at(ready_at) for s in gang))
        start = end = None
        for member in gang:
            s, e = member.reserve(ready_all, duration)
            self.schedule.record_at(name, category, s, duration, tag=member.name)
            if start is None:
                start, end = s, e
        unit = ScheduledUnit(
            label=label,
            value=value,
            error=error,
            start=start,
            end=end,
            lane=lane.name,
            device_index=self.devices.index(dev),
            lanes=tuple(s.name for s in gang),
            priority=priority,
            deadline=deadline,
        )
        if unit.deadline_met is False:
            self.deadline_misses += 1
        return unit

    # ------------------------------------------------------------------
    # schedule-level aggregates
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Simulated time at which the last scheduled unit completes."""
        _, hi = self.schedule.span()
        return hi

    def device_busy(self) -> dict[str, float]:
        """Busy seconds per device (union over its lanes' spans)."""
        out: dict[str, float] = {}
        for i, dev in enumerate(self.devices):
            name = f"dev{i}"
            lanes = [s.name for s in self.lanes if s.device is dev]
            busy = 0.0
            for lane in lanes:
                busy += self.schedule.busy_time(tag=lane)
            out[name] = busy
        return out

    def occupancy(self) -> dict[str, float]:
        """Per-device busy fraction of the makespan (0 when nothing ran).

        Summed over a device's lanes, so a device running two streams
        flat-out reports up to ``streams_per_device`` × the makespan of
        busy time normalized back to [0, streams]; divided by lane count
        to land in [0, 1].
        """
        span = self.makespan()
        if span <= 0:
            return {f"dev{i}": 0.0 for i in range(len(self.devices))}
        lanes_per_dev = len(self.lanes) // len(self.devices)
        return {
            name: busy / (span * lanes_per_dev)
            for name, busy in self.device_busy().items()
        }
