"""Replayable request traces: JSONL persistence + synthetic generators.

A trace is one JSON object per line: a by-reference
:class:`~repro.serve.request.ClusterRequest` (datasets are named, never
inlined, so traces are small and content-addressing still works on
replay), or — with ``"kind": "predict"`` — a
:class:`~repro.serve.request.PredictRequest` whose fit spec nests as a
``"fit"`` sub-object and whose payload is the by-reference synthetic
form (``n_new``/``new_seed``).  Unknown keys are rejected so a typo'd
field fails loudly rather than silently falling back to a default.
"""

from __future__ import annotations

import json

from repro.errors import TraceFormatError
from repro.serve.request import ClusterRequest, PredictRequest

#: JSONL fields accepted for a trace request (chaos is a seed, not a plan)
_FIELDS = (
    "request_id", "arrival", "dataset", "scale", "data_seed",
    "n_clusters", "similarity", "sigma", "operator", "objective",
    "m", "eig_tol", "eig_maxiter", "precision", "embedding",
    "kmeans_init", "kmeans_max_iter",
    "normalize_rows", "handle_isolated", "seed", "chaos", "no_resilience",
)

#: JSONL fields accepted for a predict trace entry
_PREDICT_FIELDS = (
    "kind", "request_id", "arrival", "fit", "n_new", "new_seed",
    "deadline", "priority", "chaos", "no_resilience",
)


def request_to_dict(req: ClusterRequest) -> dict:
    """JSON-serializable form of a by-reference request."""
    if req.dataset is None:
        raise TraceFormatError(
            f"request {req.request_id!r} carries an in-memory workload; "
            "only dataset-by-reference requests are trace-serializable"
        )
    if req.chaos is not None and not isinstance(req.chaos, int):
        raise TraceFormatError(
            f"request {req.request_id!r}: only integer chaos seeds are "
            "trace-serializable"
        )
    defaults = ClusterRequest(request_id="", dataset=req.dataset)
    out = {"request_id": req.request_id, "dataset": req.dataset}
    for name in _FIELDS:
        if name in ("request_id", "dataset"):
            continue
        value = getattr(req, name)
        if value != getattr(defaults, name):
            out[name] = value
    return out


def predict_to_dict(req: PredictRequest) -> dict:
    """JSON-serializable form of a synthetic-payload predict request."""
    if not req.synthetic_payload:
        raise TraceFormatError(
            f"predict {req.request_id!r} carries a by-value payload; only "
            "synthetic (n_new/new_seed) predicts are trace-serializable"
        )
    if req.chaos is not None and not isinstance(req.chaos, int):
        raise TraceFormatError(
            f"predict {req.request_id!r}: only integer chaos seeds are "
            "trace-serializable"
        )
    fit_dict = request_to_dict(req.fit)
    defaults = PredictRequest(request_id="", fit=req.fit)
    out = {
        "kind": "predict",
        "request_id": req.request_id,
        "fit": fit_dict,
    }
    for name in _PREDICT_FIELDS:
        if name in ("kind", "request_id", "fit"):
            continue
        value = getattr(req, name)
        if value != getattr(defaults, name):
            out[name] = value
    return out


def predict_from_dict(obj: dict, lineno: int | None = None) -> PredictRequest:
    """Parse one predict trace entry."""
    where = f" (line {lineno})" if lineno is not None else ""
    unknown = sorted(set(obj) - set(_PREDICT_FIELDS))
    if unknown:
        raise TraceFormatError(
            f"unknown predict trace fields {unknown}{where}"
        )
    if "request_id" not in obj:
        raise TraceFormatError(f"predict trace entry missing request_id{where}")
    fit_obj = obj.get("fit")
    if not isinstance(fit_obj, dict):
        raise TraceFormatError(
            f"predict trace entry {obj['request_id']!r} missing its fit "
            f"spec{where}"
        )
    chaos = obj.get("chaos")
    if chaos is not None and not isinstance(chaos, int):
        raise TraceFormatError(
            f"predict trace entry {obj['request_id']!r}: chaos must be an "
            f"integer seed{where}"
        )
    fields = {k: v for k, v in obj.items() if k not in ("kind", "fit")}
    fields["fit"] = request_from_dict(fit_obj, lineno=lineno)
    try:
        return PredictRequest(**fields)
    except TypeError as err:
        raise TraceFormatError(f"bad predict trace entry{where}: {err}") from err


def request_from_dict(obj: dict, lineno: int | None = None) -> ClusterRequest:
    """Parse one trace entry, rejecting unknown or malformed fields."""
    where = f" (line {lineno})" if lineno is not None else ""
    if not isinstance(obj, dict):
        raise TraceFormatError(f"trace entry must be an object{where}")
    if obj.get("kind") == "predict":
        return predict_from_dict(obj, lineno=lineno)
    unknown = sorted(set(obj) - set(_FIELDS))
    if unknown:
        raise TraceFormatError(f"unknown trace fields {unknown}{where}")
    if "request_id" not in obj:
        raise TraceFormatError(f"trace entry missing request_id{where}")
    if "dataset" not in obj:
        raise TraceFormatError(
            f"trace entry {obj['request_id']!r} missing dataset{where}"
        )
    chaos = obj.get("chaos")
    if chaos is not None and not isinstance(chaos, int):
        raise TraceFormatError(
            f"trace entry {obj['request_id']!r}: chaos must be an integer "
            f"seed{where}"
        )
    try:
        return ClusterRequest(**obj)
    except TypeError as err:
        raise TraceFormatError(f"bad trace entry{where}: {err}") from err


def write_trace(requests, path) -> None:
    """Write requests to ``path`` as JSONL (by-reference requests only)."""
    with open(path, "w", encoding="utf-8") as fh:
        for req in requests:
            obj = (
                predict_to_dict(req) if isinstance(req, PredictRequest)
                else request_to_dict(req)
            )
            fh.write(json.dumps(obj, sort_keys=True) + "\n")


def read_trace(path) -> list:
    """Parse a JSONL trace file into requests (order preserved).

    Entries tagged ``"kind": "predict"`` come back as
    :class:`PredictRequest`; everything else as :class:`ClusterRequest`.
    """
    requests: list = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                raise TraceFormatError(
                    f"invalid JSON on line {lineno}: {err}"
                ) from err
            requests.append(request_from_dict(obj, lineno=lineno))
    return requests


def synthetic_trace(
    n_requests: int = 24,
    datasets: tuple = (("syn200", 0.1), ("fb", 0.3)),
    mean_interarrival: float = 0.002,
    k_choices: tuple = (2, 3, 4),
    chaos_every: int = 0,
    seed: int = 0,
) -> list[ClusterRequest]:
    """A bursty synthetic workload that exercises batching and caching.

    Workloads cycle through ``datasets`` (each a ``(name, scale)`` pair
    with a fixed generator seed), so the same graph fingerprint recurs
    throughout the trace — exactly the traffic shape micro-batching and
    the embedding cache exist for.  ``k_choices`` varies ``n_clusters``
    across requests sharing a graph; ``chaos_every > 0`` arms every
    n-th request with a deterministic fault seed.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(mean_interarrival, size=n_requests))
    requests: list[ClusterRequest] = []
    for i in range(n_requests):
        name, scale = datasets[i % len(datasets)]
        requests.append(ClusterRequest(
            request_id=f"r{i:04d}",
            arrival=float(arrivals[i]),
            dataset=name,
            scale=scale,
            data_seed=0,
            n_clusters=int(k_choices[(i // len(datasets)) % len(k_choices)]),
            chaos=(
                int(1000 + i) if chaos_every and (i + 1) % chaos_every == 0
                else None
            ),
        ))
    return requests


def synthetic_predict_trace(
    n_requests: int = 40,
    datasets: tuple = (("syn200", 0.1), ("fb", 0.3)),
    predict_fraction: float = 0.9,
    mean_interarrival: float = 0.002,
    k_choices: tuple = (2, 3),
    n_new: int = 8,
    deadline_slack: float | None = 0.25,
    deadline_every: int = 3,
    chaos_every: int = 0,
    seed: int = 0,
) -> list:
    """A predict-heavy serving workload: few fit specs, many predicts.

    ``predict_fraction`` of the trace (rounded) are
    :class:`PredictRequest` entries; the rest are plain fits.  All
    predicts cycle through the same small set of fit specs (``datasets``
    × ``k_choices``), so after one cold fit per spec the model cache
    serves every subsequent predict warm — the fit-once-predict-many
    traffic shape the fast lane exists for.  Every ``deadline_every``-th
    predict carries a deadline (``arrival + deadline_slack``; the default
    of 3 matches the historical trace byte-for-byte, 1 makes every
    predict deadline-carrying — the deadline-heavy workload the
    preemption bench uses) and priorities cycle 0-2, exercising the
    deadline/priority dispatch order; ``chaos_every > 0`` arms every
    n-th predict with a deterministic fault seed.
    """
    import numpy as np

    if not 0.0 <= predict_fraction <= 1.0:
        raise TraceFormatError(
            f"predict_fraction must be in [0, 1], got {predict_fraction}"
        )
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(mean_interarrival, size=n_requests))
    n_predict = int(round(n_requests * predict_fraction))
    is_predict = np.zeros(n_requests, dtype=bool)
    is_predict[:n_predict] = True
    rng.shuffle(is_predict)

    specs = [
        (name, scale, int(k))
        for name, scale in datasets for k in k_choices
    ]
    requests: list = []
    p = 0  # predict counter (drives spec cycling, deadlines, priorities)
    for i in range(n_requests):
        name, scale, k = specs[(p if is_predict[i] else i) % len(specs)]
        if is_predict[i]:
            chaos = (
                int(2000 + i)
                if chaos_every and (p + 1) % chaos_every == 0 else None
            )
            requests.append(PredictRequest(
                request_id=f"p{i:04d}",
                arrival=float(arrivals[i]),
                fit=ClusterRequest(
                    request_id=f"p{i:04d}/fit",
                    dataset=name,
                    scale=scale,
                    data_seed=0,
                    n_clusters=k,
                ),
                n_new=n_new,
                new_seed=p,
                deadline=(
                    float(arrivals[i] + deadline_slack)
                    if deadline_slack is not None
                    and deadline_every > 0
                    and p % deadline_every == 0 else None
                ),
                priority=p % 3,
                chaos=chaos,
            ))
            p += 1
        else:
            requests.append(ClusterRequest(
                request_id=f"r{i:04d}",
                arrival=float(arrivals[i]),
                dataset=name,
                scale=scale,
                data_seed=0,
                n_clusters=k,
            ))
    return requests
