"""Replayable request traces: JSONL persistence + a synthetic generator.

A trace is one JSON object per line, each a by-reference
:class:`~repro.serve.request.ClusterRequest` (datasets are named, never
inlined, so traces are small and content-addressing still works on
replay).  Unknown keys are rejected so a typo'd field fails loudly rather
than silently falling back to a default.
"""

from __future__ import annotations

import json

from repro.errors import TraceFormatError
from repro.serve.request import ClusterRequest

#: JSONL fields accepted for a trace request (chaos is a seed, not a plan)
_FIELDS = (
    "request_id", "arrival", "dataset", "scale", "data_seed",
    "n_clusters", "similarity", "sigma", "operator", "objective",
    "m", "eig_tol", "eig_maxiter", "precision", "embedding",
    "kmeans_init", "kmeans_max_iter",
    "normalize_rows", "handle_isolated", "seed", "chaos", "no_resilience",
)


def request_to_dict(req: ClusterRequest) -> dict:
    """JSON-serializable form of a by-reference request."""
    if req.dataset is None:
        raise TraceFormatError(
            f"request {req.request_id!r} carries an in-memory workload; "
            "only dataset-by-reference requests are trace-serializable"
        )
    if req.chaos is not None and not isinstance(req.chaos, int):
        raise TraceFormatError(
            f"request {req.request_id!r}: only integer chaos seeds are "
            "trace-serializable"
        )
    defaults = ClusterRequest(request_id="", dataset=req.dataset)
    out = {"request_id": req.request_id, "dataset": req.dataset}
    for name in _FIELDS:
        if name in ("request_id", "dataset"):
            continue
        value = getattr(req, name)
        if value != getattr(defaults, name):
            out[name] = value
    return out


def request_from_dict(obj: dict, lineno: int | None = None) -> ClusterRequest:
    """Parse one trace entry, rejecting unknown or malformed fields."""
    where = f" (line {lineno})" if lineno is not None else ""
    if not isinstance(obj, dict):
        raise TraceFormatError(f"trace entry must be an object{where}")
    unknown = sorted(set(obj) - set(_FIELDS))
    if unknown:
        raise TraceFormatError(f"unknown trace fields {unknown}{where}")
    if "request_id" not in obj:
        raise TraceFormatError(f"trace entry missing request_id{where}")
    if "dataset" not in obj:
        raise TraceFormatError(
            f"trace entry {obj['request_id']!r} missing dataset{where}"
        )
    chaos = obj.get("chaos")
    if chaos is not None and not isinstance(chaos, int):
        raise TraceFormatError(
            f"trace entry {obj['request_id']!r}: chaos must be an integer "
            f"seed{where}"
        )
    try:
        return ClusterRequest(**obj)
    except TypeError as err:
        raise TraceFormatError(f"bad trace entry{where}: {err}") from err


def write_trace(requests, path) -> None:
    """Write requests to ``path`` as JSONL (by-reference requests only)."""
    with open(path, "w", encoding="utf-8") as fh:
        for req in requests:
            fh.write(json.dumps(request_to_dict(req), sort_keys=True) + "\n")


def read_trace(path) -> list[ClusterRequest]:
    """Parse a JSONL trace file into requests (order preserved)."""
    requests: list[ClusterRequest] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                raise TraceFormatError(
                    f"invalid JSON on line {lineno}: {err}"
                ) from err
            requests.append(request_from_dict(obj, lineno=lineno))
    return requests


def synthetic_trace(
    n_requests: int = 24,
    datasets: tuple = (("syn200", 0.1), ("fb", 0.3)),
    mean_interarrival: float = 0.002,
    k_choices: tuple = (2, 3, 4),
    chaos_every: int = 0,
    seed: int = 0,
) -> list[ClusterRequest]:
    """A bursty synthetic workload that exercises batching and caching.

    Workloads cycle through ``datasets`` (each a ``(name, scale)`` pair
    with a fixed generator seed), so the same graph fingerprint recurs
    throughout the trace — exactly the traffic shape micro-batching and
    the embedding cache exist for.  ``k_choices`` varies ``n_clusters``
    across requests sharing a graph; ``chaos_every > 0`` arms every
    n-th request with a deterministic fault seed.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(mean_interarrival, size=n_requests))
    requests: list[ClusterRequest] = []
    for i in range(n_requests):
        name, scale = datasets[i % len(datasets)]
        requests.append(ClusterRequest(
            request_id=f"r{i:04d}",
            arrival=float(arrivals[i]),
            dataset=name,
            scale=scale,
            data_seed=0,
            n_clusters=int(k_choices[(i // len(datasets)) % len(k_choices)]),
            chaos=(
                int(1000 + i) if chaos_every and (i + 1) % chaos_every == 0
                else None
            ),
        ))
    return requests
