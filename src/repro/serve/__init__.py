"""repro.serve — clustering-as-a-service on the simulated platform.

A replay-driven serving layer over the spectral clustering pipeline:
bounded admission, micro-batching of fingerprint-compatible requests,
an LRU embedding cache with bit-identical hits (optionally spilled to an
on-disk cross-process store), speculative batch formation driven by an
online arrival predictor, a predict fast lane that serves out-of-sample
requests from cached fitted models under deadline/priority dispatch with
EDF preemption at stage boundaries, and a multi-stream / multi-device
scheduler that charges queueing and overlap to the simulated clock.  See
``docs/serving.md`` for the model.
"""

from repro.serve.batcher import (
    ArrivalPredictor,
    Batch,
    BatcherStats,
    MicroBatcher,
)
from repro.serve.cache import CacheStats, EmbeddingCache
from repro.serve.fingerprint import (
    embedding_key,
    graph_fingerprint,
    model_key,
    operator_key,
    points_fingerprint,
)
from repro.serve.metrics import (
    LatencyStats,
    ServiceReport,
    build_report,
    merge_service_reports,
    percentile,
)
from repro.serve.persist import FORMAT_VERSION, PersistentStore, StoreStats
from repro.serve.queue import AdmissionQueue, QueueStats
from repro.serve.request import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    ClusterRequest,
    ClusterResponse,
    PredictRequest,
    PredictResponse,
)
from repro.serve.scheduler import (
    DEFAULT_CTX_SWITCH_S,
    ScheduledUnit,
    SchedulerStats,
    StreamScheduler,
)
from repro.serve.service import (
    ClusterService,
    ServiceConfig,
    run_sequential,
    verify_against_cold,
)
from repro.serve.traceio import (
    predict_from_dict,
    predict_to_dict,
    read_trace,
    request_from_dict,
    request_to_dict,
    synthetic_predict_trace,
    synthetic_trace,
    write_trace,
)

__all__ = [
    "AdmissionQueue",
    "ArrivalPredictor",
    "Batch",
    "BatcherStats",
    "CacheStats",
    "ClusterRequest",
    "ClusterResponse",
    "ClusterService",
    "DEFAULT_CTX_SWITCH_S",
    "EmbeddingCache",
    "FORMAT_VERSION",
    "LatencyStats",
    "MicroBatcher",
    "PersistentStore",
    "PredictRequest",
    "PredictResponse",
    "QueueStats",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ScheduledUnit",
    "SchedulerStats",
    "ServiceConfig",
    "ServiceReport",
    "StoreStats",
    "StreamScheduler",
    "build_report",
    "merge_service_reports",
    "embedding_key",
    "graph_fingerprint",
    "model_key",
    "operator_key",
    "percentile",
    "points_fingerprint",
    "predict_from_dict",
    "predict_to_dict",
    "read_trace",
    "request_from_dict",
    "request_to_dict",
    "run_sequential",
    "synthetic_predict_trace",
    "synthetic_trace",
    "verify_against_cold",
    "write_trace",
]
