"""repro.serve — clustering-as-a-service on the simulated platform.

A replay-driven serving layer over the spectral clustering pipeline:
bounded admission, micro-batching of fingerprint-compatible requests,
an LRU embedding cache with bit-identical hits, and a multi-stream /
multi-device scheduler that charges queueing and overlap to the
simulated clock.  See ``docs/serving.md`` for the model.
"""

from repro.serve.batcher import Batch, BatcherStats, MicroBatcher
from repro.serve.cache import CacheStats, EmbeddingCache
from repro.serve.fingerprint import (
    embedding_key,
    graph_fingerprint,
    operator_key,
    points_fingerprint,
)
from repro.serve.metrics import LatencyStats, ServiceReport, build_report, percentile
from repro.serve.queue import AdmissionQueue, QueueStats
from repro.serve.request import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    ClusterRequest,
    ClusterResponse,
)
from repro.serve.scheduler import ScheduledUnit, StreamScheduler
from repro.serve.service import (
    ClusterService,
    ServiceConfig,
    run_sequential,
    verify_against_cold,
)
from repro.serve.traceio import (
    read_trace,
    request_from_dict,
    request_to_dict,
    synthetic_trace,
    write_trace,
)

__all__ = [
    "AdmissionQueue",
    "Batch",
    "BatcherStats",
    "CacheStats",
    "ClusterRequest",
    "ClusterResponse",
    "ClusterService",
    "EmbeddingCache",
    "LatencyStats",
    "MicroBatcher",
    "QueueStats",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ScheduledUnit",
    "ServiceConfig",
    "ServiceReport",
    "StreamScheduler",
    "build_report",
    "embedding_key",
    "graph_fingerprint",
    "operator_key",
    "percentile",
    "points_fingerprint",
    "read_trace",
    "request_from_dict",
    "request_to_dict",
    "run_sequential",
    "synthetic_trace",
    "verify_against_cold",
    "write_trace",
]
