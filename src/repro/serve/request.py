"""Request/response records of the clustering service.

A :class:`ClusterRequest` names a workload either by *reference* (a
registered dataset + scale + generator seed — the JSONL-serializable form
used in replay traces) or by *value* (an in-memory graph or point set).
All estimator parameters ride on the request, so any two requests are
free to differ in ``n_clusters``, seeds, tolerances, or chaos plans while
still sharing a graph.

A :class:`ClusterResponse` carries the clustering output plus the
service-side observability record: admission/queue/batch/cache facts and
the simulated latency breakdown the metrics report aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.plan import FaultPlan
from repro.chaos.retry import DISABLED, ResiliencePolicy
from repro.core.pipeline import SpectralClustering
from repro.core.result import StageTimings
from repro.errors import RequestError
from repro.serve.fingerprint import (
    embedding_key,
    graph_fingerprint,
    model_key,
    operator_key,
    points_fingerprint,
)
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

#: response lifecycle outcomes
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_FAILED = "failed"


@dataclass
class ClusterRequest:
    """One clustering job submitted to the service.

    Exactly one workload source must be set: ``dataset`` (by reference,
    replayable) or ``graph`` / ``X``+``edges`` (by value).
    """

    request_id: str
    #: simulated submission time (seconds on the service clock)
    arrival: float = 0.0

    # -- workload by reference (JSONL-serializable) ---------------------
    dataset: str | None = None
    scale: float = 0.05
    data_seed: int = 0

    # -- workload by value ----------------------------------------------
    graph: COOMatrix | CSRMatrix | None = None
    X: np.ndarray | None = None
    edges: np.ndarray | None = None

    # -- estimator parameters (defaults mirror SpectralClustering) ------
    n_clusters: int = 2
    similarity: str = "crosscorr"
    sigma: float = 1.0
    operator: str = "sym"
    objective: str = "ncut"
    m: int | None = None
    eig_tol: float = 1e-8
    eig_maxiter: int | None = None
    #: GPUs the eigensolve spans (row-partitioned; bit-identical output,
    #: so deliberately NOT part of embedding_key — a multi-device solve
    #: can serve a cached single-device embedding and vice versa)
    eig_devices: int = 1
    #: GPUs the *composed* fit spans (one partition across eigensolve and
    #: k-means) and the row-partitioner mode; bit-identical output, so —
    #: like eig_devices — deliberately NOT part of embedding_key
    fit_devices: int = 1
    partition_mode: str = "nnz"
    #: storage precision of the eigensolve ('fp64'/'fp32'/'fp16') — part
    #: of embedding_key: reduced embeddings are tolerance-band accurate,
    #: not bit-identical, so they must not shadow exact ones
    precision: str = "fp64"
    #: spectral embedding algorithm ('lanczos'/'power'/'compressive') —
    #: part of embedding_key for the same reason
    embedding: str = "lanczos"
    #: compressive tier: Chebyshev degree / sketch width (None = engine
    #: defaults).  Both are part of embedding_key — a different filter
    #: polynomial or sketch width is a different embedding.
    filter_order: int | None = None
    n_signals: int | None = None
    #: compressive tier: vertex sample fraction and lift mode — stage-4
    #: knobs (they act after the embedding), so NOT part of embedding_key
    sample_frac: float | None = None
    lift: str = "interp"
    kmeans_init: str = "k-means++"
    kmeans_max_iter: int = 300
    normalize_rows: bool = False
    handle_isolated: str = "remove"
    seed: int | None = 0

    # -- fault injection -------------------------------------------------
    chaos: FaultPlan | int | None = None
    no_resilience: bool = False

    def __post_init__(self) -> None:
        by_ref = self.dataset is not None
        by_graph = self.graph is not None
        by_points = self.X is not None
        if sum((by_ref, by_graph, by_points)) != 1:
            raise RequestError(
                f"request {self.request_id!r}: provide exactly one of "
                "dataset=, graph=, or X=/edges="
            )
        if by_points and self.edges is None:
            raise RequestError(
                f"request {self.request_id!r}: point input requires edges="
            )
        if self.arrival < 0:
            raise RequestError(
                f"request {self.request_id!r}: negative arrival {self.arrival}"
            )

    # ------------------------------------------------------------------
    def estimator(self, device=None) -> SpectralClustering:
        """A fresh estimator configured exactly as this request asks."""
        return SpectralClustering(
            device=device,
            n_clusters=self.n_clusters,
            similarity=self.similarity,
            sigma=self.sigma,
            operator=self.operator,
            objective=self.objective,
            m=self.m,
            eig_tol=self.eig_tol,
            eig_maxiter=self.eig_maxiter,
            eig_devices=self.eig_devices,
            fit_devices=self.fit_devices,
            partition_mode=self.partition_mode,
            precision=self.precision,
            embedding=self.embedding,
            filter_order=self.filter_order,
            n_signals=self.n_signals,
            sample_frac=self.sample_frac,
            lift=self.lift,
            kmeans_init=self.kmeans_init,
            kmeans_max_iter=self.kmeans_max_iter,
            normalize_rows=self.normalize_rows,
            handle_isolated=self.handle_isolated,
            seed=self.seed,
            chaos=self.chaos,
            resilience=DISABLED if self.no_resilience else None,
        )

    def policy(self) -> ResiliencePolicy:
        return DISABLED if self.no_resilience else ResiliencePolicy()

    def fault_plan(self) -> FaultPlan | None:
        if self.chaos is None:
            return None
        if isinstance(self.chaos, FaultPlan):
            return self.chaos
        return FaultPlan.from_seed(self.chaos)

    # ------------------------------------------------------------------
    def workload_fingerprint(self) -> str:
        """Content fingerprint of the resolved workload (graph or points).

        For by-reference requests the service resolves the dataset first
        and calls the module-level functions itself; this method covers
        the by-value forms.
        """
        if self.graph is not None:
            return graph_fingerprint(self.graph)
        if self.X is not None:
            return points_fingerprint(
                self.X, self.edges, self.similarity, self.sigma
            )
        raise RequestError(
            f"request {self.request_id!r} is by-reference; resolve the "
            "dataset before fingerprinting"
        )

    def operator_key(self, fingerprint: str) -> tuple:
        return operator_key(
            fingerprint, self.operator, self.objective, self.handle_isolated
        )

    def embedding_key(self, fingerprint: str) -> tuple:
        # canonicalize the compressive knobs so explicit-default requests
        # share a slot with engine-default ones, and non-compressive
        # requests always key (None, None)
        if self.embedding == "compressive":
            from repro.compressive.filters import (
                DEFAULT_FILTER_ORDER,
                default_n_signals,
            )

            forder = self.filter_order or DEFAULT_FILTER_ORDER
            nsig = self.n_signals or default_n_signals(self.n_clusters)
        else:
            forder = None
            nsig = None
        return embedding_key(
            fingerprint, self.operator, self.objective, self.handle_isolated,
            self.n_clusters, self.m, self.eig_tol, self.eig_maxiter,
            self.seed, self.normalize_rows,
            precision=self.precision, embedding=self.embedding,
            filter_order=forder, n_signals=nsig,
        )

    def model_key(self, fingerprint: str) -> tuple:
        """Fitted-model cache key (embedding key + k-means knobs)."""
        return model_key(
            self.embedding_key(fingerprint),
            self.kmeans_init, self.kmeans_max_iter,
        )


@dataclass
class PredictRequest:
    """One out-of-sample labeling job for the predict fast lane.

    A predict request names the *fit* whose model should serve it (the
    nested :class:`ClusterRequest` spec — its ``request_id``/``arrival``
    are ignored) plus a payload of new vertices.  Two payload forms:

    * synthetic, by reference (JSONL-serializable): ``n_new`` new
      vertices derived deterministically from the fitted model with
      ``new_seed`` — each new vertex clones the neighborhood of one
      fitted anchor (weights path for graph-input fits, feature path
      for point-input fits);
    * by value: explicit ``pairs_new`` (+ ``X_new`` or ``weights_new``)
      exactly as :meth:`FittedSpectralModel.predict` takes them.

    ``deadline`` (absolute simulated clock) and ``priority`` (higher
    serves first) order the fast lane; neither enters any cache key.
    """

    request_id: str
    fit: ClusterRequest
    arrival: float = 0.0

    # -- payload by reference (JSONL-serializable) ----------------------
    n_new: int = 8
    new_seed: int = 0

    # -- payload by value ------------------------------------------------
    X_new: np.ndarray | None = None
    pairs_new: np.ndarray | None = None
    weights_new: np.ndarray | None = None

    # -- fast-lane ordering ----------------------------------------------
    deadline: float | None = None
    priority: int = 0

    # -- fault injection (predict stage only) ----------------------------
    chaos: FaultPlan | int | None = None
    no_resilience: bool = False

    def __post_init__(self) -> None:
        by_value = self.pairs_new is not None
        if (self.X_new is not None or self.weights_new is not None) and not by_value:
            raise RequestError(
                f"predict {self.request_id!r}: X_new/weights_new require "
                "pairs_new"
            )
        if by_value and (self.X_new is None) == (self.weights_new is None):
            raise RequestError(
                f"predict {self.request_id!r}: provide exactly one of X_new "
                "or weights_new alongside pairs_new"
            )
        if not by_value and self.n_new < 1:
            raise RequestError(
                f"predict {self.request_id!r}: n_new must be >= 1"
            )
        if self.arrival < 0:
            raise RequestError(
                f"predict {self.request_id!r}: negative arrival {self.arrival}"
            )
        if self.deadline is not None and self.deadline < self.arrival:
            raise RequestError(
                f"predict {self.request_id!r}: deadline {self.deadline} "
                f"before arrival {self.arrival}"
            )

    @property
    def synthetic_payload(self) -> bool:
        return self.pairs_new is None

    def policy(self) -> ResiliencePolicy:
        return DISABLED if self.no_resilience else ResiliencePolicy()

    def fault_plan(self) -> FaultPlan | None:
        if self.chaos is None:
            return None
        if isinstance(self.chaos, FaultPlan):
            return self.chaos
        return FaultPlan.from_seed(self.chaos)

    def order_key(self) -> tuple:
        """Fast-lane dispatch order: priority first, then deadline urgency,
        then arrival (FIFO among equals)."""
        return (
            -int(self.priority),
            float("inf") if self.deadline is None else float(self.deadline),
            float(self.arrival),
            self.request_id,
        )


@dataclass
class PredictResponse:
    """The fast lane's answer to one :class:`PredictRequest`."""

    request_id: str
    status: str = STATUS_OK
    labels: np.ndarray | None = None
    embedding: np.ndarray | None = None

    # -- service facts ---------------------------------------------------
    #: the fitted model was already cached (no cold fit charged)
    model_hit: bool = False
    #: this request triggered the cold fit that populated the cache
    cold_fit: bool = False
    #: analytic transfer plan vs device meter (None = no clean device pass)
    ledger_ok: bool | None = None
    n_new: int = 0

    # -- simulated clock breakdown ---------------------------------------
    arrival: float = 0.0
    start: float = 0.0
    completed: float = 0.0
    deadline: float | None = None
    priority: int = 0

    resilience: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def latency(self) -> float:
        """End-to-end simulated seconds from arrival to completion."""
        return max(0.0, self.completed - self.arrival)

    @property
    def service_time(self) -> float:
        """Simulated seconds between dispatch and completion."""
        return max(0.0, self.completed - self.start)

    @property
    def deadline_met(self) -> bool | None:
        """None when no deadline was set or the request was not served."""
        if self.deadline is None or not self.ok:
            return None
        return self.completed <= self.deadline


@dataclass
class ClusterResponse:
    """The service's answer to one request, with observability attached."""

    request_id: str
    status: str = STATUS_OK
    #: -1-filled labels on the original node indexing (None if not served)
    labels: np.ndarray | None = None
    eigenvalues: np.ndarray | None = None
    embedding: np.ndarray | None = None

    # -- service facts ---------------------------------------------------
    cache_hit: bool = False
    batch_id: int | None = None
    batch_size: int = 0

    # -- simulated clock breakdown ---------------------------------------
    arrival: float = 0.0
    #: when the batch containing this request started forming
    batch_start: float = 0.0
    #: when this request's last stage finished on its lane
    completed: float = 0.0

    timings: StageTimings | None = None
    resilience: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def queue_wait(self) -> float:
        """Seconds between arrival and the start of the serving batch."""
        return max(0.0, self.batch_start - self.arrival)

    @property
    def latency(self) -> float:
        """End-to-end simulated seconds from arrival to completion."""
        return max(0.0, self.completed - self.arrival)

    @property
    def service_time(self) -> float:
        """Simulated seconds between batch start and completion."""
        return max(0.0, self.completed - self.batch_start)
