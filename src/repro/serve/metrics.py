"""Service-level metrics: the structured observability report.

Aggregates per-request facts (queue wait, batch size, cache hits,
latency) and scheduler facts (makespan, device occupancy) into a
:class:`ServiceReport` that renders as a fixed-width table and serializes
to JSON — the artifact the CI smoke job and the throughput bench consume.

All times are *simulated* seconds on the service clock; percentile
definitions use the nearest-rank method so reports are deterministic and
comparable across runs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.cuda.profiler import ProfileReport


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for an empty input."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class LatencyStats:
    """Distribution summary of one latency-like quantity (seconds)."""

    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def from_values(cls, values) -> "LatencyStats":
        vals = [float(v) for v in values]
        if not vals:
            return cls()
        return cls(
            mean=sum(vals) / len(vals),
            p50=percentile(vals, 50),
            p95=percentile(vals, 95),
            p99=percentile(vals, 99),
            max=max(vals),
        )

    def as_dict(self) -> dict:
        return {
            "mean": self.mean, "p50": self.p50, "p95": self.p95,
            "p99": self.p99, "max": self.max,
        }


@dataclass
class ServiceReport:
    """Everything one service run produced, aggregated."""

    n_requests: int = 0
    n_ok: int = 0
    n_rejected: int = 0
    n_failed: int = 0
    n_cache_hits: int = 0

    queue: dict = field(default_factory=dict)
    batches: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    #: fast-lane facts (empty when the trace carried no predicts)
    predict: dict = field(default_factory=dict)
    #: deadline / preemption counters (:class:`SchedulerStats`)
    scheduler: dict = field(default_factory=dict)

    latency: LatencyStats = field(default_factory=LatencyStats)
    queue_wait: LatencyStats = field(default_factory=LatencyStats)

    #: simulated completion time of the last unit of work
    makespan: float = 0.0
    #: completed (ok) requests per simulated second
    throughput_rps: float = 0.0
    #: per-device busy fraction of the makespan, in [0, 1]
    occupancy: dict = field(default_factory=dict)
    #: summed device activity (communication vs computation, Table VII axis)
    profile: ProfileReport | None = None

    #: chaos bookkeeping: requests that recovered / terminally failed
    n_degraded: int = 0

    def as_dict(self) -> dict:
        d = {
            "requests": {
                "total": self.n_requests,
                "ok": self.n_ok,
                "rejected": self.n_rejected,
                "failed": self.n_failed,
                "cache_hits": self.n_cache_hits,
                "degraded": self.n_degraded,
            },
            "queue": dict(self.queue),
            "batches": dict(self.batches),
            "cache": dict(self.cache),
            "predict": dict(self.predict),
            "scheduler": dict(self.scheduler),
            "latency_s": self.latency.as_dict(),
            "queue_wait_s": self.queue_wait.as_dict(),
            "makespan_s": self.makespan,
            "throughput_rps": self.throughput_rps,
            "occupancy": dict(self.occupancy),
        }
        if self.profile is not None:
            d["profile"] = {
                "communication_s": self.profile.communication,
                "computation_s": self.profile.computation,
                "kernel_launches": self.profile.kernel_launches,
            }
            if self.profile.allocator:
                d["profile"]["allocator"] = dict(self.profile.allocator)
            if self.profile.transfers:
                d["profile"]["transfers"] = dict(self.profile.transfers)
            if self.profile.kernels:
                d["profile"]["kernels"] = {
                    name: dict(slot)
                    for name, slot in self.profile.kernels.items()
                }
        return d

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def format_report(self) -> str:
        """Fixed-width text rendering, in the house table style."""
        lines = [
            f"{'metric':<28}{'value':>16}",
            "-" * 44,
            f"{'requests':<28}{self.n_requests:>16}",
            f"{'  ok':<28}{self.n_ok:>16}",
            f"{'  rejected':<28}{self.n_rejected:>16}",
            f"{'  failed':<28}{self.n_failed:>16}",
            f"{'  degraded (recovered)':<28}{self.n_degraded:>16}",
            f"{'cache hits':<28}{self.n_cache_hits:>16}",
            f"{'cache hit rate':<28}{self.cache.get('hit_rate', 0.0):>16.3f}",
            f"{'batches':<28}{self.batches.get('n_batches', 0):>16}",
            f"{'mean batch size':<28}{self.batches.get('mean_batch_size', 0.0):>16.2f}",
            f"{'queue max occupancy':<28}{self.queue.get('max_occupancy', 0):>16}",
            f"{'makespan (sim s)':<28}{self.makespan:>16.4f}",
            f"{'throughput (req/sim s)':<28}{self.throughput_rps:>16.2f}",
            f"{'latency p50 (sim s)':<28}{self.latency.p50:>16.4f}",
            f"{'latency p95 (sim s)':<28}{self.latency.p95:>16.4f}",
            f"{'latency p99 (sim s)':<28}{self.latency.p99:>16.4f}",
            f"{'queue wait p95 (sim s)':<28}{self.queue_wait.p95:>16.4f}",
        ]
        if self.scheduler:
            lines.extend([
                f"{'deadline misses':<28}"
                f"{self.scheduler.get('deadline_misses', 0):>16}",
                f"{'deadlines met':<28}"
                f"{self.scheduler.get('deadlines_met', 0):>16}",
                f"{'preemptions':<28}"
                f"{self.scheduler.get('preemptions', 0):>16}",
                f"{'  saved misses':<28}"
                f"{self.scheduler.get('saved_misses', 0):>16}",
                f"{'  ctx switch (sim s)':<28}"
                f"{self.scheduler.get('ctx_switch_s', 0.0):>16.6f}",
            ])
        if self.batches.get("spec_holds"):
            lines.extend([
                f"{'speculative holds':<28}"
                f"{self.batches.get('spec_holds', 0):>16}",
                f"{'  hits':<28}{self.batches.get('spec_hits', 0):>16}",
                f"{'  misses':<28}{self.batches.get('spec_misses', 0):>16}",
                f"{'  held (sim s)':<28}"
                f"{self.batches.get('spec_hold_s', 0.0):>16.4f}",
            ])
        if self.cache.get("disk_hits") or self.cache.get("disk_writes"):
            lines.extend([
                f"{'cache disk hits':<28}{self.cache.get('disk_hits', 0):>16}",
                f"{'cache disk writes':<28}"
                f"{self.cache.get('disk_writes', 0):>16}",
            ])
        if self.predict.get("total"):
            warm = self.predict.get("warm_service_s", {})
            cold = self.predict.get("cold_latency_s", {})
            lines.extend([
                f"{'predicts':<28}{self.predict.get('total', 0):>16}",
                f"{'  model hits':<28}{self.predict.get('model_hits', 0):>16}",
                f"{'  cold fits':<28}{self.predict.get('cold_fits', 0):>16}",
                f"{'  ledger mismatches':<28}"
                f"{self.predict.get('ledger_mismatches', 0):>16}",
                f"{'  deadline misses':<28}"
                f"{self.predict.get('deadline_misses', 0):>16}",
                f"{'  warm p50 (sim s)':<28}{warm.get('p50', 0.0):>16.6f}",
                f"{'  cold p50 (sim s)':<28}{cold.get('p50', 0.0):>16.6f}",
            ])
        for dev, occ in sorted(self.occupancy.items()):
            lines.append(f"{f'occupancy {dev}':<28}{occ:>16.3f}")
        if self.profile is not None:
            lines.append(
                f"{'device comm (sim s)':<28}{self.profile.communication:>16.4f}"
            )
            lines.append(
                f"{'device compute (sim s)':<28}{self.profile.computation:>16.4f}"
            )
            alloc = self.profile.allocator
            if alloc:
                lines.append(
                    f"{'alloc cache hit rate':<28}"
                    f"{alloc.get('hit_rate', 0.0):>16.3f}"
                )
                lines.append(
                    f"{'alloc bytes reserved':<28}"
                    f"{alloc.get('bytes_reserved', 0):>16}"
                )
            tr = self.profile.transfers
            if tr:
                lines.append(
                    f"{'pcie bytes moved':<28}"
                    f"{tr.get('bytes_h2d', 0) + tr.get('bytes_d2h', 0):>16}"
                )
                lines.append(
                    f"{'transfers elided':<28}"
                    f"{tr.get('transfers_elided', 0):>16}"
                )
                lines.append(
                    f"{'transfer overlap (sim s)':<28}"
                    f"{tr.get('overlap_s', 0.0):>16.4f}"
                )
            if self.profile.kernels:
                top = sorted(
                    self.profile.kernels.items(),
                    key=lambda kv: kv[1]["seconds"],
                    reverse=True,
                )[:5]
                for name, slot in top:
                    label = f"kernel {name}"[:27]
                    lines.append(
                        f"{label:<28}"
                        f"{slot['seconds']:>10.4f} x{slot['count']:>4}"
                    )
        return "\n".join(lines)


def build_report(responses, scheduler, queue_stats, batch_stats, cache_stats,
                 profile: ProfileReport | None = None) -> ServiceReport:
    """Assemble a :class:`ServiceReport` from the service's components.

    ``responses`` may mix fit (:class:`ClusterResponse`) and fast-lane
    (:class:`PredictResponse`) records; top-level counts, latency and
    throughput cover both, queue/batch/cache-hit facts are fit-only, and
    the ``predict`` section isolates the fast lane (warm service time vs
    cold-fit latency is the fit-once-predict-many win the bench gates).
    """
    from repro.serve.request import PredictResponse

    cluster = [r for r in responses if not isinstance(r, PredictResponse)]
    predicts = [r for r in responses if isinstance(r, PredictResponse)]
    ok = [r for r in cluster if r.ok]
    pok = [r for r in predicts if r.ok]
    rejected = [r for r in responses if r.status == "rejected"]
    failed = [r for r in responses if r.status == "failed"]
    makespan = scheduler.makespan()
    predict_section: dict = {}
    if predicts:
        warm = [r.service_time for r in pok if r.model_hit]
        cold = [r.latency for r in pok if r.cold_fit]
        predict_section = {
            "total": len(predicts),
            "ok": len(pok),
            "failed": len(predicts) - len(pok),
            "model_hits": sum(1 for r in pok if r.model_hit),
            "cold_fits": sum(1 for r in pok if r.cold_fit),
            "ledger_checked": sum(1 for r in pok if r.ledger_ok is not None),
            "ledger_mismatches": sum(1 for r in pok if r.ledger_ok is False),
            "with_deadline": sum(
                1 for r in predicts if r.deadline is not None
            ),
            # derived from the responses, not the scheduler counter, so
            # merged multi-service reports sum consistently (the
            # scheduler section keeps the unit-level counters, which
            # also cover failed units that burned lane time)
            "deadline_misses": sum(
                1 for r in predicts if r.deadline_met is False
            ),
            "deadlines_met": sum(
                1 for r in predicts if r.deadline_met is True
            ),
            "latency_s": LatencyStats.from_values(
                [r.latency for r in pok]
            ).as_dict(),
            "warm_service_s": LatencyStats.from_values(warm).as_dict(),
            "cold_latency_s": LatencyStats.from_values(cold).as_dict(),
        }
    all_ok = ok + pok
    return ServiceReport(
        n_requests=len(responses),
        n_ok=len(all_ok),
        n_rejected=len(rejected),
        n_failed=len(failed),
        n_cache_hits=sum(1 for r in ok if r.cache_hit)
        + sum(1 for r in pok if r.model_hit),
        n_degraded=sum(1 for r in all_ok if r.resilience),
        queue=queue_stats.as_dict(),
        batches=batch_stats.as_dict(),
        cache=cache_stats.as_dict(),
        predict=predict_section,
        scheduler=(
            scheduler.stats.as_dict()
            if getattr(scheduler, "stats", None) is not None else {}
        ),
        latency=LatencyStats.from_values([r.latency for r in all_ok]),
        queue_wait=LatencyStats.from_values([r.queue_wait for r in ok]),
        makespan=makespan,
        throughput_rps=len(all_ok) / makespan if makespan > 0 else 0.0,
        occupancy=scheduler.occupancy(),
        profile=profile,
    )


#: dict keys that summarize a high-water mark or a distribution point —
#: merged by maximum; every other numeric key is a count and sums
_MAX_KEYS = frozenset(
    {"max_occupancy", "max_batch", "mean", "p50", "p95", "p99", "max"}
)
#: ratio keys recomputed from the merged counts (never summed)
_DERIVED_KEYS = frozenset({"hit_rate", "mean_batch_size"})


def _merge_counts(dicts) -> dict:
    """Merge stat dicts: counts sum, high-water marks / percentiles max,
    derived ratios are dropped (recomputed by the caller)."""
    out: dict = {}
    for d in dicts:
        for k, v in d.items():
            if k in _DERIVED_KEYS:
                continue
            if isinstance(v, dict):
                out[k] = _merge_counts([out[k], v]) if k in out else \
                    _merge_counts([v])
            elif isinstance(v, (int, float)):
                if k in _MAX_KEYS:
                    out[k] = max(out.get(k, v), v)
                else:
                    out[k] = out.get(k, 0) + v
            else:
                out.setdefault(k, v)
    return out


def merge_service_reports(reports) -> ServiceReport:
    """Merge several :class:`ServiceReport` into one summary.

    Counts — requests, deadline misses, preemptions, speculation hits,
    cache/disk traffic — **sum**, so a fleet of serve lanes (or a
    restarted process pair) reports one consistent total instead of
    whichever scheduler's counter a caller remembered to read.  Derived
    ratios (hit rate, mean batch size) are recomputed from the merged
    counts.  Distribution summaries (latency percentiles, occupancy)
    merge as element-wise maxima — a conservative worst-lane bound, since
    pooled percentiles are not derivable from summaries.  Device
    profiles merge through
    :func:`~repro.cuda.profiler.merge_reports`.  Makespan is the max;
    throughput is total ok work over that makespan.
    """
    from repro.cuda.profiler import merge_reports as _merge_profiles

    reports = list(reports)
    if not reports:
        return ServiceReport()

    def _latency(stats_list) -> LatencyStats:
        return LatencyStats(
            mean=max(s.mean for s in stats_list),
            p50=max(s.p50 for s in stats_list),
            p95=max(s.p95 for s in stats_list),
            p99=max(s.p99 for s in stats_list),
            max=max(s.max for s in stats_list),
        )

    queue = _merge_counts([r.queue for r in reports])
    batches = _merge_counts([r.batches for r in reports])
    cache = _merge_counts([r.cache for r in reports])
    predict = _merge_counts([r.predict for r in reports if r.predict])
    sched = _merge_counts([r.scheduler for r in reports if r.scheduler])
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    if hits or misses:
        cache["hit_rate"] = hits / (hits + misses)
    if batches.get("n_batches"):
        batches["mean_batch_size"] = (
            batches.get("total_batched", 0) / batches["n_batches"]
        )
    occupancy: dict = {}
    for r in reports:
        for dev, occ in r.occupancy.items():
            occupancy[dev] = max(occupancy.get(dev, 0.0), occ)
    profiles = [r.profile for r in reports if r.profile is not None]
    makespan = max(r.makespan for r in reports)
    n_ok = sum(r.n_ok for r in reports)
    return ServiceReport(
        n_requests=sum(r.n_requests for r in reports),
        n_ok=n_ok,
        n_rejected=sum(r.n_rejected for r in reports),
        n_failed=sum(r.n_failed for r in reports),
        n_cache_hits=sum(r.n_cache_hits for r in reports),
        n_degraded=sum(r.n_degraded for r in reports),
        queue=queue,
        batches=batches,
        cache=cache,
        predict=predict,
        scheduler=sched,
        latency=_latency([r.latency for r in reports]),
        queue_wait=_latency([r.queue_wait for r in reports]),
        makespan=makespan,
        throughput_rps=n_ok / makespan if makespan > 0 else 0.0,
        occupancy=occupancy,
        profile=_merge_profiles(profiles) if profiles else None,
    )
