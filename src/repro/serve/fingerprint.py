"""Content fingerprints: the cache/batching identity of a workload.

The serving layer must decide when two requests refer to *the same*
clustering problem.  Object identity is useless across a replayed trace
(every line re-resolves its dataset), so identity is defined by content:

* :func:`graph_fingerprint` — SHA-256 over the canonical CSR form of the
  similarity graph (shape, ``indptr``, ``indices``, values).  Two graphs
  with equal sparsity pattern and equal values fingerprint equally no
  matter how they were constructed (COO entry order, duplicate
  accumulation, format).
* :func:`points_fingerprint` — the point-input analogue: SHA-256 over the
  profile matrix, the ε-edge list, and the similarity measure parameters
  (which determine the graph Algorithm 1 would build).

On top of the workload fingerprint sit two composite keys:

* :func:`operator_key` — identifies a *device operator build* (Algorithm 2
  output).  Requests with equal operator keys can share one graph upload +
  one Laplacian normalization in a micro-batch.
* :func:`embedding_key` — identifies a *spectral embedding* (Algorithm 3
  output).  This is the embedding-cache key: it adds every solver
  parameter that influences the Lanczos iteration or the eigenvector
  post-processing, so a cache hit is bit-identical to a cold solve by
  construction — the cached array was produced by the exact computation
  the key describes.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def _h64(h: "hashlib._Hash", *ints: int) -> None:
    for i in ints:
        h.update(np.int64(i).tobytes())


def graph_fingerprint(graph: COOMatrix | CSRMatrix) -> str:
    """SHA-256 content hash of a similarity graph in canonical CSR form."""
    csr = graph if isinstance(graph, CSRMatrix) else graph.to_csr()
    h = hashlib.sha256(b"repro.graph.csr.v1")
    _h64(h, csr.shape[0], csr.shape[1], csr.nnz)
    h.update(np.ascontiguousarray(csr.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.indices, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.data, dtype=np.float64).tobytes())
    return h.hexdigest()


def points_fingerprint(
    X: np.ndarray, edges: np.ndarray, measure: str, sigma: float
) -> str:
    """SHA-256 content hash of a point-input workload (Algorithm 1 inputs).

    ``sigma`` only parameterizes the exponential-decay measure; cosine and
    cross-correlation ignore it entirely, so it is canonicalized to the
    default before hashing.  A request that spells out ``sigma=2.5`` with
    ``similarity='crosscorr'`` builds the exact same graph as the default
    and must share its cache slot.
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    h = hashlib.sha256(b"repro.points.v1")
    _h64(h, X.shape[0], X.shape[1] if X.ndim > 1 else 1, edges.shape[0])
    h.update(X.tobytes())
    h.update(edges.tobytes())
    h.update(measure.encode("utf-8"))
    sigma_canon = float(sigma) if measure == "expdecay" else 1.0
    h.update(np.float64(sigma_canon).tobytes())
    return h.hexdigest()


def operator_key(
    fingerprint: str, operator: str, objective: str, handle_isolated: str
) -> tuple:
    """Batch-compatibility key: requests sharing it can share one graph
    upload + Laplacian build (stages 1-2)."""
    return (fingerprint, operator, objective, handle_isolated)


def embedding_key(
    fingerprint: str,
    operator: str,
    objective: str,
    handle_isolated: str,
    n_clusters: int,
    m: int | None,
    eig_tol: float,
    eig_maxiter: int | None,
    seed: int | None,
    normalize_rows: bool,
    precision: str = "fp64",
    embedding: str = "lanczos",
    filter_order: int | None = None,
    n_signals: int | None = None,
) -> tuple:
    """Embedding-cache key: every parameter that influences stages 1-3.

    Note ``seed`` is included because it seeds the Lanczos start vector —
    two requests with different seeds legitimately produce different
    embeddings, so they must not share a cache slot.  ``precision`` and
    ``embedding`` are included because reduced-precision and power-
    iteration embeddings are tolerance-band accurate rather than
    bit-identical — an fp16 solve must never shadow an fp64 one (unlike
    ``eig_devices``/``eig_residency``, which are bit-identical placements
    and deliberately excluded).  ``filter_order``/``n_signals`` shape the
    compressive tier's feature sketch (a different polynomial degree or
    sketch width is a different embedding); they stay ``None`` on the
    eigenvector embeddings, so compressive keys can never collide with
    exact or power keys for the same workload.  The compressive
    ``sample_frac``/``lift`` knobs are stage-4-only (they act after the
    embedding is built) and are deliberately excluded.
    """
    return (
        fingerprint, operator, objective, handle_isolated,
        int(n_clusters), m, float(eig_tol), eig_maxiter, seed,
        bool(normalize_rows), str(precision), str(embedding),
        None if filter_order is None else int(filter_order),
        None if n_signals is None else int(n_signals),
    )


def model_key(
    embedding_key: tuple, kmeans_init: str, kmeans_max_iter: int
) -> tuple:
    """Fitted-model cache key: the embedding key plus the stage-4 knobs
    that shape the centroids.

    A :class:`~repro.core.model.FittedSpectralModel` adds exactly one
    artifact on top of the embedding — the k-means centroids — so its
    identity is the embedding's identity extended by the k-means
    parameters (``seed`` is already in the embedding key and seeds the
    k-means initialization too).  Predict-side knobs (payload size,
    deadline, priority, chaos plan) are deliberately *outside* the key:
    every predict against the same fit shares one cached model.
    """
    return ("model",) + tuple(embedding_key) + (
        str(kmeans_init), int(kmeans_max_iter),
    )
