"""Admission control: the bounded request queue.

A production service must shed load *at the door* rather than letting an
unbounded backlog destroy every request's latency.  The queue admits up
to ``capacity`` waiting requests; a submission beyond that raises a typed
:class:`~repro.errors.AdmissionError` carrying capacity and occupancy, so
callers (and the replay harness) can distinguish backpressure from
failure.  Admission is evaluated at batch boundaries — the queue drains
when the batcher claims requests, so a rejection means the backlog never
dropped below capacity between the previous batch and this arrival.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import AdmissionError, ServiceError
from repro.serve.request import ClusterRequest


@dataclass
class QueueStats:
    admitted: int = 0
    rejected: int = 0
    #: high-water mark of queued requests
    max_occupancy: int = 0

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "max_occupancy": self.max_occupancy,
        }


class AdmissionQueue:
    """A bounded FIFO of :class:`ClusterRequest` with typed rejection."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ServiceError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: deque[ClusterRequest] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self):
        return iter(self._queue)

    def submit(self, request: ClusterRequest) -> None:
        """Admit one request or raise :class:`AdmissionError` when full."""
        if len(self._queue) >= self.capacity:
            self.stats.rejected += 1
            raise AdmissionError(
                f"queue full ({len(self._queue)}/{self.capacity}); "
                f"request {request.request_id!r} rejected",
                capacity=self.capacity,
                occupancy=len(self._queue),
            )
        self._queue.append(request)
        self.stats.admitted += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, len(self._queue))

    def peek(self) -> ClusterRequest:
        if not self._queue:
            raise ServiceError("peek on an empty queue")
        return self._queue[0]

    def take(self, predicate, limit: int) -> list[ClusterRequest]:
        """Remove and return up to ``limit`` queued requests satisfying
        ``predicate``, preserving FIFO order among those taken.

        The head of the queue is always eligible by construction of the
        batcher (the predicate is derived from it), so head-of-line
        blocking cannot starve: every cycle serves at least the oldest
        waiting request.
        """
        taken: list[ClusterRequest] = []
        kept: deque[ClusterRequest] = deque()
        while self._queue:
            req = self._queue.popleft()
            if len(taken) < limit and predicate(req):
                taken.append(req)
            else:
                kept.append(req)
        self._queue = kept
        return taken
