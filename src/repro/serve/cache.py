"""The LRU embedding cache.

The spectral embedding is the pipeline's expensive, reusable artifact
(Tremblay et al.'s compressive clustering makes the same observation from
the other direction): for repeat queries on the same graph with the same
solver parameters, stages 1-3 are pure recomputation.  The cache stores
:class:`~repro.core.result.EmbeddingResult` records keyed by the
embedding fingerprint (see :mod:`repro.serve.fingerprint`), so a hit
skips straight to k-means and — because the key covers every parameter
that influenced the cached arrays — returns bit-identical labels and
embeddings to a cold run.

Entries computed while a fault fired are never inserted (the service
checks the resilience record first); recovered runs are *believed*
correct, but the cache only trusts provably clean computations.

With a :class:`~repro.serve.persist.PersistentStore` attached the LRU
becomes a two-tier cache: inserts write through to disk, and a memory
miss consults the store before giving up — a *disk-warm* hit re-admits
the entry to the LRU (evicting as usual) and counts as both a hit and a
``disk_hit``.  Memory eviction never deletes the disk copy; that is the
point — warmth survives both eviction and process death.  The taint
rule extends to disk: an artifact with a non-empty resilience record is
never written (the store refuses it too).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.result import EmbeddingResult
from repro.errors import ServiceError


@dataclass
class CacheStats:
    """Counters the service report surfaces."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: bytes currently held (embedding + eigenvalues + kept per entry)
    bytes_held: int = 0
    #: hits served from the persistent store (subset of ``hits``)
    disk_hits: int = 0
    #: entries written through to the persistent store
    disk_writes: int = 0
    #: total bytes written to the persistent store
    disk_bytes_written: int = 0
    #: tainted entries the disk tier refused (memory-only residency)
    taint_skipped: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "bytes_held": self.bytes_held,
            "hit_rate": self.hit_rate,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "disk_bytes_written": self.disk_bytes_written,
            "taint_skipped": self.taint_skipped,
        }


class EmbeddingCache:
    """Bounded LRU map from embedding keys to :class:`EmbeddingResult`.

    Parameters
    ----------
    capacity:
        Maximum number of entries; 0 disables caching entirely (every
        lookup misses, every insert is dropped — the persistent tier
        included).
    store:
        Optional :class:`~repro.serve.persist.PersistentStore` backing
        tier; see the module docstring for the two-tier semantics.
    """

    def __init__(self, capacity: int = 32, store=None) -> None:
        if capacity < 0:
            raise ServiceError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.store = store
        self._entries: OrderedDict[tuple, EmbeddingResult] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def _admit(self, key: tuple, entry) -> None:
        """Insert into the LRU with full bookkeeping (evicting as needed)."""
        self._entries[key] = entry
        self.stats.insertions += 1
        self.stats.bytes_held += entry.nbytes
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.stats.bytes_held -= evicted.nbytes

    def get(self, key: tuple):
        """Look up an entry; counts a hit/miss and refreshes recency.

        A memory miss falls through to the persistent store (if any): a
        disk hit re-admits the entry to the LRU and is indistinguishable
        from a memory hit to the caller — bit-identical by the store's
        round-trip guarantee.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        if self.store is not None and self.capacity > 0:
            entry = self.store.load(key)
            if entry is not None:
                self._admit(key, entry)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return entry
        self.stats.misses += 1
        return None

    def put(self, key: tuple, emb) -> bool:
        """Insert (or refresh) an entry, evicting LRU entries over capacity.

        Returns True if the entry is resident afterwards.  With a store
        attached the insert writes through to disk — unless the entry is
        tainted (non-empty resilience record), which never leaves the
        process.
        """
        if self.capacity == 0:
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        self._admit(key, emb)
        if self.store is not None:
            if getattr(emb, "resilience", None):
                self.stats.taint_skipped += 1
            else:
                nbytes = self.store.save(key, emb)
                self.stats.disk_writes += 1
                self.stats.disk_bytes_written += nbytes
        return key in self._entries

    def clear(self) -> None:
        """Drop the in-memory tier (the persistent store is untouched)."""
        self._entries.clear()
        self.stats.bytes_held = 0
