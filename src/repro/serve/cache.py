"""The LRU embedding cache.

The spectral embedding is the pipeline's expensive, reusable artifact
(Tremblay et al.'s compressive clustering makes the same observation from
the other direction): for repeat queries on the same graph with the same
solver parameters, stages 1-3 are pure recomputation.  The cache stores
:class:`~repro.core.result.EmbeddingResult` records keyed by the
embedding fingerprint (see :mod:`repro.serve.fingerprint`), so a hit
skips straight to k-means and — because the key covers every parameter
that influenced the cached arrays — returns bit-identical labels and
embeddings to a cold run.

Entries computed while a fault fired are never inserted (the service
checks the resilience record first); recovered runs are *believed*
correct, but the cache only trusts provably clean computations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.result import EmbeddingResult
from repro.errors import ServiceError


@dataclass
class CacheStats:
    """Counters the service report surfaces."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: bytes currently held (embedding + eigenvalues + kept per entry)
    bytes_held: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "bytes_held": self.bytes_held,
            "hit_rate": self.hit_rate,
        }


class EmbeddingCache:
    """Bounded LRU map from embedding keys to :class:`EmbeddingResult`.

    Parameters
    ----------
    capacity:
        Maximum number of entries; 0 disables caching entirely (every
        lookup misses, every insert is dropped).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ServiceError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, EmbeddingResult] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> EmbeddingResult | None:
        """Look up an embedding; counts a hit/miss and refreshes recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: tuple, emb: EmbeddingResult) -> bool:
        """Insert (or refresh) an entry, evicting LRU entries over capacity.

        Returns True if the entry is resident afterwards.
        """
        if self.capacity == 0:
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        self._entries[key] = emb
        self.stats.insertions += 1
        self.stats.bytes_held += emb.nbytes
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.stats.bytes_held -= evicted.nbytes
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.stats.bytes_held = 0
