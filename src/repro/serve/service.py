"""The clustering service: admission → micro-batching → scheduling.

:class:`ClusterService` drives a replayable, discrete-event serving loop
over the simulated platform:

1. **Admission** — arrivals are admitted to a bounded
   :class:`~repro.serve.queue.AdmissionQueue` in arrival order; overflow
   gets a typed ``rejected`` response (backpressure, not failure).
   Admission is evaluated at batch boundaries: while a batch is in
   flight, newly arrived requests queue up and are admitted (or shed)
   when the service clock reaches them.
2. **Micro-batching** — the :class:`~repro.serve.batcher.MicroBatcher`
   claims the oldest request plus every compatible queued request (same
   graph fingerprint and Algorithm 2 parameters).  The batch shares one
   graph upload + Laplacian build; embedding-compatible subgroups (same
   k, solver seed, tolerances) share one Lanczos solve; every request
   runs its own k-means.
3. **Embedding cache** — before any device work, each subgroup consults
   the LRU :class:`~repro.serve.cache.EmbeddingCache`; a hit skips
   stages 1-3 entirely and is bit-identical to a cold run by
   construction of the key.  Only fault-free computations are inserted.
4. **Scheduling** — units execute through the
   :class:`~repro.serve.scheduler.StreamScheduler`, which lays their
   cost-model durations onto ``n_devices × streams_per_device`` lanes;
   latency/throughput/occupancy are read off the overlapped schedule.

Fault isolation
---------------
Each request's chaos plan is scoped to the units it *leads* (shared
stages run under the FIFO leader's plan) plus its own k-means.  When a
shared unit fails terminally, the leader gets a ``failed`` response and
the unit is retried for the remaining members without the poisoned plan —
a faulted job can therefore degrade (resilience recovers, recorded in its
response) or fail alone, but never corrupts its batch-mates' results.

The predict fast lane
---------------------
:class:`~repro.serve.request.PredictRequest` bypasses admission and
micro-batching entirely: a predict never waits for a batch to form and
is never shed by the bounded queue.  Ready predicts dispatch in
deadline/priority order (:meth:`StreamScheduler.dispatch_order`) with
``ready_at`` equal to their arrival, so an idle stream serves them while
heavy fit batches occupy the other lanes.  The fitted model is shared
through the same LRU cache as the embeddings under
:func:`~repro.serve.fingerprint.model_key` (fit identity only — predict
knobs stay outside the key): a miss charges one cold fit, every
subsequent predict against that fit pays only the Nyström extension.
A cold fit that recovered from injected faults is tainted and never
cached, exactly like the embedding-cache rule.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from repro.chaos.runtime import chaos as _chaos_scope
from repro.core.result import EmbeddingResult, StageTimings
from repro.cuda.profiler import Profiler, merge_reports
from repro.errors import AdmissionError, ClusteringError, ReproError, ServiceError
from repro.hw.spec import GPUSpec, K20C, PCIE_X16_GEN2, PCIeSpec
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.cache import EmbeddingCache
from repro.serve.metrics import ServiceReport, build_report
from repro.serve.persist import PersistentStore
from repro.serve.queue import AdmissionQueue
from repro.serve.request import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    ClusterRequest,
    ClusterResponse,
    PredictRequest,
    PredictResponse,
)
from repro.serve.scheduler import DEFAULT_CTX_SWITCH_S, StreamScheduler


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    queue_capacity: int = 64
    max_batch: int = 8
    n_devices: int = 1
    streams_per_device: int = 2
    cache_entries: int = 32
    spec: GPUSpec = K20C
    pcie: PCIeSpec = PCIE_X16_GEN2
    #: EDF preemption at stage boundaries (off = observational deadlines)
    preemption: bool = True
    #: simulated cost of one context save / restore on a preemption split
    ctx_switch_s: float = DEFAULT_CTX_SWITCH_S
    #: max simulated seconds to hold an under-full batch open when the
    #: arrival predictor expects a compatible request; 0 disables
    speculation_window: float = 0.0
    #: directory for the persistent cache tier; None keeps the cache
    #: in-process only
    cache_dir: str | None = None


@dataclass
class _OperatorBuild:
    """Stages 1-2 output shared by a batch (device-resident)."""

    dcsr: object
    shift: float
    deg_kept: np.ndarray
    kept: np.ndarray
    n_total: int
    timings: StageTimings
    resilience: dict
    profile: object

    @property
    def n(self) -> int:
        return self.dcsr.shape[0]


class ClusterService:
    """An async-style clustering service over the simulated platform.

    The service is replay-driven: :meth:`process` consumes a list of
    :class:`~repro.serve.request.ClusterRequest` (arrivals on the
    simulated clock) and returns per-request responses plus a
    :class:`~repro.serve.metrics.ServiceReport`.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.scheduler = StreamScheduler(
            n_devices=self.config.n_devices,
            streams_per_device=self.config.streams_per_device,
            spec=self.config.spec,
            pcie=self.config.pcie,
            preemption=self.config.preemption,
            ctx_switch_s=self.config.ctx_switch_s,
        )
        self.queue = AdmissionQueue(self.config.queue_capacity)
        store = (
            PersistentStore(self.config.cache_dir)
            if self.config.cache_dir is not None else None
        )
        self.cache = EmbeddingCache(self.config.cache_entries, store=store)
        self.batcher = MicroBatcher(
            self.config.max_batch,
            key_of=lambda req: req.operator_key(self._fingerprint(req)),
        )
        #: request_id -> content fingerprint (filled at admission)
        self._fps: dict[str, str] = {}
        #: request_id -> the one FaultPlan instance scoped to its units
        self._plans: dict[str, object] = {}
        #: memoized dataset resolution
        self._datasets: dict[tuple, object] = {}
        #: (dataset, scale, seed, measure, sigma) -> content fingerprint
        self._fp_by_ref: dict[tuple, str] = {}
        #: embedding key -> simulated time its cached entry became available
        self._cache_ready: dict[tuple, float] = {}
        #: response finalizers for units whose placement may still be
        #: rewritten by a preemption; run once the schedule is final
        self._deferred: list = []
        #: active speculative hold: (operator key, compatible count at
        #: hold start, hold deadline on the simulated clock)
        self._hold: tuple | None = None

    # ------------------------------------------------------------------
    # workload resolution
    # ------------------------------------------------------------------
    def _resolve(self, req: ClusterRequest):
        """``(graph, X, edges)`` for a request, loading dataset refs once."""
        if req.dataset is None:
            return req.graph, req.X, req.edges
        key = (req.dataset, req.scale, req.data_seed)
        if key not in self._datasets:
            from repro.datasets.registry import load_dataset

            self._datasets[key] = load_dataset(
                req.dataset, scale=req.scale, seed=req.data_seed
            )
        ds = self._datasets[key]
        return ds.graph, ds.points, ds.edges

    def _fingerprint_of(self, req: ClusterRequest) -> str:
        """Content fingerprint of a fit spec (memoized for dataset refs)."""
        from repro.serve.fingerprint import graph_fingerprint, points_fingerprint

        ref = None
        if req.dataset is not None:
            sigma = req.sigma if req.similarity == "expdecay" else 1.0
            ref = (req.dataset, req.scale, req.data_seed, req.similarity, sigma)
            fp = self._fp_by_ref.get(ref)
            if fp is not None:
                return fp
        graph, X, edges = self._resolve(req)
        if graph is not None:
            fp = graph_fingerprint(graph)
        else:
            fp = points_fingerprint(X, edges, req.similarity, req.sigma)
        if ref is not None:
            self._fp_by_ref[ref] = fp
        return fp

    def _fingerprint(self, req: ClusterRequest) -> str:
        fp = self._fps.get(req.request_id)
        if fp is None:
            fp = self._fingerprint_of(req)
            self._fps[req.request_id] = fp
        return fp

    def _plan(self, req: ClusterRequest):
        if req.request_id not in self._plans:
            self._plans[req.request_id] = req.fault_plan()
        return self._plans[req.request_id]

    def _scoped(self, req: ClusterRequest, fn):
        """Wrap a unit so it executes under ``req``'s chaos plan."""
        plan = self._plan(req)

        def wrapped(dev):
            scope = (
                _chaos_scope(plan) if plan is not None
                else contextlib.nullcontext()
            )
            with scope:
                return fn(dev)

        return wrapped

    # ------------------------------------------------------------------
    # speculative batch formation
    # ------------------------------------------------------------------
    def _spec_hold(self, clock: float, next_arrival: float | None):
        """Decide whether to hold the head batch open; returns the clock
        to advance to while holding, or None to dispatch now.

        Strictly causal: the decision reads only the arrival predictor's
        history (admitted arrivals so far), never the future trace.
        Advancing the clock to ``min(hold deadline, next arrival)`` is
        ordinary discrete-event stepping — the arrival merely ends the
        wait early, it does not inform the decision to wait.
        """
        window = self.config.speculation_window
        stats = self.batcher.stats
        if window <= 0.0 or self.batcher.max_batch <= 1:
            return None
        key, count = self.batcher.compatible_queued(self.queue)
        if self._hold is not None:
            hkey, hcount, hdeadline = self._hold
            if hkey != key:  # defensive: the held head was dispatched
                self._hold = None
                stats.spec_misses += 1
            elif count > hcount:
                # the prediction came true: a compatible request joined
                self._hold = None
                stats.spec_hits += 1
            elif clock >= hdeadline:
                # window expired with no compatible arrival
                self._hold = None
                stats.spec_misses += 1
            else:
                target = hdeadline
                if next_arrival is not None:
                    target = min(target, next_arrival)
                if target <= clock:
                    return None
                stats.spec_hold_s += target - clock
                return target
        if count >= self.batcher.max_batch:
            return None  # batch already full: nothing to speculate for
        predicted = self.batcher.predictor.predict_next(key, clock)
        if predicted is None or predicted > clock + window:
            return None
        stats.spec_holds += 1
        self._hold = (key, count, clock + window)
        target = clock + window
        if next_arrival is not None:
            target = min(target, next_arrival)
        if target <= clock:
            self._hold = None
            stats.spec_holds -= 1
            return None
        stats.spec_hold_s += target - clock
        return target

    # ------------------------------------------------------------------
    # the replay loop
    # ------------------------------------------------------------------
    def process(
        self, requests: list
    ) -> tuple[list, ServiceReport]:
        """Serve a full request trace; returns (responses, report).

        ``requests`` may mix :class:`ClusterRequest` (admission → batch →
        schedule) and :class:`PredictRequest` (the fast lane).  Responses
        come back in request order.  The service clock starts at 0 and
        only ever advances: to the next arrival when idle, past each
        batch's completion otherwise.  Ready predicts are always drained
        — in deadline/priority order — before the next fit batch forms.
        """
        fits = [r for r in requests if isinstance(r, ClusterRequest)]
        preds = [r for r in requests if isinstance(r, PredictRequest)]
        if len(fits) + len(preds) != len(requests):
            raise ServiceError(
                "requests must be ClusterRequest or PredictRequest instances"
            )
        # stable sorts: equal arrivals keep submission order (arrival
        # index), never request-id lexicography
        pending = sorted(fits, key=lambda r: r.arrival)
        ppending = sorted(preds, key=lambda r: r.arrival)
        seen: set[str] = set()
        for req in pending + ppending:
            if req.request_id in seen:
                raise ServiceError(f"duplicate request_id {req.request_id!r}")
            seen.add(req.request_id)
        responses: dict[str, object] = {}
        clock = 0.0
        i = j = 0
        while i < len(pending) or j < len(ppending) or self.queue:
            # fast lane first: every arrived predict dispatches before the
            # next batch forms, ordered by priority, then deadline urgency
            arrived: list[PredictRequest] = []
            while j < len(ppending) and ppending[j].arrival <= clock:
                arrived.append(ppending[j])
                j += 1
            for preq in self.scheduler.dispatch_order(arrived):
                self._serve_predict(preq, responses)
            while i < len(pending) and pending[i].arrival <= clock:
                req = pending[i]
                i += 1
                try:
                    self._fingerprint(req)  # resolve + fingerprint up front
                    self.queue.submit(req)
                    self.batcher.observe(req)
                except AdmissionError as err:
                    responses[req.request_id] = ClusterResponse(
                        request_id=req.request_id,
                        status=STATUS_REJECTED,
                        arrival=req.arrival,
                        batch_start=req.arrival,
                        completed=req.arrival,
                        error=str(err),
                    )
                except ReproError as err:
                    responses[req.request_id] = ClusterResponse(
                        request_id=req.request_id,
                        status=STATUS_FAILED,
                        arrival=req.arrival,
                        batch_start=req.arrival,
                        completed=req.arrival,
                        error=f"{type(err).__name__}: {err}",
                    )
            upcoming = []
            if i < len(pending):
                upcoming.append(pending[i].arrival)
            if j < len(ppending):
                upcoming.append(ppending[j].arrival)
            next_arrival = min(upcoming) if upcoming else None
            if not self.queue:
                if next_arrival is not None:
                    clock = max(clock, next_arrival)
                    continue
                break
            held = self._spec_hold(clock, next_arrival)
            if held is not None:
                # holding the head batch open for a predicted compatible
                # arrival: advance the clock (to the arrival or the hold
                # deadline, whichever first) and re-evaluate
                clock = held
                continue
            batch = self.batcher.form(self.queue)
            self._serve_batch(batch, clock, responses)
            # dispatch the next batch as soon as any lane frees up (or
            # immediately, if a lane is already idle) — batches are
            # independent, so a multi-stream pool drains them concurrently
            clock = max(clock, min(s.free_at for s in self.scheduler.lanes))

        # the schedule is final: no more units will be placed, so no
        # preemption can rewrite a span — finalize deferred responses
        for finalize in self._deferred:
            finalize()
        self._deferred.clear()

        ordered = [responses[r.request_id] for r in requests]
        profile = merge_reports(
            Profiler(dev).snapshot() for dev in self.scheduler.devices
        )
        report = build_report(
            ordered, self.scheduler, self.queue.stats, self.batcher.stats,
            self.cache.stats, profile,
        )
        return ordered, report

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def _fail(self, responses, req, err, batch, t_batch, completed) -> None:
        responses[req.request_id] = ClusterResponse(
            request_id=req.request_id,
            status=STATUS_FAILED,
            arrival=req.arrival,
            batch_start=t_batch,
            completed=completed,
            batch_id=batch.batch_id,
            batch_size=len(batch),
            error=f"{type(err).__name__}: {err}",
        )

    def _serve_batch(self, batch: Batch, t_batch: float, responses) -> float:
        """Serve one batch; returns the simulated completion time."""
        fp = batch.group_key[0]
        groups = batch.embedding_groups(lambda r: r.embedding_key(fp))

        # --- consult the cache per embedding group -----------------------
        cached: dict[tuple, EmbeddingResult] = {}
        misses: list[tuple] = []
        for key in groups:
            hit = self.cache.get(key)
            if hit is not None:
                cached[key] = hit
            else:
                misses.append(key)

        batch_end = t_batch
        op: _OperatorBuild | None = None
        op_unit = None
        dead: set[str] = set()

        try:
            # --- shared stages 1-2 (only if some group must solve) -------
            if misses:
                miss_members = [
                    r for key in misses for r in groups[key]
                ]
                order = {r.request_id: j for j, r in enumerate(batch.requests)}
                miss_members.sort(key=lambda r: order[r.request_id])
                while miss_members:
                    leader = miss_members[0]
                    unit = self.scheduler.run(
                        f"b{batch.batch_id}:operator",
                        ready_at=t_batch,
                        fn=self._scoped(leader, self._build_fn(leader)),
                    )
                    batch_end = max(batch_end, unit.end)
                    if unit.ok:
                        op = unit.value
                        op_unit = unit
                        break
                    self._fail(
                        responses, leader, unit.error, batch, t_batch, unit.end
                    )
                    dead.add(leader.request_id)
                    miss_members = miss_members[1:]
                if op is None:
                    # every miss-group member failed leading the build;
                    # cache-hit groups still get served below
                    misses = []

            # --- stage 3 per embedding group -----------------------------
            # a hit can piggyback on an entry whose solve is still in
            # flight on another lane: k-means then waits for availability
            ready: dict[tuple, float] = {
                key: max(t_batch, self._cache_ready.get(key, t_batch))
                for key in cached
            }
            solved: dict[tuple, EmbeddingResult] = {}
            for key in misses:
                members = [
                    r for r in groups[key] if r.request_id not in dead
                ]
                while members:
                    leader = members[0]
                    if op.n <= leader.n_clusters:
                        err = ClusteringError(
                            f"only {op.n} non-isolated nodes for "
                            f"k={leader.n_clusters} clusters"
                        )
                        self._fail(
                            responses, leader, err, batch, t_batch, op_unit.end
                        )
                        dead.add(leader.request_id)
                        members = members[1:]
                        continue
                    unit = self.scheduler.run(
                        f"b{batch.batch_id}:eigensolve[k={leader.n_clusters}]",
                        ready_at=op_unit.end,
                        fn=self._scoped(leader, self._solve_fn(leader, op)),
                        device=self.scheduler.devices[op_unit.device_index],
                        # a row-partitioned solve pins one lane per GPU it
                        # spans (gang-scheduled from a common start);
                        # composed-fit requests span fit_devices lanes
                        width=min(
                            max(1, leader.eig_devices, leader.fit_devices),
                            len(self.scheduler.lanes),
                        ),
                    )
                    batch_end = max(batch_end, unit.end)
                    if unit.ok:
                        emb = unit.value
                        solved[key] = emb
                        ready[key] = unit.end
                        if not emb.resilience and not op.resilience:
                            if self.cache.put(key, emb):
                                self._cache_ready[key] = unit.end
                        break
                    self._fail(
                        responses, leader, unit.error, batch, t_batch, unit.end
                    )
                    dead.add(leader.request_id)
                    members = members[1:]

            # --- stage 4 per request -------------------------------------
            for key, members in groups.items():
                emb = cached.get(key) or solved.get(key)
                if emb is None:
                    continue  # group never produced an embedding
                for req in members:
                    if req.request_id in dead:
                        continue
                    unit = self.scheduler.run(
                        f"b{batch.batch_id}:kmeans[{req.request_id}]",
                        ready_at=ready[key],
                        fn=self._scoped(req, self._kmeans_fn(req, emb)),
                        # the canonical preemption victim: a deadline
                        # predict may suspend it at a Lloyd-iteration
                        # boundary or jump in front of it before it starts
                        preemptible=True,
                    )
                    batch_end = max(batch_end, unit.end)
                    if not unit.ok:
                        # preemption may still shift this unit: read its
                        # end time only once the schedule is final
                        self._deferred.append(
                            lambda u=unit, r=req: self._fail(
                                responses, r, u.error, batch, t_batch, u.end
                            )
                        )
                        continue
                    km, km_timings, km_resil = unit.value
                    labels_full = np.full(emb.n_total, -1, dtype=np.int64)
                    labels_full[emb.kept] = km.labels
                    timings = StageTimings(
                        simulated=dict(emb.timings.simulated),
                        wall=dict(emb.timings.wall),
                    ) if key in solved else StageTimings()
                    timings.simulated.update(km_timings.simulated)
                    timings.wall.update(km_timings.wall)
                    resilience = dict(emb.resilience) if key in solved else {}
                    resilience.update(km_resil)

                    # results are final (arithmetic already executed), but
                    # a later preemption may still push the placement —
                    # defer only the completion-time read
                    def _finish(
                        u=unit, r=req, labels=labels_full, e=emb,
                        hit=key in cached, tm=timings, rs=resilience,
                    ):
                        responses[r.request_id] = ClusterResponse(
                            request_id=r.request_id,
                            status=STATUS_OK,
                            labels=labels,
                            eigenvalues=e.eigenvalues,
                            embedding=e.embedding,
                            cache_hit=hit,
                            batch_id=batch.batch_id,
                            batch_size=len(batch),
                            arrival=r.arrival,
                            batch_start=t_batch,
                            completed=u.end,
                            timings=tm,
                            resilience=rs,
                        )

                    self._deferred.append(_finish)
        finally:
            if op is not None:
                op.dcsr.free()
        return batch_end

    # ------------------------------------------------------------------
    # unit builders (arithmetic identical to SpectralClustering.fit)
    # ------------------------------------------------------------------
    def _build_fn(self, leader: ClusterRequest):
        graph, X, edges = self._resolve(leader)
        est = leader.estimator()
        policy = leader.policy()

        def run(dev) -> _OperatorBuild:
            prof = Profiler(dev)
            prof.start()
            timings = StageTimings()
            resil: dict = {}
            dcoo, n_total, kept = est._similarity_stage(
                dev, policy, X, edges, graph, timings, resil
            )
            try:
                dcsr, shift, deg_kept = est._operator_stage(
                    dev, policy, dcoo, timings, resil
                )
            finally:
                dcoo.free()
            return _OperatorBuild(
                dcsr=dcsr, shift=shift, deg_kept=deg_kept, kept=kept,
                n_total=n_total, timings=timings, resilience=resil,
                profile=prof.stop(),
            )

        return run

    def _solve_fn(self, leader: ClusterRequest, op: _OperatorBuild):
        est = leader.estimator()
        policy = leader.policy()

        def run(dev) -> EmbeddingResult:
            prof = Profiler(dev)
            prof.start()
            timings = StageTimings()
            resil: dict = {}
            theta, embedding, stats = est._eigensolver_stage(
                dev, policy, op.dcsr, op.shift, op.deg_kept, timings, resil,
                free_operator=False,
            )
            # fold the shared build into the group's embedding record so a
            # later cache hit reports the full provenance
            timings.simulated = {**op.timings.simulated, **timings.simulated}
            timings.wall = {**op.timings.wall, **timings.wall}
            return EmbeddingResult(
                embedding=embedding,
                eigenvalues=theta,
                kept=op.kept,
                n_total=op.n_total,
                timings=timings,
                profile=merge_reports([op.profile, prof.stop()]),
                eig_stats=stats.as_dict(),
                resilience={**op.resilience, **resil},
            )

        return run

    def _kmeans_fn(self, req: ClusterRequest, emb: EmbeddingResult):
        est = req.estimator()
        policy = req.policy()

        def run(dev):
            timings = StageTimings()
            resil: dict = {}
            km = est._kmeans_stage(dev, policy, emb.embedding, timings, resil)
            return km, timings, resil

        return run

    # ------------------------------------------------------------------
    # the predict fast lane
    # ------------------------------------------------------------------
    def _fail_predict(self, responses, preq, err, completed) -> None:
        responses[preq.request_id] = PredictResponse(
            request_id=preq.request_id,
            status=STATUS_FAILED,
            arrival=preq.arrival,
            start=preq.arrival,
            completed=completed,
            deadline=preq.deadline,
            priority=preq.priority,
            error=f"{type(err).__name__}: {err}",
        )

    def _serve_predict(self, preq: PredictRequest, responses) -> None:
        """Serve one fast-lane predict: model cache → (cold fit) → Nyström.

        The predict bypasses the admission queue and the batcher; its
        units dispatch with ``ready_at = arrival`` so an idle stream
        picks them up immediately, even while a fit batch holds the
        other lanes.
        """
        fit = preq.fit
        try:
            fp = self._fingerprint_of(fit)
            key = fit.model_key(fp)
        except ReproError as err:
            self._fail_predict(responses, preq, err, preq.arrival)
            return

        model = self.cache.get(key)
        model_hit = model is not None
        cold_fit = False
        cold_unit = None
        cold_resilience: dict = {}
        ready = preq.arrival
        if model_hit:
            # piggyback on an entry whose fit may still be in flight
            ready = max(ready, self._cache_ready.get(key, ready))
        else:
            cold_unit = self.scheduler.run(
                f"predict[{preq.request_id}]:coldfit",
                ready_at=preq.arrival,
                fn=self._scoped(preq, self._coldfit_fn(fit)),
                priority=preq.priority,
                # a cold fit suspends at its Lanczos-restart boundaries;
                # on failure nothing consumes its end time, so it stays a
                # live preemption victim — defer reading its times
                preemptible=True,
            )
            if not cold_unit.ok:
                self._deferred.append(
                    lambda u=cold_unit: self._fail_predict(
                        responses, preq, u.error, u.end
                    )
                )
                return
            result = cold_unit.value
            model = result.model
            if model is None:
                err = ClusteringError(
                    "fit parameterization has no Nyström extension "
                    "(ratiocut objective or compressive embedding)"
                )
                # the response consumes the fit's end time: freeze it
                self.scheduler.retire(cold_unit)
                self._fail_predict(responses, preq, err, cold_unit.end)
                return
            cold_fit = True
            cold_resilience = dict(result.resilience)
            # downstream work consumes the fit's end time: freeze the
            # span so no later preemption can rewrite it
            self.scheduler.retire(cold_unit)
            ready = cold_unit.end
            # taint rule: a fit that recovered from faults never caches
            if not result.resilience:
                if self.cache.put(key, model):
                    self._cache_ready[key] = cold_unit.end

        try:
            payload = self._predict_payload(preq, model)
        except ReproError as err:
            self._fail_predict(responses, preq, err, ready)
            return

        unit = self.scheduler.run(
            f"predict[{preq.request_id}]",
            ready_at=ready,
            fn=self._scoped(preq, self._predict_fn(preq, model, payload)),
            priority=preq.priority,
            deadline=preq.deadline,
            # a predict with no deadline is a final-stage unit: nothing
            # reads its times until response finalization, so an urgent
            # deadline predict may jump the queue ahead of it
            preemptible=preq.deadline is None,
            depends_on=(cold_unit,) if cold_unit is not None else (),
        )

        def _finish(
            u=unit, r=preq, hit=model_hit, cold=cold_fit, rs=cold_resilience
        ):
            if not u.ok:
                self._fail_predict(responses, r, u.error, u.end)
                return
            pres = u.value
            responses[r.request_id] = PredictResponse(
                request_id=r.request_id,
                status=STATUS_OK,
                labels=pres.labels,
                embedding=pres.embedding,
                model_hit=hit,
                cold_fit=cold,
                ledger_ok=pres.ledger_ok,
                n_new=pres.n_new,
                arrival=r.arrival,
                start=u.start,
                completed=u.end,
                deadline=r.deadline,
                priority=r.priority,
                # the cold fit's recovery record rides along: it explains
                # why the model was (not) cached and flags the response
                # degraded
                resilience={**rs, **pres.resilience},
            )

        if preq.deadline is None:
            # the placement may still shift under later preemptions —
            # finalize once the schedule is settled
            self._deferred.append(_finish)
        else:
            _finish()

    def _coldfit_fn(self, fit: ClusterRequest):
        graph, X, edges = self._resolve(fit)

        def run(dev):
            est = fit.estimator(device=dev)
            if graph is not None:
                return est.fit(graph=graph)
            return est.fit(X=X, edges=edges)

        return run

    def _predict_fn(self, preq: PredictRequest, model, payload: dict):
        policy = preq.policy()

        def run(dev):
            return model.predict(device=dev, policy=policy, **payload)

        return run

    def _predict_payload(self, preq: PredictRequest, model) -> dict:
        """Kwargs for :meth:`FittedSpectralModel.predict`.

        By-value payloads pass through.  Synthetic payloads derive
        deterministically from ``new_seed``: each new vertex clones the
        anchor neighborhood of one fitted vertex — feature rows with a
        small multiplicative jitter after a point-input fit (feature
        path), the vertex's similarity row verbatim after a graph-input
        fit (weights path).
        """
        if not preq.synthetic_payload:
            payload = {"pairs_new": preq.pairs_new}
            if preq.X_new is not None:
                payload["X_new"] = preq.X_new
            else:
                payload["weights_new"] = preq.weights_new
            return payload
        rng = np.random.default_rng(preq.new_seed)
        n_new = int(preq.n_new)
        pos = rng.integers(0, model.n_anchor, size=n_new)
        rows_l, cols_l, vals_l = [], [], []
        for i, p in enumerate(pos):
            cols_p, vals_p = model.graph.getrow(int(p))
            rows_l.append(np.full(cols_p.size, i, dtype=np.int64))
            cols_l.append(model.kept[cols_p])
            vals_l.append(vals_p)
        pairs = np.column_stack([
            np.concatenate(rows_l), np.concatenate(cols_l),
        ])
        if model.anchors is not None:
            jitter = 1.0 + 1e-4 * rng.standard_normal(
                (n_new, model.anchors.shape[1])
            )
            return {
                "X_new": model.anchors[pos] * jitter,
                "pairs_new": pairs,
                "n_new": n_new,
            }
        return {
            "weights_new": np.concatenate(vals_l),
            "pairs_new": pairs,
            "n_new": n_new,
        }


# ----------------------------------------------------------------------
# baselines and verification
# ----------------------------------------------------------------------
def run_sequential(
    requests: list[ClusterRequest],
    spec: GPUSpec = K20C,
    pcie: PCIeSpec = PCIE_X16_GEN2,
) -> tuple[list[ClusterResponse], ServiceReport]:
    """One-request-at-a-time baseline: no batching, no cache, one stream.

    Implemented as a degenerate :class:`ClusterService` (max_batch=1,
    cache disabled, one device, one stream, queue sized to the trace) so
    the arithmetic path is identical and the comparison isolates exactly
    the serving-layer levers: batching, caching, and multi-stream overlap.
    """
    service = ClusterService(ServiceConfig(
        queue_capacity=max(1, len(requests)),
        max_batch=1,
        n_devices=1,
        streams_per_device=1,
        cache_entries=0,
        spec=spec,
        pcie=pcie,
    ))
    return service.process(requests)


def verify_against_cold(
    responses: list[ClusterResponse],
    requests: list[ClusterRequest],
) -> list[str]:
    """Check every ok response against a cold single-request fit.

    Re-runs each served request through ``SpectralClustering.fit`` on a
    fresh device and compares labels and embeddings bit for bit.  Returns
    human-readable mismatch lines (empty = verified).  Requests that
    failed or were rejected in the service are skipped, as are chaos
    requests (a cold run replays the same fault schedule from a different
    site sequence, so recovery paths may legitimately differ).
    """
    by_id = {r.request_id: r for r in requests}
    service = ClusterService()  # fresh resolver for cold runs
    problems: list[str] = []
    for resp in responses:
        if not resp.ok:
            continue
        req = by_id[resp.request_id]
        if not isinstance(req, ClusterRequest):
            continue  # predict parity is audited by its transfer ledger
        if req.chaos is not None:
            continue
        graph, X, edges = service._resolve(req)
        est = req.estimator()
        cold = (
            est.fit(graph=graph) if graph is not None
            else est.fit(X=X, edges=edges)
        )
        if not np.array_equal(cold.labels, resp.labels):
            problems.append(
                f"{resp.request_id}: labels differ from cold run "
                f"(cache_hit={resp.cache_hit})"
            )
        if not np.array_equal(cold.embedding, resp.embedding):
            problems.append(
                f"{resp.request_id}: embedding differs from cold run "
                f"(cache_hit={resp.cache_hit})"
            )
    return problems
