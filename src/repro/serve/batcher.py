"""Micro-batching: coalescing compatible requests.

The batcher claims the oldest waiting request and every queued request
*compatible* with it (same operator key — same graph fingerprint and the
same Algorithm 2 parameters), up to ``max_batch``.  One graph upload +
Laplacian build then serves the whole batch; within the batch, requests
that also share an embedding key (same k/solver seed/tolerances) share a
single Lanczos solve, and every request runs its own k-means.

Compatibility is content-based (see :mod:`repro.serve.fingerprint`), so a
replayed trace in which the same dataset reference recurs batches exactly
like live traffic submitting the same in-memory graph.

Speculative batch formation
---------------------------
Plain micro-batching only coalesces requests *already queued* — on a
recurring-fingerprint workload (the trace shape
:func:`~repro.serve.traceio.synthetic_trace` models) a batch routinely
dispatches moments before the next compatible request lands.  The
:class:`ArrivalPredictor` learns each operator key's inter-arrival gap
online (mean of the most recent gaps, arrivals only — it never peeks at
the future trace); the service consults it before dispatching an
under-full batch and, when a compatible arrival is predicted inside the
configured *speculation window*, holds the batch open.  The hold's cost
is modeled honestly: the head request's queue wait grows by the full
hold, win or lose, and both outcomes are metered (``spec_hits`` /
``spec_misses`` in :class:`BatcherStats`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServiceError
from repro.serve.queue import AdmissionQueue
from repro.serve.request import ClusterRequest


@dataclass
class Batch:
    """One scheduling unit: requests sharing an operator build."""

    batch_id: int
    #: the shared (fingerprint, operator, objective, handle_isolated) key
    group_key: tuple
    requests: list[ClusterRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def embedding_groups(
        self, key_of: Callable[[ClusterRequest], tuple]
    ) -> dict[tuple, list[ClusterRequest]]:
        """Partition the batch by embedding key, preserving arrival order."""
        groups: dict[tuple, list[ClusterRequest]] = {}
        for req in self.requests:
            groups.setdefault(key_of(req), []).append(req)
        return groups


class BatcherStats:
    """Counters describing the batches formed so far."""

    def __init__(self) -> None:
        self.n_batches = 0
        self.total_batched = 0
        self.max_batch = 0
        #: speculative holds entered (a batch kept open on a prediction)
        self.spec_holds = 0
        #: holds that won: a compatible request joined before dispatch
        self.spec_hits = 0
        #: holds that lost: the window expired with no compatible arrival
        self.spec_misses = 0
        #: total simulated seconds batches were held open speculatively
        self.spec_hold_s = 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.total_batched / self.n_batches if self.n_batches else 0.0

    def as_dict(self) -> dict:
        return {
            "n_batches": self.n_batches,
            "total_batched": self.total_batched,
            "max_batch": self.max_batch,
            "mean_batch_size": self.mean_batch_size,
            "spec_holds": self.spec_holds,
            "spec_hits": self.spec_hits,
            "spec_misses": self.spec_misses,
            "spec_hold_s": self.spec_hold_s,
        }


class ArrivalPredictor:
    """Online per-key inter-arrival model (mean of recent gaps).

    Deliberately simple and strictly causal: it observes admitted
    arrival timestamps only, so a replayed trace and a live service see
    identical predictions.  ``predict_next`` answers "when is the next
    request with this key expected?" — None until two arrivals have been
    seen, and None once the prediction is already overdue (an overdue
    prediction is evidence the recurring stream ended, not a reason to
    wait).
    """

    def __init__(self, history: int = 8) -> None:
        if history < 1:
            raise ServiceError(f"history must be >= 1, got {history}")
        self.history = history
        #: key -> recent arrival timestamps (most recent last)
        self._arrivals: dict[tuple, deque] = {}

    def observe(self, key: tuple, arrival: float) -> None:
        """Record one arrival of ``key`` at simulated time ``arrival``."""
        times = self._arrivals.setdefault(
            key, deque(maxlen=self.history + 1)
        )
        times.append(float(arrival))

    def mean_gap(self, key: tuple) -> float | None:
        """Mean inter-arrival gap over the retained history, or None."""
        times = self._arrivals.get(key)
        if times is None or len(times) < 2:
            return None
        return (times[-1] - times[0]) / (len(times) - 1)

    def predict_next(self, key: tuple, now: float) -> float | None:
        """Predicted next-arrival time for ``key``, or None.

        None when there is no usable history or the predicted time is
        not in the future of ``now``.
        """
        gap = self.mean_gap(key)
        if gap is None:
            return None
        t = self._arrivals[key][-1] + gap
        return t if t > now else None


class MicroBatcher:
    """Forms head-of-line batches of operator-compatible requests.

    Parameters
    ----------
    max_batch:
        Upper bound on requests per batch (admission to a batch, not to
        the service).
    key_of:
        Maps a request to its operator key; supplied by the service,
        which owns workload resolution and fingerprinting.
    """

    def __init__(
        self, max_batch: int, key_of: Callable[[ClusterRequest], tuple]
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        self.key_of = key_of
        self.stats = BatcherStats()
        self.predictor = ArrivalPredictor()
        self._next_id = 0

    def observe(self, req: ClusterRequest) -> None:
        """Feed one admitted arrival to the arrival predictor."""
        self.predictor.observe(self.key_of(req), req.arrival)

    def compatible_queued(self, queue: AdmissionQueue) -> tuple[tuple, int]:
        """The head's operator key and how many queued requests share it."""
        key = self.key_of(queue.peek())
        return key, sum(1 for r in queue if self.key_of(r) == key)

    def form(self, queue: AdmissionQueue) -> Batch:
        """Claim the next batch from the queue (raises on an empty queue)."""
        head = queue.peek()
        key = self.key_of(head)
        requests = queue.take(
            lambda req: self.key_of(req) == key, self.max_batch
        )
        batch = Batch(batch_id=self._next_id, group_key=key, requests=requests)
        self._next_id += 1
        self.stats.n_batches += 1
        self.stats.total_batched += len(requests)
        self.stats.max_batch = max(self.stats.max_batch, len(requests))
        return batch
