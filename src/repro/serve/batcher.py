"""Micro-batching: coalescing compatible requests.

The batcher claims the oldest waiting request and every queued request
*compatible* with it (same operator key — same graph fingerprint and the
same Algorithm 2 parameters), up to ``max_batch``.  One graph upload +
Laplacian build then serves the whole batch; within the batch, requests
that also share an embedding key (same k/solver seed/tolerances) share a
single Lanczos solve, and every request runs its own k-means.

Compatibility is content-based (see :mod:`repro.serve.fingerprint`), so a
replayed trace in which the same dataset reference recurs batches exactly
like live traffic submitting the same in-memory graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServiceError
from repro.serve.queue import AdmissionQueue
from repro.serve.request import ClusterRequest


@dataclass
class Batch:
    """One scheduling unit: requests sharing an operator build."""

    batch_id: int
    #: the shared (fingerprint, operator, objective, handle_isolated) key
    group_key: tuple
    requests: list[ClusterRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def embedding_groups(
        self, key_of: Callable[[ClusterRequest], tuple]
    ) -> dict[tuple, list[ClusterRequest]]:
        """Partition the batch by embedding key, preserving arrival order."""
        groups: dict[tuple, list[ClusterRequest]] = {}
        for req in self.requests:
            groups.setdefault(key_of(req), []).append(req)
        return groups


class BatcherStats:
    """Counters describing the batches formed so far."""

    def __init__(self) -> None:
        self.n_batches = 0
        self.total_batched = 0
        self.max_batch = 0

    @property
    def mean_batch_size(self) -> float:
        return self.total_batched / self.n_batches if self.n_batches else 0.0

    def as_dict(self) -> dict:
        return {
            "n_batches": self.n_batches,
            "total_batched": self.total_batched,
            "max_batch": self.max_batch,
            "mean_batch_size": self.mean_batch_size,
        }


class MicroBatcher:
    """Forms head-of-line batches of operator-compatible requests.

    Parameters
    ----------
    max_batch:
        Upper bound on requests per batch (admission to a batch, not to
        the service).
    key_of:
        Maps a request to its operator key; supplied by the service,
        which owns workload resolution and fingerprinting.
    """

    def __init__(
        self, max_batch: int, key_of: Callable[[ClusterRequest], tuple]
    ) -> None:
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        self.key_of = key_of
        self.stats = BatcherStats()
        self._next_id = 0

    def form(self, queue: AdmissionQueue) -> Batch:
        """Claim the next batch from the queue (raises on an empty queue)."""
        head = queue.peek()
        key = self.key_of(head)
        requests = queue.take(
            lambda req: self.key_of(req) == key, self.max_batch
        )
        batch = Batch(batch_id=self._next_id, group_key=key, requests=requests)
        self._next_id += 1
        self.stats.n_batches += 1
        self.stats.total_batched += len(requests)
        self.stats.max_batch = max(self.stats.max_batch, len(requests))
        return batch
