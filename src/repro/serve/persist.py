"""The persistent cross-process cache store.

The in-process LRU (:class:`~repro.serve.cache.EmbeddingCache`) dies
with the service, so every restart pays the warm-up all over again —
one cold fit per model, one Lanczos solve per embedding group.  This
module spills cache entries to an on-disk store so a restarted process
warms from disk instead:

- **content-fingerprint keyed** — files are named by the SHA-256 of the
  canonicalized cache key (the same tuples
  :mod:`~repro.serve.fingerprint` builds, so a disk hit is bit-identical
  to a memory hit by the same argument: the key covers every parameter
  that influenced the arrays).  The full key is stored *inside* the file
  and verified on load, so a truncated hash or a foreign file can never
  alias;
- **versioned** — every file carries ``FORMAT_VERSION``; a mismatch is
  treated as a miss (and counted), never a crash, so old caches degrade
  gracefully across format changes;
- **bit-identical round-trip** — arrays are serialized with ``np.savez``
  (dtype- and byte-exact); metadata rides as canonical JSON.  What does
  *not* round-trip is documented: an embedding's device
  :class:`~repro.cuda.profiler.ProfileReport` and wall-clock timings are
  process-local observations, not results, and come back empty;
- **taint rule preserved** — an artifact whose resilience record is
  non-empty (it recovered from injected faults) is refused with a typed
  error.  The LRU already never offers one; the store double-checks.

Writes go through a temp file + ``os.replace`` so a concurrent reader
(the restarted process racing the dying one) never sees a torn file.
No pickle anywhere: only primitive arrays and JSON, so a poisoned cache
directory cannot execute code.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.result import EmbeddingResult, StageTimings
from repro.cuda.profiler import ProfileReport
from repro.errors import ServiceError
from repro.sparse.csr import CSRMatrix

#: bump when the on-disk layout changes; readers treat any other value
#: as a miss
FORMAT_VERSION = 1

_KIND_EMBEDDING = "embedding"
_KIND_MODEL = "model"

_EMBEDDING_ARRAYS = ("embedding", "eigenvalues", "kept")
_MODEL_ARRAYS = (
    "basis", "eigenvalues", "degrees", "centroids", "labels",
    "embedding", "kept", "graph_indptr", "graph_indices", "graph_data",
)


def canonical_key(key: tuple) -> str:
    """Canonical JSON for a cache key (tuples become lists, recursively).

    Cache keys are tuples of primitives by construction
    (:mod:`~repro.serve.fingerprint`), so JSON round-trips them exactly;
    the canonical string is both the hash input and the stored identity.
    """
    def conv(obj):
        if isinstance(obj, (tuple, list)):
            return [conv(o) for o in obj]
        if isinstance(obj, (str, bool)) or obj is None:
            return obj
        if isinstance(obj, (int, float, np.integer, np.floating)):
            # preserve int/float distinction; repr round-trips floats
            return obj.item() if isinstance(obj, np.generic) else obj
        raise ServiceError(
            f"cache key contains a non-serializable element: {obj!r}"
        )

    return json.dumps(conv(key), separators=(",", ":"), sort_keys=False)


def _sanitize(obj):
    """JSON-encode best-effort stats dicts (numpy scalars/arrays allowed)."""
    if isinstance(obj, dict):
        return {str(k): _sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitize(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


@dataclass
class StoreStats:
    """Counters for one store instance (surfaced via the cache stats)."""

    loads: int = 0
    saves: int = 0
    #: files rejected for format-version or key mismatch
    stale: int = 0
    #: unreadable/corrupt files skipped (treated as misses)
    errors: int = 0
    bytes_written: int = 0

    def as_dict(self) -> dict:
        return {
            "loads": self.loads,
            "saves": self.saves,
            "stale": self.stale,
            "errors": self.errors,
            "bytes_written": self.bytes_written,
        }


class PersistentStore:
    """Content-addressed npz files under one directory.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).  Safe to share
        between processes: writes are atomic renames, reads verify the
        embedded key and version.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    def path_for(self, key: tuple) -> Path:
        digest = hashlib.sha256(canonical_key(key).encode()).hexdigest()
        return self.root / f"{digest}.npz"

    def __contains__(self, key: tuple) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.npz"))

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def save(self, key: tuple, value) -> int:
        """Persist one cache entry; returns bytes written.

        ``value`` is an :class:`EmbeddingResult` or a
        :class:`~repro.core.model.FittedSpectralModel`.  Tainted
        artifacts (non-empty resilience record) are refused — recovered
        computations are *believed* correct, and this store only keeps
        provably clean ones, exactly like the in-memory cache.
        """
        from repro.core.model import FittedSpectralModel

        if getattr(value, "resilience", None):
            raise ServiceError(
                "refusing to persist a tainted artifact (non-empty "
                f"resilience record {sorted(value.resilience)})"
            )
        if isinstance(value, EmbeddingResult):
            kind = _KIND_EMBEDDING
            arrays = {name: getattr(value, name) for name in _EMBEDDING_ARRAYS}
            extra = {
                "n_total": int(value.n_total),
                "timings_simulated": _sanitize(value.timings.simulated),
                "eig_stats": _sanitize(value.eig_stats),
            }
        elif isinstance(value, FittedSpectralModel):
            kind = _KIND_MODEL
            arrays = {
                "basis": value.basis,
                "eigenvalues": value.eigenvalues,
                "degrees": value.degrees,
                "centroids": value.centroids,
                "labels": value.labels,
                "embedding": value.embedding,
                "kept": value.kept,
                "graph_indptr": value.graph.indptr,
                "graph_indices": value.graph.indices,
                "graph_data": value.graph.data,
            }
            if value.anchors is not None:
                arrays["anchors"] = value.anchors
            extra = {
                "n_total": int(value.n_total),
                "graph_shape": list(value.graph.shape),
                "params": _sanitize(value.params),
                "drift_scale": float(value.drift_scale),
                "n_refits": int(value.n_refits),
                "accumulated_drift": float(value._accumulated_drift),
                "has_anchors": value.anchors is not None,
            }
        else:
            raise ServiceError(
                f"cannot persist a {type(value).__name__}; expected "
                "EmbeddingResult or FittedSpectralModel"
            )
        meta = {
            "format": FORMAT_VERSION,
            "kind": kind,
            "key": json.loads(canonical_key(key)),
            **extra,
        }
        blob = json.dumps(meta, separators=(",", ":")).encode()
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    __meta__=np.frombuffer(blob, dtype=np.uint8),
                    **arrays,
                )
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        nbytes = path.stat().st_size
        self.stats.saves += 1
        self.stats.bytes_written += nbytes
        return nbytes

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(self, key: tuple):
        """Load one entry, or None on miss/stale/corrupt (never raises).

        The embedded key must match ``key`` exactly (content addressing
        plus verification), and the format version must be current.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                meta = json.loads(bytes(npz["__meta__"].tobytes()).decode())
                if meta.get("format") != FORMAT_VERSION:
                    self.stats.stale += 1
                    return None
                if meta.get("key") != json.loads(canonical_key(key)):
                    self.stats.stale += 1
                    return None
                kind = meta.get("kind")
                if kind == _KIND_EMBEDDING:
                    value = self._load_embedding(npz, meta)
                elif kind == _KIND_MODEL:
                    value = self._load_model(npz, meta)
                else:
                    self.stats.stale += 1
                    return None
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.stats.errors += 1
            return None
        self.stats.loads += 1
        return value

    @staticmethod
    def _load_embedding(npz, meta) -> EmbeddingResult:
        timings = StageTimings(
            simulated={
                str(k): float(v)
                for k, v in meta.get("timings_simulated", {}).items()
            },
        )
        return EmbeddingResult(
            embedding=npz["embedding"],
            eigenvalues=npz["eigenvalues"],
            kept=npz["kept"],
            n_total=int(meta["n_total"]),
            timings=timings,
            # device profile and wall timings are process-local
            # observations; a disk-warm entry reports an empty profile
            profile=ProfileReport(communication=0.0, computation=0.0),
            eig_stats=dict(meta.get("eig_stats", {})),
            resilience={},
        )

    @staticmethod
    def _load_model(npz, meta):
        from repro.core.model import FittedSpectralModel

        graph = CSRMatrix(
            indptr=npz["graph_indptr"],
            indices=npz["graph_indices"],
            data=npz["graph_data"],
            shape=tuple(meta["graph_shape"]),
            check=False,
        )
        return FittedSpectralModel(
            basis=npz["basis"],
            eigenvalues=npz["eigenvalues"],
            degrees=npz["degrees"],
            centroids=npz["centroids"],
            labels=npz["labels"],
            embedding=npz["embedding"],
            kept=npz["kept"],
            n_total=int(meta["n_total"]),
            graph=graph,
            anchors=npz["anchors"] if meta.get("has_anchors") else None,
            params=dict(meta.get("params", {})),
            resilience={},
            drift_scale=float(meta.get("drift_scale", 1.0)),
            n_refits=int(meta.get("n_refits", 0)),
            _accumulated_drift=float(meta.get("accumulated_drift", 0.0)),
        )
