"""Dataset generators reproducing Table II's workloads.

The paper evaluates on DTI (brain voxels with 90-dim connectivity
profiles), two SNAP graphs (FB, DBLP) and an SBM synthetic (Syn200).  The
real DTI volume and the SNAP downloads are unavailable offline; each
generator synthesizes a workload matched on the statistics that drive the
timings — node count, edge count, cluster count, and community structure —
as documented per-module and in DESIGN.md.

:mod:`repro.datasets.registry` names the four datasets with both
paper-scale parameters and scaled-down defaults for CI-speed benches.
"""

from repro.datasets.sbm import stochastic_block_model
from repro.datasets.dti import make_dti_volume, DTIVolume
from repro.datasets.social import make_social_graph
from repro.datasets.dblp import make_coauthor_graph
from repro.datasets.registry import (
    Dataset,
    DATASETS,
    PAPER_STATS,
    clear_dataset_cache,
    load_dataset,
)
from repro.datasets.io import (
    graph_from_snap,
    load_problem,
    read_snap_edges,
    save_problem,
)

__all__ = [
    "graph_from_snap",
    "load_problem",
    "read_snap_edges",
    "save_problem",
    "stochastic_block_model",
    "make_dti_volume",
    "DTIVolume",
    "make_social_graph",
    "make_coauthor_graph",
    "Dataset",
    "DATASETS",
    "PAPER_STATS",
    "clear_dataset_cache",
    "load_dataset",
]
