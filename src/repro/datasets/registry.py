"""Named datasets with paper-scale statistics and scaled-down defaults.

Every bench prints both axes: the *measured* workload it actually ran
(scaled down so wall-clock stays in seconds) and the *paper-scale*
parameters used by the cost-model projection.  ``PAPER_STATS`` records
Table II verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.datasets.dblp import make_coauthor_graph
from repro.datasets.dti import make_dti_volume
from repro.datasets.sbm import stochastic_block_model
from repro.datasets.social import make_social_graph
from repro.errors import DatasetError
from repro.sparse.construct import from_edge_list
from repro.sparse.coo import COOMatrix


@dataclass
class Dataset:
    """A loaded clustering problem.

    Either ``points``/``edges`` (point-cloud input, DTI-style: the pipeline
    starts at Algorithm 1) or ``graph`` (graph input: the pipeline starts
    at Algorithm 2) is populated — matching the paper's two entry points.
    """

    name: str
    n_clusters: int
    points: np.ndarray | None = None
    edges: np.ndarray | None = None
    graph: COOMatrix | None = None
    labels: np.ndarray | None = None
    #: Table II row this dataset is standing in for
    paper_stats: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        if self.graph is not None:
            return self.graph.shape[0]
        assert self.points is not None
        return self.points.shape[0]

    @property
    def n_edges(self) -> int:
        if self.graph is not None:
            return self.graph.nnz // 2
        assert self.edges is not None
        return self.edges.shape[0]


#: Table II, verbatim — plus ``sbm50k``, the compressive tier's stress
#: workload (not a Table II row): a 50K-node constant-degree SBM sized
#: past what the exact eigendecomposition benches run at full scale.
PAPER_STATS = {
    "dti": {"nodes": 142541, "edges": 3992290, "clusters": 500, "dim": 90},
    "fb": {"nodes": 4039, "edges": 88234, "clusters": 10},
    "dblp": {"nodes": 317080, "edges": 1049866, "clusters": 500},
    "syn200": {"nodes": 20000, "edges": 773388, "clusters": 200},
    "sbm50k": {"nodes": 50000, "edges": 550000, "clusters": 20},
}


def _load_dti(scale: float, seed: int) -> Dataset:
    # the paper volume is ~142K voxels ≈ an ellipsoid in a (60, 72, 60)
    # grid; scale shrinks each axis by the cube root so voxel count scales
    # linearly with `scale`
    base = np.array([60, 72, 60], dtype=np.float64)
    grid = tuple(np.maximum(6, np.round(base * scale ** (1 / 3))).astype(int))
    k = max(4, int(round(500 * scale)))
    vol = make_dti_volume(grid=grid, n_regions=k, seed=seed)
    return Dataset(
        name="dti",
        n_clusters=k,
        points=vol.profiles,
        edges=vol.edges,
        labels=vol.labels,
        paper_stats=PAPER_STATS["dti"],
    )


def _load_fb(scale: float, seed: int) -> Dataset:
    n = max(200, int(round(4039 * scale)))
    m = max(2000, int(round(88234 * scale)))
    edges, labels = make_social_graph(
        n_nodes=n, n_communities=10, target_edges=m, seed=seed
    )
    return Dataset(
        name="fb",
        n_clusters=10,
        graph=from_edge_list(edges, n_nodes=n),
        labels=labels,
        paper_stats=PAPER_STATS["fb"],
    )


def _load_dblp(scale: float, seed: int) -> Dataset:
    n = max(1000, int(round(317080 * scale)))
    m = max(3000, int(round(1049866 * scale)))
    comms = max(20, int(round(5000 * scale)))
    k = max(5, int(round(500 * scale)))
    edges, labels = make_coauthor_graph(
        n_nodes=n, n_communities=comms, target_edges=m, seed=seed
    )
    return Dataset(
        name="dblp",
        n_clusters=k,
        graph=from_edge_list(edges, n_nodes=n),
        labels=labels,
        paper_stats=PAPER_STATS["dblp"],
    )


def _load_syn200(scale: float, seed: int) -> Dataset:
    n = max(400, int(round(20000 * scale)))
    k = max(4, int(round(200 * scale)))
    sizes = np.full(k, n // k, dtype=np.int64)
    sizes[: n % k] += 1
    edges, labels = stochastic_block_model(
        sizes, p_in=0.3, p_out=0.01, rng=np.random.default_rng(seed)
    )
    return Dataset(
        name="syn200",
        n_clusters=k,
        graph=from_edge_list(edges, n_nodes=n),
        labels=labels,
        paper_stats=PAPER_STATS["syn200"],
    )


def _load_sbm50k(scale: float, seed: int) -> Dataset:
    # constant-degree regime: per-node in/out degrees stay ~16/6 at every
    # scale (like the real graphs), so edges grow linearly with n and the
    # spectral gap stays scale-independent — the point of this workload
    # is the n-axis, not the density
    n = max(1000, int(round(50000 * scale)))
    k = 20
    sizes = np.full(k, n // k, dtype=np.int64)
    sizes[: n % k] += 1
    p_in = min(1.0, 16.0 / max(1, n // k))
    p_out = min(1.0, 6.0 / max(1, n - n // k))
    edges, labels = stochastic_block_model(
        sizes, p_in=p_in, p_out=p_out, rng=np.random.default_rng(seed)
    )
    return Dataset(
        name="sbm50k",
        n_clusters=k,
        graph=from_edge_list(edges, n_nodes=n),
        labels=labels,
        paper_stats=PAPER_STATS["sbm50k"],
    )


DATASETS: dict[str, Callable[[float, int], Dataset]] = {
    "dti": _load_dti,
    "fb": _load_fb,
    "dblp": _load_dblp,
    "syn200": _load_syn200,
    "sbm50k": _load_sbm50k,
}


#: memoized (name, scale, seed) -> Dataset — generation is deterministic
#: in these three, and regenerating sbm50k dominates bench wall time when
#: several bench scripts run in one process
_CACHE: dict[tuple, Dataset] = {}


def load_dataset(name: str, scale: float = 0.1, seed: int = 0) -> Dataset:
    """Load a named Table II workload at the given scale.

    Generation is memoized per ``(name, scale, seed)`` for the lifetime
    of the process: every workload here is produced deterministically
    from those three values, so repeated loads (bench scripts sharing a
    pytest process, serve traces cycling the same dataset) return the
    same :class:`Dataset` object instead of regenerating it.  Callers
    must treat the record as read-only; :func:`clear_dataset_cache`
    drops the memo.

    Parameters
    ----------
    name:
        'dti', 'fb', 'dblp', 'syn200' or 'sbm50k'.
    scale:
        Linear size factor relative to the paper's workload (1.0 = paper
        scale; benches default to ~0.05-0.2 so a run takes seconds).
    """
    try:
        loader = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from None
    if not 0 < scale <= 1.0:
        raise DatasetError(f"scale must be in (0, 1], got {scale}")
    key = (name, float(scale), int(seed))
    ds = _CACHE.get(key)
    if ds is None:
        ds = loader(scale, seed)
        _CACHE[key] = ds
    return ds


def clear_dataset_cache() -> None:
    """Drop every memoized dataset (tests that mutate records use this)."""
    _CACHE.clear()
