"""DBLP-like co-authorship graph generator.

The paper's DBLP dataset (SNAP com-DBLP) has 317,080 nodes and 1,049,866
edges — a very sparse graph (mean degree ≈ 6.6) with >5,000 small, tight
communities, clustered with k=500 "for experimental purposes".

Offline substitute: many small communities with heavy-tailed sizes; inside
a community, authors co-publish densely (papers are cliques of 2-5
authors, approximated by a high within-community edge probability on small
blocks); a sparse random background supplies the cross-community
collaborations.  Matched statistics: n, m, mean degree, community
granularity.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.sbm import stochastic_block_model
from repro.errors import DatasetError


def make_coauthor_graph(
    n_nodes: int = 317080,
    n_communities: int = 5000,
    target_edges: int = 1049866,
    mix: float = 0.08,
    size_tail: float = 2.2,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a DBLP-like sparse community graph.

    Parameters
    ----------
    n_nodes, n_communities, target_edges:
        Size parameters (defaults = the paper's Table II values).
    mix:
        Fraction of edges crossing communities.
    size_tail:
        Pareto tail exponent of community sizes (smaller = heavier tail).

    Returns
    -------
    (edges, labels):
        ``i < j`` edge pairs and ground-truth community labels.
    """
    if n_communities <= 0 or n_nodes < n_communities:
        raise DatasetError(
            f"need 0 < n_communities <= n_nodes, got {n_communities}, {n_nodes}"
        )
    rng = np.random.default_rng(seed)

    # heavy-tailed community sizes, minimum 2 (a paper has >= 2 authors)
    raw = rng.pareto(size_tail, size=n_communities) + 1.0
    sizes = np.maximum(2, np.round(raw / raw.sum() * n_nodes)).astype(np.int64)
    # adjust to the exact node total by trimming/padding the largest blocks
    diff = int(n_nodes - sizes.sum())
    order = np.argsort(sizes)[::-1]
    i = 0
    while diff != 0 and i < 10 * n_communities:
        b = order[i % n_communities]
        step = 1 if diff > 0 else -1
        if sizes[b] + step >= 2:
            sizes[b] += step
            diff -= step
        i += 1
    if diff != 0:
        raise DatasetError("failed to fit community sizes to the node total")

    within_pairs = float((sizes * (sizes - 1) // 2).sum())
    cross_pairs = float(n_nodes * (n_nodes - 1) // 2 - within_pairs)
    p_in = min(1.0, target_edges * (1.0 - mix) / max(within_pairs, 1.0))
    p_out = min(1.0, target_edges * mix / max(cross_pairs, 1.0))

    return stochastic_block_model(sizes, p_in=p_in, p_out=p_out, rng=rng)
