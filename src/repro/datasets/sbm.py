"""Stochastic block model generator (Syn200, paper §V.A).

"The synthetic sparse graph is randomly generated such that two nodes are
connected with probability p = 0.3 if they are within the same cluster and
q = 0.01 if they are in different clusters."  The generator supports both
that two-parameter form and a full r×r inter-community probability matrix
P (the general model of Karrer & Newman the paper cites).

Edges are sampled without materializing the O(n²) Bernoulli field: for
every block pair the edge *count* is drawn from the exact Binomial, then
that many distinct pair slots are chosen uniformly — identical in
distribution, linear in the output size.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def _sample_pairs_within(
    nodes: np.ndarray, p: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample undirected pairs inside one block with edge probability p."""
    s = nodes.size
    n_pairs = s * (s - 1) // 2
    if n_pairs == 0 or p <= 0:
        return np.empty((0, 2), dtype=np.int64)
    m = rng.binomial(n_pairs, min(p, 1.0))
    if m == 0:
        return np.empty((0, 2), dtype=np.int64)
    flat = rng.choice(n_pairs, size=m, replace=False)
    # invert the triangular index: pair t -> (i, j), i < j
    i = (np.floor((2 * s - 1 - np.sqrt((2 * s - 1) ** 2 - 8.0 * flat)) / 2)).astype(
        np.int64
    )
    offset = flat - (i * (2 * s - i - 1)) // 2
    j = i + 1 + offset
    return np.column_stack([nodes[i], nodes[j]])


def _sample_pairs_between(
    a: np.ndarray, b: np.ndarray, q: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample pairs between two disjoint blocks with edge probability q."""
    n_pairs = a.size * b.size
    if n_pairs == 0 or q <= 0:
        return np.empty((0, 2), dtype=np.int64)
    m = rng.binomial(n_pairs, min(q, 1.0))
    if m == 0:
        return np.empty((0, 2), dtype=np.int64)
    flat = rng.choice(n_pairs, size=m, replace=False)
    return np.column_stack([a[flat // b.size], b[flat % b.size]])


def stochastic_block_model(
    sizes: np.ndarray | list[int],
    p_in: float | None = None,
    p_out: float | None = None,
    P: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate an SBM graph.

    Parameters
    ----------
    sizes:
        Community sizes ``C_1 … C_r``.
    p_in, p_out:
        Two-parameter form: within-community probability ``p`` /
        cross-community probability ``q`` (the Syn200 configuration is
        ``p=0.3, q=0.01``).
    P:
        Alternatively, a full symmetric ``r × r`` probability matrix
        (diagonal = within-community).
    rng:
        Seeded generator for reproducibility.

    Returns
    -------
    (edges, labels):
        Deduplicated ``i < j`` edge pairs and the ground-truth community
        label per node.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.ndim != 1 or np.any(sizes <= 0):
        raise DatasetError(f"sizes must be positive ints, got {sizes}")
    r = sizes.size
    if P is not None:
        P = np.asarray(P, dtype=np.float64)
        if P.shape != (r, r):
            raise DatasetError(f"P must be {r}x{r}, got {P.shape}")
        if not np.allclose(P, P.T):
            raise DatasetError("P must be symmetric")
        if np.any(P < 0) or np.any(P > 1):
            raise DatasetError("P entries must be probabilities in [0, 1]")
    else:
        if p_in is None or p_out is None:
            raise DatasetError("provide either (p_in, p_out) or a full P matrix")
        if not (0 <= p_in <= 1 and 0 <= p_out <= 1):
            raise DatasetError(f"probabilities out of range: p={p_in}, q={p_out}")
        P = np.full((r, r), p_out)
        np.fill_diagonal(P, p_in)
    rng = np.random.default_rng() if rng is None else rng

    bounds = np.concatenate(([0], np.cumsum(sizes)))
    blocks = [np.arange(bounds[i], bounds[i + 1]) for i in range(r)]
    labels = np.repeat(np.arange(r, dtype=np.int64), sizes)

    chunks: list[np.ndarray] = []
    for a in range(r):
        w = _sample_pairs_within(blocks[a], float(P[a, a]), rng)
        if w.size:
            chunks.append(w)
        for b in range(a + 1, r):
            x = _sample_pairs_between(blocks[a], blocks[b], float(P[a, b]), rng)
            if x.size:
                chunks.append(x)
    if chunks:
        edges = np.concatenate(chunks)
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        edges = np.column_stack([lo, hi])
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return edges, labels
