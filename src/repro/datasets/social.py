"""FB-like social graph generator.

The paper's FB dataset (SNAP ego-Facebook) has 4,039 nodes, 88,234 edges
and is clustered into k=10 communities.  Offline substitute: a degree-
heterogeneous SBM — community sizes drawn from a geometric progression
(ego networks differ widely in size) and within-community density chosen
to land on the target edge count, matching n, m, k and the strong
community structure that makes the 10-cluster spectral problem easy.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.sbm import stochastic_block_model
from repro.errors import DatasetError


def make_social_graph(
    n_nodes: int = 4039,
    n_communities: int = 10,
    target_edges: int = 88234,
    mix: float = 0.03,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate an FB-like community graph.

    Parameters
    ----------
    n_nodes, n_communities, target_edges:
        Size parameters (defaults are the paper's Table II values).
    mix:
        Fraction of edge mass placed across communities (small: ego
        networks are dense internally, sparsely bridged).

    Returns
    -------
    (edges, labels):
        ``i < j`` edge pairs and ground-truth community labels.
    """
    if n_communities <= 0 or n_nodes < n_communities:
        raise DatasetError(
            f"need 0 < n_communities <= n_nodes, got {n_communities}, {n_nodes}"
        )
    if not 0 <= mix < 1:
        raise DatasetError(f"mix must be in [0, 1), got {mix}")
    rng = np.random.default_rng(seed)

    # geometric size spread (ratio ~2 between largest and smallest deciles)
    raw = np.geomspace(1.0, 2.5, n_communities)
    sizes = np.maximum(1, np.round(raw / raw.sum() * n_nodes)).astype(np.int64)
    sizes[-1] += n_nodes - sizes.sum()  # exact total

    # within-community pair budget determines p_in for the edge target
    within_pairs = float((sizes * (sizes - 1) // 2).sum())
    cross_pairs = float(n_nodes * (n_nodes - 1) // 2 - within_pairs)
    e_within = target_edges * (1.0 - mix)
    e_cross = target_edges * mix
    p_in = min(1.0, e_within / max(within_pairs, 1.0))
    p_out = min(1.0, e_cross / max(cross_pairs, 1.0))

    return stochastic_block_model(sizes, p_in=p_in, p_out=p_out, rng=rng)
