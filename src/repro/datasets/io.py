"""Dataset file I/O: SNAP-format edge lists and NPZ problem bundles.

The paper's FB and DBLP graphs ship from SNAP as whitespace-separated
edge-list text files (``# comment`` headers, one ``u v`` pair per line).
:func:`read_snap_edges` loads exactly that format, so a user with the real
downloads can run the pipeline on them verbatim; :func:`save_problem` /
:func:`load_problem` round-trip a complete clustering problem (graph or
point data + labels) through a single ``.npz`` for reproducible runs.
"""

from __future__ import annotations

import io
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.datasets.registry import Dataset
from repro.errors import DatasetError
from repro.sparse.construct import from_edge_list
from repro.sparse.coo import COOMatrix


def read_snap_edges(
    path: str | os.PathLike | io.TextIOBase,
    relabel: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Read a SNAP-style edge list.

    Parameters
    ----------
    path:
        File path or open text handle.  Lines starting with ``#`` are
        comments; each data line holds two integer node ids (any
        whitespace separator).
    relabel:
        Compact arbitrary node ids to ``0..n-1`` (SNAP ids are sparse).

    Returns
    -------
    (edges, original_ids):
        ``(nnz, 2)`` int64 edge array, plus the original id of each
        compacted node (None when ``relabel=False``).
    """
    close = False
    if isinstance(path, (str, os.PathLike)):
        fh = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        pairs = []
        for lineno, line in enumerate(fh, 1):
            s = line.strip()
            if not s or s.startswith("#"):
                continue
            parts = s.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"malformed edge line {lineno}: {line.rstrip()!r}"
                )
            try:
                pairs.append((int(parts[0]), int(parts[1])))
            except ValueError:
                raise DatasetError(
                    f"non-integer node id on line {lineno}: {line.rstrip()!r}"
                ) from None
    finally:
        if close:
            fh.close()
    if not pairs:
        return np.empty((0, 2), dtype=np.int64), (
            np.empty(0, dtype=np.int64) if relabel else None
        )
    edges = np.asarray(pairs, dtype=np.int64)
    if not relabel:
        if edges.min() < 0:
            raise DatasetError("negative node id without relabeling")
        return edges, None
    ids, inverse = np.unique(edges, return_inverse=True)
    return inverse.reshape(edges.shape), ids


def save_problem(path: str | os.PathLike, ds: Dataset) -> None:
    """Serialize a :class:`~repro.datasets.registry.Dataset` to ``.npz``."""
    payload: dict = {
        "name": np.array(ds.name),
        "n_clusters": np.array(ds.n_clusters),
    }
    if ds.labels is not None:
        payload["labels"] = ds.labels
    if ds.graph is not None:
        payload["graph_row"] = ds.graph.row
        payload["graph_col"] = ds.graph.col
        payload["graph_val"] = ds.graph.data
        payload["graph_n"] = np.array(ds.graph.shape[0])
    if ds.points is not None:
        payload["points"] = ds.points
        assert ds.edges is not None
        payload["edges"] = ds.edges
    np.savez_compressed(path, **payload)


def load_problem(path: str | os.PathLike) -> Dataset:
    """Load a problem written by :func:`save_problem`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such problem file: {path}")
    try:
        z = np.load(path, allow_pickle=False)
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise DatasetError(f"not a valid problem file: {path} ({exc})") from exc
    with z:
        try:
            name = str(z["name"])
            k = int(z["n_clusters"])
            labels = z["labels"] if "labels" in z else None
            graph = None
            points = None
            edges = None
            if "graph_row" in z:
                n = int(z["graph_n"])
                graph = COOMatrix(
                    z["graph_row"], z["graph_col"], z["graph_val"], (n, n)
                )
            if "points" in z:
                points = z["points"]
                edges = z["edges"]
        except KeyError as exc:
            raise DatasetError(
                f"problem file {path} is missing required array {exc}"
            ) from exc
        except (ValueError, TypeError) as exc:
            raise DatasetError(
                f"problem file {path} holds malformed arrays: {exc}"
            ) from exc
    return Dataset(
        name=name, n_clusters=k, points=points, edges=edges,
        graph=graph, labels=labels,
    )


def graph_from_snap(
    path: str | os.PathLike | io.TextIOBase,
) -> COOMatrix:
    """One-call loader: SNAP edge list → symmetric adjacency COO."""
    edges, _ = read_snap_edges(path)
    n = int(edges.max()) + 1 if edges.size else 0
    return from_edge_list(edges, n_nodes=n)
