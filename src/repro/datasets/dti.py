"""Synthetic Diffusion Tensor Imaging (DTI) workload.

The paper's DTI dataset is proprietary clinical data (NKI): 142,541 brain
voxels on a 2 mm grid, each carrying a 90-dimensional connectivity profile
(strength to 90 grey-matter regions), plus an edge list of all voxel pairs
within 4 mm.  The task clusters voxels with similar profiles.

This generator reproduces the workload's *shape*:

* voxels fill an axis-aligned 3-D grid at ``voxel_mm`` spacing (masked to
  an ellipsoid so the volume is brain-like rather than a cube);
* ground-truth parcels are grown from ``n_regions`` random seeds by
  nearest-seed assignment — spatially contiguous regions, like anatomy;
* each parcel has a random 90-dim prototype profile; a voxel's profile is
  its parcel prototype plus isotropic noise (``noise`` controls how hard
  the recovery problem is);
* the edge list contains every pair within ``radius_mm`` (default 4 mm),
  enumerated with the uniform-grid index.

The exercised code path — points → ε-edge list → cross-correlation COO
graph → eigensolver → k-means — is exactly the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.graph.neighbors import epsilon_neighbors_grid


@dataclass
class DTIVolume:
    """A synthetic DTI clustering problem.

    Attributes
    ----------
    positions:
        ``(n, 3)`` voxel centers in millimetres.
    profiles:
        ``(n, d)`` connectivity profiles (the matrix X of Algorithm 1).
    edges:
        ``(nnz, 2)`` voxel pairs within the spatial radius, ``i < j``.
    labels:
        Ground-truth parcel of each voxel.
    n_regions:
        Number of parcels (the clustering target k).
    """

    positions: np.ndarray
    profiles: np.ndarray
    edges: np.ndarray
    labels: np.ndarray
    n_regions: int

    @property
    def n(self) -> int:
        return self.positions.shape[0]

    @property
    def d(self) -> int:
        return self.profiles.shape[1]


def make_dti_volume(
    grid: tuple[int, int, int] = (16, 16, 16),
    n_regions: int = 32,
    profile_dim: int = 90,
    voxel_mm: float = 2.0,
    radius_mm: float = 4.0,
    noise: float = 0.35,
    seed: int | None = 0,
) -> DTIVolume:
    """Generate a synthetic DTI volume (paper-scale: grid ≈ (60, 72, 60)
    masked → 142K voxels, ``n_regions=500``).

    Parameters
    ----------
    grid:
        Voxel grid dimensions before masking.
    n_regions:
        Ground-truth parcel count.
    profile_dim:
        Connectivity profile dimension (90 in the paper).
    voxel_mm, radius_mm:
        Grid spacing and ε-neighborhood radius (2 mm / 4 mm in the paper).
    noise:
        Std of the isotropic noise added to prototypes (prototypes are
        unit-scale); higher = harder recovery.
    """
    if n_regions <= 0 or profile_dim <= 0:
        raise DatasetError("n_regions and profile_dim must be positive")
    rng = np.random.default_rng(seed)
    nx, ny, nz = grid
    if min(nx, ny, nz) < 2:
        raise DatasetError(f"grid too small: {grid}")

    ii, jj, kk = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    pos = np.column_stack([ii.ravel(), jj.ravel(), kk.ravel()]).astype(np.float64)
    # ellipsoid mask centred in the grid ("brain-like" volume)
    center = (np.array(grid) - 1) / 2.0
    radii = np.maximum(np.array(grid) / 2.0, 1.0)
    inside = (((pos - center) / radii) ** 2).sum(axis=1) <= 1.0
    pos = pos[inside] * voxel_mm
    n = pos.shape[0]
    if n < n_regions:
        raise DatasetError(
            f"grid yields only {n} voxels for {n_regions} regions; enlarge it"
        )

    # spatially contiguous ground truth: nearest of n_regions seed voxels
    seeds = rng.choice(n, size=n_regions, replace=False)
    d2 = ((pos[:, None, :] - pos[seeds][None, :, :]) ** 2).sum(axis=2)
    labels = np.argmin(d2, axis=1).astype(np.int64)

    prototypes = rng.standard_normal((n_regions, profile_dim))
    prototypes /= np.linalg.norm(prototypes, axis=1, keepdims=True)
    profiles = prototypes[labels] + noise * rng.standard_normal((n, profile_dim))

    edges = epsilon_neighbors_grid(pos, radius_mm)
    return DTIVolume(
        positions=pos,
        profiles=profiles,
        edges=edges,
        labels=labels,
        n_regions=n_regions,
    )
