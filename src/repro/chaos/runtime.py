"""Plan installation and the site-side hook.

The simulated runtime calls :func:`chaos_check` at every fault site; with
no plan installed this is a near-free early return, so the chaos subsystem
costs nothing when unused.  A plan is installed process-wide with
:func:`install_plan` or, preferably, scoped with the :func:`chaos` context
manager::

    plan = FaultPlan([FaultSpec("cusparse.csrmv", "transient", nth=3)])
    with chaos(plan):
        result = SpectralClustering(k).fit(graph=W)
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.chaos.plan import FaultPlan

_active: FaultPlan | None = None


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (``None`` disables injection)."""
    global _active
    _active = plan


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _active


@contextlib.contextmanager
def chaos(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block (re-entrant)."""
    global _active
    prev = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = prev


def chaos_check(site: str, device=None, nbytes: int = 0) -> None:
    """Consult the active plan at one fault site (no-op without a plan).

    Parameters
    ----------
    site:
        Canonical site name (see :data:`~repro.chaos.plan.KNOWN_SITES`).
    device:
        The :class:`~repro.cuda.device.Device` at the site, used to read
        the current pipeline-stage tag for stage-scoped fault rules.
    nbytes:
        Bytes moved/allocated by this call, feeding byte-threshold
        triggers.
    """
    plan = _active
    if plan is None:
        return
    stage = ""
    if device is not None:
        stage = device.timeline._tag
    plan.check(site, stage=stage, nbytes=nbytes)
