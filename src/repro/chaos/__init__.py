"""``repro.chaos`` — deterministic fault injection and resilience policies.

The simulated CUDA runtime consults the active :class:`FaultPlan` at every
allocation, transfer, kernel-launch and library-call site; the pipeline's
resilience layer (retry-with-backoff, OOM degradation, CPU fallback,
eigensolver checkpoint/restart) turns those faults into recoveries instead
of lost runs.  See ``docs/fault_injection.md`` for the full model.
"""

from repro.chaos.plan import (
    FAULT_ERRORS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    KNOWN_SITES,
)
from repro.chaos.retry import (
    DISABLED,
    ResiliencePolicy,
    TRANSIENT_ERRORS,
    with_retry,
)
from repro.chaos.runtime import active_plan, chaos, chaos_check, install_plan

__all__ = [
    "FAULT_ERRORS",
    "KNOWN_SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "ResiliencePolicy",
    "DISABLED",
    "TRANSIENT_ERRORS",
    "with_retry",
    "active_plan",
    "chaos",
    "chaos_check",
    "install_plan",
]
