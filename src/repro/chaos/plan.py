"""Deterministic fault plans: what fails, where, and when.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules consulted by the
simulated CUDA runtime at every *fault site* (allocation, transfer, kernel
launch, library call).  Each rule names

* a **site pattern** — an ``fnmatch`` glob over site names such as
  ``cuda.alloc``, ``cuda.h2d``, ``cuda.kernel:compute_similarity``,
  ``cusparse.csrmv`` or ``cublas.gemm``;
* an optional **stage pattern** matched against the device's current
  timeline tag (``similarity``, ``laplacian``, ``eigensolver``,
  ``kmeans``) so a fault can be aimed at one pipeline phase;
* a **fault type** — ``oom`` (:class:`~repro.errors.DeviceMemoryError`),
  ``transfer`` (:class:`~repro.errors.TransferError`) or ``transient``
  (:class:`~repro.errors.TransientKernelError`);
* a **trigger** — exactly one of ``nth`` (fire on the N-th matching call),
  ``prob`` (per-call probability from a spec-local seeded RNG) or
  ``after_bytes`` (fire once the cumulative bytes through matching sites
  cross a threshold).

Plans are *deterministic*: the same specs and seed produce the same fault
schedule against the same workload, which is what makes chaos runs
reproducible and lets tests assert that two faulted runs agree bit-for-bit.
Every fired fault is appended to :attr:`FaultPlan.log`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

import numpy as np

from repro.errors import (
    ChaosError,
    DeviceMemoryError,
    TransferError,
    TransientKernelError,
)

#: fault type -> exception class raised at the site
FAULT_ERRORS = {
    "oom": DeviceMemoryError,
    "transfer": TransferError,
    "transient": TransientKernelError,
}

#: the canonical site names the runtime consults (kernel sites are
#: parameterized by kernel name: ``cuda.kernel:<name>``)
KNOWN_SITES = (
    "cuda.alloc",
    "cuda.h2d",
    "cuda.d2h",
    "cuda.p2p",
    "cuda.kernel:*",
    "cuda.stream.sync",
    "cuda.stream.event",
    "cusparse.csrmv",
    "cusparse.coomv",
    "cusparse.ellmv",
    "cusparse.hybmv",
    "cusparse.csrmm",
    "cusparse.ellmm",
    "cusparse.hybmm",
    "cusparse.csr2ell",
    "cusparse.csr2hyb",
    "cublas.*",
    "compressive.filter",
    "compressive.gather",
    "compressive.solve",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: site pattern × fault type × trigger.

    Exactly one of ``nth``, ``prob``, ``after_bytes`` must be set.
    ``max_fires`` caps how often the rule fires (``None`` = unlimited);
    the default of 1 models a one-off hiccup, which is the retryable case.
    """

    site: str
    fault: str
    nth: int | None = None
    prob: float | None = None
    after_bytes: int | None = None
    max_fires: int | None = 1
    stage: str | None = None

    def __post_init__(self) -> None:
        if self.fault not in FAULT_ERRORS:
            raise ChaosError(
                f"unknown fault type {self.fault!r}; "
                f"expected one of {sorted(FAULT_ERRORS)}"
            )
        triggers = [t for t in (self.nth, self.prob, self.after_bytes) if t is not None]
        if len(triggers) != 1:
            raise ChaosError(
                "exactly one trigger (nth, prob, after_bytes) must be set, "
                f"got {len(triggers)} on site {self.site!r}"
            )
        if self.nth is not None and self.nth < 1:
            raise ChaosError(f"nth trigger must be >= 1, got {self.nth}")
        if self.prob is not None and not 0.0 < self.prob <= 1.0:
            raise ChaosError(f"prob trigger must be in (0, 1], got {self.prob}")
        if self.after_bytes is not None and self.after_bytes < 0:
            raise ChaosError(f"after_bytes must be >= 0, got {self.after_bytes}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ChaosError(f"max_fires must be >= 1 or None, got {self.max_fires}")

    def matches(self, site: str, stage: str) -> bool:
        """Whether this rule applies to a call at ``site`` in ``stage``."""
        if not fnmatchcase(site, self.site):
            return False
        if self.stage is not None and not fnmatchcase(stage, self.stage):
            return False
        return True


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: the concrete site, the rule, and the call count."""

    site: str
    stage: str
    fault: str
    spec_index: int
    call_index: int


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Parameters
    ----------
    specs:
        The fault rules, consulted in order at every site.
    seed:
        Seeds the per-spec RNGs used by probabilistic triggers; two plans
        with equal specs and seed produce identical schedules.
    """

    def __init__(self, specs, seed: int = 0) -> None:
        specs = tuple(specs)
        for s in specs:
            if not isinstance(s, FaultSpec):
                raise ChaosError(f"expected FaultSpec, got {type(s).__name__}")
        self.specs = specs
        if int(seed) < 0:
            raise ChaosError(f"chaos seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self.log: list[FaultEvent] = []
        self._calls: list[int] = []
        self._bytes: list[int] = []
        self._fires: list[int] = []
        self._rngs: list[np.random.Generator] = []
        self.reset()

    def reset(self) -> None:
        """Rewind all counters and RNGs; the plan replays identically."""
        n = len(self.specs)
        self._calls = [0] * n
        self._bytes = [0] * n
        self._fires = [0] * n
        self._rngs = [np.random.default_rng([self.seed, i]) for i in range(n)]
        self.log = []

    # ------------------------------------------------------------------
    def check(self, site: str, stage: str = "", nbytes: int = 0) -> None:
        """Consult the plan at one fault site; raise if a rule fires."""
        for i, spec in enumerate(self.specs):
            if not spec.matches(site, stage):
                continue
            self._calls[i] += 1
            self._bytes[i] += int(nbytes)
            if spec.max_fires is not None and self._fires[i] >= spec.max_fires:
                continue
            if spec.nth is not None:
                fire = self._calls[i] == spec.nth
            elif spec.prob is not None:
                fire = bool(self._rngs[i].random() < spec.prob)
            else:
                assert spec.after_bytes is not None
                fire = self._bytes[i] >= spec.after_bytes
            if fire:
                self._fires[i] += 1
                ev = FaultEvent(
                    site=site, stage=stage, fault=spec.fault,
                    spec_index=i, call_index=self._calls[i],
                )
                self.log.append(ev)
                raise FAULT_ERRORS[spec.fault](
                    f"injected {spec.fault} fault at {site}"
                    f"{f' (stage {stage})' if stage else ''} "
                    f"[spec {i}, call {self._calls[i]}]"
                )

    # ------------------------------------------------------------------
    @property
    def schedule(self) -> tuple[FaultEvent, ...]:
        """The faults fired so far, in firing order."""
        return tuple(self.log)

    @property
    def n_fired(self) -> int:
        return len(self.log)

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
            f"fired={self.n_fired}>"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_seed(cls, seed: int, n_faults: int = 3) -> "FaultPlan":
        """Generate a random (but deterministic) chaos plan from a seed.

        Picks ``n_faults`` rules over the canonical site families with
        nth-call triggers drawn early enough to land inside a typical
        pipeline run.  The CLI's ``--chaos SEED`` flag maps here.
        """
        if n_faults < 1:
            raise ChaosError(f"n_faults must be >= 1, got {n_faults}")
        if seed < 0:
            raise ChaosError(f"chaos seed must be non-negative, got {seed}")
        rng = np.random.default_rng(seed)
        families = (
            ("cuda.alloc", "oom", 30),
            ("cuda.h2d", "transfer", 20),
            ("cuda.d2h", "transfer", 20),
            ("cuda.kernel:*", "transient", 40),
            ("cusparse.*mv", "transient", 10),
            ("cublas.*", "transient", 10),
        )
        specs = []
        for _ in range(n_faults):
            site, fault, span = families[int(rng.integers(len(families)))]
            specs.append(
                FaultSpec(site=site, fault=fault, nth=int(rng.integers(1, span + 1)))
            )
        return cls(specs, seed=seed)
