"""Resilience policies: retry-with-backoff on the simulated clock.

Backoff between attempts is *simulated* time: each scheduled retry records
an ``overhead`` event on the device timeline, so a faulted-and-recovered
run honestly costs more simulated seconds than a clean one — exactly as a
real driver-level retry would stall the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import TransferError, TransientKernelError

#: the error classes a retry may recover from (the fault performed no work)
TRANSIENT_ERRORS = (TransientKernelError, TransferError)

T = TypeVar("T")


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the pipeline responds to device faults.

    Attributes
    ----------
    enabled:
        Master switch; a disabled policy lets every fault propagate.
    max_attempts:
        Total tries per operation (1 = no retries).
    backoff, multiplier:
        Simulated seconds charged before the first retry, growing
        geometrically (exponential backoff).
    oom_degrade:
        On device OOM, shrink the stage's working-set knob
        (``tile_rows`` / ``edge_chunk``) and try again.
    cpu_fallback:
        After GPU attempts are exhausted, rerun the stage on the host
        (similarity/Laplacian reference builders, host SpMV in the
        eigensolver, ``kmeans_cpu``), recorded per-stage in the result.
    max_resumes:
        Checkpoint resumes allowed in the eigensolver before falling back
        or giving up.
    """

    enabled: bool = True
    max_attempts: int = 3
    backoff: float = 1e-3
    multiplier: float = 2.0
    oom_degrade: bool = True
    cpu_fallback: bool = True
    max_resumes: int = 3


#: the policy used when resilience is switched off (CLI ``--no-resilience``)
DISABLED = ResiliencePolicy(enabled=False)


def with_retry(
    fn: Callable[[], T],
    device,
    policy: ResiliencePolicy | None,
    site: str = "op",
    errors: tuple = TRANSIENT_ERRORS,
    on_retry: Callable[[int], None] | None = None,
) -> T:
    """Run ``fn`` with retry-with-backoff under ``policy``.

    Backoff is charged to ``device``'s timeline as ``overhead`` events.
    ``on_retry`` (if given) is called with the 1-based attempt number that
    just failed, before the retry is issued — callers use it to count
    recoveries.  The last failure propagates unchanged.
    """
    if policy is None or not policy.enabled:
        return fn()
    delay = policy.backoff
    attempt = 1
    while True:
        try:
            return fn()
        except errors:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt)
            device.timeline.record(f"chaos::backoff[{site}]", "overhead", delay)
            delay *= policy.multiplier
            attempt += 1


__all__ = ["ResiliencePolicy", "DISABLED", "TRANSIENT_ERRORS", "with_retry"]
