"""Sparse format conversions on the device.

``coo2csr`` reproduces ``cusparseXcoo2csr``: the COO row indices (assumed
sorted, as Algorithm 1 produces them) are compressed into the CSR row
pointer by a counting pass + prefix sum — both streaming device kernels.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.memory import BufferGroup
from repro.cusparse.matrices import DeviceCOO, DeviceCSR
from repro.errors import SparseFormatError


def coo2csr(coo: DeviceCOO, assume_sorted: bool = True) -> DeviceCSR:
    """Compress device COO row indices into CSR (``cusparseXcoo2csr``).

    Parameters
    ----------
    assume_sorted:
        cuSPARSE requires rows sorted ascending.  When False, a device
        radix sort of the triples is performed first (Thrust-style),
        charging sort time.
    """
    dev = coo.device
    n = coo.shape[0]
    rows = coo.row.data
    cols = coo.col.data
    vals = coo.val.data
    if not assume_sorted:
        order = np.argsort(rows * coo.shape[1] + cols, kind="stable")
        rows = rows[order]
        cols = cols[order]
        vals = vals[order]
        dev.timeline.record(
            "thrust::sort_by_key[coo2csr]", "kernel", dev.cost.sort_time(rows.size)
        )
    elif rows.size and np.any(np.diff(rows) < 0):
        raise SparseFormatError(
            "coo2csr: row indices not sorted; pass assume_sorted=False"
        )

    counts = np.bincount(rows, minlength=n)
    indptr_host = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr_host[1:])

    bufs = BufferGroup()
    try:
        indptr = bufs.add(dev.empty(n + 1, dtype=np.int64))
        indptr.data[...] = indptr_host
        indices = bufs.add(dev.empty(cols.size, dtype=np.int64))
        indices.data[...] = cols
        val = bufs.add(dev.empty(vals.size, dtype=np.float64))
        val.data[...] = vals
        dev.charge_kernel(
            "cusparseXcoo2csr",
            flops=rows.size,
            bytes_moved=rows.size * 8 + (n + 1) * 8,
        )
    except BaseException:
        bufs.free_all()
        raise
    return DeviceCSR(indptr=indptr, indices=indices, val=val, shape=coo.shape)


def csr2coo(csr: DeviceCSR) -> DeviceCOO:
    """Expand the CSR row pointer back to per-nonzero row indices."""
    dev = csr.device
    n = csr.shape[0]
    lengths = np.diff(csr.indptr.data)
    rows_host = np.repeat(np.arange(n, dtype=np.int64), lengths)
    bufs = BufferGroup()
    try:
        row = bufs.add(dev.empty(rows_host.size, dtype=np.int64))
        row.data[...] = rows_host
        col = bufs.add(dev.empty(csr.indices.size, dtype=np.int64))
        col.data[...] = csr.indices.data
        val = bufs.add(dev.empty(csr.val.size, dtype=np.float64))
        val.data[...] = csr.val.data
        dev.charge_kernel(
            "cusparseXcsr2coo",
            flops=rows_host.size,
            bytes_moved=rows_host.size * 8 + (n + 1) * 8,
        )
    except BaseException:
        bufs.free_all()
        raise
    return DeviceCOO(row=row, col=col, val=val, shape=csr.shape)


def csr2csc(csr: DeviceCSR) -> DeviceCSR:
    """Transpose-compress: returns the CSC of A, represented as the CSR of Aᵀ
    (the two are byte-identical, which is how cuSPARSE treats them)."""
    from repro.sparse.csr import CSRMatrix

    dev = csr.device
    # operate directly on the device buffers: csr2csc never crosses PCIe
    host_view = CSRMatrix(
        csr.indptr.data, csr.indices.data, csr.val.data, csr.shape, check=False
    )
    t = host_view.transpose()
    bufs = BufferGroup()
    try:
        indptr = bufs.add(dev.empty(t.indptr.size, dtype=np.int64))
        indptr.data[...] = t.indptr
        indices = bufs.add(dev.empty(t.indices.size, dtype=np.int64))
        indices.data[...] = t.indices
        val = bufs.add(dev.empty(t.data.size, dtype=np.float64))
        val.data[...] = t.data
        dev.timeline.record(
            "cusparseDcsr2csc", "kernel", dev.cost.sort_time(csr.nnz)
        )
    except BaseException:
        bufs.free_all()
        raise
    return DeviceCSR(
        indptr=indptr, indices=indices, val=val, shape=(csr.shape[1], csr.shape[0])
    )
