"""Device-resident sparse matrix handles.

Thin records of :class:`~repro.cuda.memory.DeviceArray` components plus the
matrix shape — the same three-array layouts the host formats use, but living
in (simulated) device memory.  Moving a host matrix to the device charges
one H2D transfer per component array, exactly what ``cudaMemcpy`` of the
three COO/CSR arrays costs on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.device import Device
from repro.cuda.memory import BufferGroup, DeviceArray
from repro.errors import SparseFormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


@dataclass
class DeviceCOO:
    """COO matrix on the device: three parallel nnz-length arrays."""

    row: DeviceArray
    col: DeviceArray
    val: DeviceArray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        if not (self.row.size == self.col.size == self.val.size):
            raise SparseFormatError(
                f"device COO arrays disagree on nnz: {self.row.size}/"
                f"{self.col.size}/{self.val.size}"
            )

    @property
    def nnz(self) -> int:
        return self.val.size

    @property
    def device(self) -> Device:
        return self.val.device

    def to_host(self) -> COOMatrix:
        """Copy back to a host COOMatrix (three D2H transfers)."""
        return COOMatrix(
            self.row.copy_to_host(),
            self.col.copy_to_host(),
            self.val.copy_to_host(),
            self.shape,
            check=False,
        )

    def free(self) -> None:
        self.row.free()
        self.col.free()
        self.val.free()


@dataclass
class DeviceCSR:
    """CSR matrix on the device."""

    indptr: DeviceArray
    indices: DeviceArray
    val: DeviceArray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        if self.indptr.size != self.shape[0] + 1:
            raise SparseFormatError(
                f"device CSR indptr length {self.indptr.size} != "
                f"n_rows+1 = {self.shape[0] + 1}"
            )
        if self.indices.size != self.val.size:
            raise SparseFormatError(
                f"device CSR indices/val mismatch: {self.indices.size} vs {self.val.size}"
            )

    @property
    def nnz(self) -> int:
        return self.val.size

    @property
    def device(self) -> Device:
        return self.val.device

    def row_lengths(self):
        """Per-row nonzero counts (host-side view of ``indptr`` deltas).

        Row-length statistics drive the SpMV format autotuner
        (:mod:`repro.cusparse.formats`); reading ``n+1`` row pointers is
        metadata work the real pipeline also does on the host.
        """
        import numpy as np

        return np.diff(self.indptr.data)

    def to_host(self) -> CSRMatrix:
        """Copy back to a host CSRMatrix (three D2H transfers)."""
        return CSRMatrix(
            self.indptr.copy_to_host(),
            self.indices.copy_to_host(),
            self.val.copy_to_host(),
            self.shape,
            check=False,
        )

    def free(self) -> None:
        self.indptr.free()
        self.indices.free()
        self.val.free()


def coo_to_device(device: Device, coo: COOMatrix) -> DeviceCOO:
    """Upload a host COO matrix (three H2D transfers)."""
    bufs = BufferGroup()
    try:
        return DeviceCOO(
            row=bufs.add(device.to_device(coo.row)),
            col=bufs.add(device.to_device(coo.col)),
            val=bufs.add(device.to_device(coo.data)),
            shape=coo.shape,
        )
    except BaseException:
        bufs.free_all()
        raise


def csr_to_device(device: Device, csr: CSRMatrix) -> DeviceCSR:
    """Upload a host CSR matrix (three H2D transfers)."""
    bufs = BufferGroup()
    try:
        return DeviceCSR(
            indptr=bufs.add(device.to_device(csr.indptr)),
            indices=bufs.add(device.to_device(csr.indices)),
            val=bufs.add(device.to_device(csr.data)),
            shape=csr.shape,
        )
    except BaseException:
        bufs.free_all()
        raise


def cast_csr(device: Device, A: DeviceCSR, dtype) -> DeviceCSR:
    """Device-to-device cast of a CSR matrix's values to a storage dtype.

    One streaming kernel (read fp64 values, write the reduced copy); the
    structure arrays are duplicated on-device so the cast matrix owns all
    three components and can be freed independently of ``A`` — no PCIe
    traffic is charged.  Identity (returns ``A`` itself) when the dtype
    already matches, so the fp64 path never pays the copy.
    """
    import numpy as np

    dt = np.dtype(dtype)
    if A.val.data.dtype == dt:
        return A
    bufs = BufferGroup()
    try:
        indptr = bufs.add(device.empty(A.indptr.size, dtype=A.indptr.data.dtype))
        indices = bufs.add(device.empty(A.indices.size, dtype=A.indices.data.dtype))
        val = bufs.add(device.empty(A.val.size, dtype=dt))
    except BaseException:
        bufs.free_all()
        raise
    indptr.data[...] = A.indptr.data
    indices.data[...] = A.indices.data
    val.data[...] = A.val.data
    bytes_moved = (
        A.indptr.nbytes * 2 + A.indices.nbytes * 2 + A.val.nbytes + val.nbytes
    )
    device.timeline.record(
        f"castCsr[{dt.name}]",
        "kernel",
        device.cost.kernel_time(0.0, bytes_moved, kind="stream", itemsize=dt.itemsize),
    )
    device.kernel_launches += 1
    return DeviceCSR(indptr=indptr, indices=indices, val=val, shape=A.shape)
