"""Row-partitioned sparse matrices and the multi-device SpMV.

The multi-GPU eigensolver follows the classic distributed-memory Lanczos
recipe (1-D row partitioning with communication/computation overlap):

* the matrix is split into **row sets**, one per device — contiguous
  blocks balanced by row count (``mode="rows"``), contiguous blocks
  balanced by nnz (``mode="nnz"``, the default: row-count splits starve
  or overload devices on skewed degree distributions), or graph-aware
  sets grown by a greedy BFS/min-cut heuristic (``mode="mincut"``) that
  shrink the halo itself;
* on each device the set's columns are split into a **local** part
  (columns owned by this device — the x entries are already resident)
  and a **halo** part (columns owned by peers);
* per SpMV, the local kernel launches immediately while the halo
  segments of the iteration vector travel device-to-device over the
  modeled bus (``cudaMemcpyPeerAsync`` on a dedicated copy stream per
  device); the halo kernel is enqueued right behind the local kernel on
  the same stream, so it starts as soon as both the local pass and the
  last halo segment have finished — and its dispatch latency hides
  behind the local kernel's execution.

Bit-identity invariant
----------------------
Numerics never change with the device count **or the partition mode**:
:func:`spmv_partitioned` computes the product through the canonical
CSR-order substrate triple — the identical ``np.bincount`` that
:func:`~repro.cusparse.spmv.csrmv` performs on one device.  Partitioning
changes only the *charged time* (and where the bytes flow), never a
float, which is what pins multi-device spectra to the single-device
path bit-for-bit.  That is also what makes non-contiguous min-cut row
sets cheap to support: they redistribute charged work and halo bytes,
while the arithmetic stays the one host-side reference reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.device import Device
from repro.cuda.memory import BufferGroup, DeviceArray
from repro.cuda.stream import Stream
from repro.cusparse.matrices import DeviceCSR
from repro.errors import SparseValueError
from repro.precision import as_f64, kernel_letter


#: supported row-partitioning strategies (see :func:`partition_rows`)
PARTITION_MODES = ("rows", "nnz", "mincut")


def _check_split(n: int, n_devices: int) -> None:
    if n_devices < 1:
        raise SparseValueError(f"n_devices must be >= 1, got {n_devices}")
    if n < n_devices:
        raise SparseValueError(
            f"cannot split {n} rows across {n_devices} devices"
        )


def partition_bounds(n: int, n_devices: int) -> np.ndarray:
    """Balanced contiguous row-block bounds: ``bounds[d]:bounds[d+1]``.

    Same even split the multi-GPU k-means path uses; every device gets
    ``n/n_devices`` rows up to rounding.  Blind to nnz skew — a device
    landing the dense rows of a power-law graph becomes the straggler —
    which is why :func:`partition_csr` defaults to ``mode="nnz"``.
    """
    _check_split(n, n_devices)
    return np.linspace(0, n, n_devices + 1).astype(np.int64)


def partition_bounds_nnz(indptr: np.ndarray, n_devices: int) -> np.ndarray:
    """Contiguous row-block bounds balanced by **nnz** instead of rows.

    Each cut lands where the cumulative nnz (which ``indptr`` already is)
    crosses the next ``total/p`` target, so every device owns roughly the
    same number of matrix entries — the quantity SpMV time actually
    scales with.  Cuts are clamped so every device keeps at least one
    row.
    """
    n = len(indptr) - 1
    _check_split(n, n_devices)
    bounds = np.empty(n_devices + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[n_devices] = n
    total = int(indptr[-1])
    prev = 0
    for d in range(1, n_devices):
        target = total * d / n_devices
        cut = int(np.searchsorted(indptr, target, side="left"))
        # keep >= 1 row per device on both sides of the cut
        cut = max(prev + 1, min(cut, n - (n_devices - d)))
        bounds[d] = cut
        prev = cut
    return bounds


def partition_owner_mincut(
    indptr: np.ndarray,
    indices: np.ndarray,
    n_devices: int,
    sweeps: int = 3,
    balance_slack: float = 0.10,
) -> np.ndarray:
    """Greedy min-cut row partitioning: BFS-grow + boundary refinement.

    Returns ``owner`` (device id per row).  Two phases, both heuristics in
    the lineage of lightweight streaming partitioners:

    1. **BFS-grow**: each device grows a connected region from an
       unassigned seed, admitting neighbors breadth-first until its nnz
       budget (``total/p``) fills; disconnected leftovers seed fresh BFS
       waves.  Connected regions keep most edges internal, which is the
       whole halo win.
    2. **Refinement sweeps**: every boundary row computes its connectivity
       to each part; rows move to their best-connected part in decreasing
       gain order while parts stay within ``balance_slack`` of the nnz
       ideal — one-sided Fiduccia–Mattheyses without the bucket queues.

    Row sets are generally **non-contiguous**; downstream this is free
    because the SpMV numerics run on the canonical host-side triple and
    only charged time follows the partition.
    """
    n = len(indptr) - 1
    _check_split(n, n_devices)
    p = n_devices
    owner = np.zeros(n, dtype=np.int64)
    if p == 1:
        return owner
    row_nnz = np.diff(indptr).astype(np.int64)
    # weight empty rows as 1 so budgets always fill and every part is
    # non-empty even on diagonal-free corners
    weight = np.maximum(row_nnz, 1)
    total = int(weight.sum())
    budget = total / p

    owner[:] = -1
    unassigned = n
    next_seed = 0
    from collections import deque

    for d in range(p - 1):
        acc = 0
        queue: deque = deque()
        while unassigned > (p - 1 - d):
            if not queue:
                while next_seed < n and owner[next_seed] != -1:
                    next_seed += 1
                if next_seed == n:
                    break
                if acc and acc + weight[next_seed] > budget:
                    break  # device full; the seed waits for the next one
                queue.append(next_seed)
            r = queue.popleft()
            if owner[r] != -1:
                continue
            if acc and acc + weight[r] > budget:
                continue  # too heavy for the remaining budget; skip
            owner[r] = d
            acc += int(weight[r])
            unassigned -= 1
            if acc >= budget:
                break
            neigh = indices[indptr[r]:indptr[r + 1]]
            queue.extend(neigh[owner[neigh] == -1].tolist())
    owner[owner == -1] = p - 1

    # refinement: move boundary rows toward their best-connected part
    seg_rows = np.repeat(np.arange(n, dtype=np.int64), row_nnz)
    part_w = np.bincount(owner, weights=weight, minlength=p)
    part_rows = np.bincount(owner, minlength=p)
    lo_w = (1.0 - balance_slack) * budget
    hi_w = (1.0 + balance_slack) * budget
    rows_idx = np.arange(n)
    for _ in range(max(0, sweeps)):
        conn = np.zeros((n, p), dtype=np.int64)
        np.add.at(conn, (seg_rows, owner[indices]), 1)
        cur = conn[rows_idx, owner]
        best = conn.argmax(axis=1)
        gain = conn[rows_idx, best] - cur
        movers = np.flatnonzero((best != owner) & (gain > 0))
        if movers.size == 0:
            break
        moved = 0
        for r in movers[np.argsort(-gain[movers])]:
            src, dst = int(owner[r]), int(best[r])
            w = int(weight[r])
            if part_rows[src] <= 1:
                continue
            if part_w[src] - w < lo_w or part_w[dst] + w > hi_w:
                continue
            owner[r] = dst
            part_w[src] -= w
            part_w[dst] += w
            part_rows[src] -= 1
            part_rows[dst] += 1
            moved += 1
        if moved == 0:
            break
    return owner


def partition_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    n_devices: int,
    mode: str = "nnz",
) -> tuple[list[np.ndarray], np.ndarray, np.ndarray | None]:
    """Compute per-device row sets for one partitioning ``mode``.

    Returns ``(row_sets, owner, bounds)`` where ``row_sets[d]`` is the
    sorted global row ids device ``d`` owns, ``owner`` maps every row to
    its device, and ``bounds`` is the contiguous block boundary array for
    the contiguous modes (``None`` for ``mincut``).
    """
    n = len(indptr) - 1
    if mode == "rows":
        bounds = partition_bounds(n, n_devices)
    elif mode == "nnz":
        bounds = partition_bounds_nnz(indptr, n_devices)
    elif mode == "mincut":
        owner = partition_owner_mincut(indptr, indices, n_devices)
        row_sets = [np.flatnonzero(owner == d) for d in range(n_devices)]
        return row_sets, owner, None
    else:
        raise SparseValueError(
            f"unknown partition mode {mode!r}; expected one of {PARTITION_MODES}"
        )
    owner = np.repeat(
        np.arange(n_devices, dtype=np.int64), np.diff(bounds)
    )
    row_sets = [
        np.arange(bounds[d], bounds[d + 1], dtype=np.int64)
        for d in range(n_devices)
    ]
    return row_sets, owner, bounds


@dataclass
class CSRShard:
    """One device's row set, stored as split local + halo CSR parts.

    ``rows`` holds the global row ids this device owns (sorted; a
    contiguous range under the ``rows``/``nnz`` modes, arbitrary under
    ``mincut``).  ``local_indices`` are offsets into the device's own x
    shard; ``halo_indices`` are offsets into ``halo_buf``, the receive
    buffer the peer copies land in.  ``halo_cols`` (host metadata) maps
    those slots back to global column ids, and ``halo_src_counts[e]``
    says how many of them device ``e`` owns — one peer copy per nonzero
    entry per SpMV.
    """

    device: Device
    index: int
    rows: np.ndarray
    local_indptr: DeviceArray
    local_indices: DeviceArray
    local_val: DeviceArray
    halo_indptr: DeviceArray
    halo_indices: DeviceArray
    halo_val: DeviceArray
    halo_buf: DeviceArray
    halo_cols: np.ndarray = field(repr=False)
    halo_src_counts: np.ndarray = field(repr=False)
    copy_stream: Stream = field(repr=False, default=None)

    @property
    def n_rows(self) -> int:
        return int(self.rows.size)

    @property
    def nnz_local(self) -> int:
        return self.local_val.size

    @property
    def nnz_halo(self) -> int:
        return self.halo_val.size

    @property
    def halo_count(self) -> int:
        """Distinct off-device x entries this shard receives per SpMV."""
        return int(self.halo_cols.size)

    def free(self) -> None:
        for arr in (
            self.local_indptr, self.local_indices, self.local_val,
            self.halo_indptr, self.halo_indices, self.halo_val,
            self.halo_buf,
        ):
            arr.free()


@dataclass
class PartitionedCSR:
    """A CSR matrix split into per-device row sets (plus the canonical
    host-side substrate mirror used for the reference arithmetic)."""

    shape: tuple[int, int]
    nnz: int
    mode: str
    #: device id per global row
    owner: np.ndarray
    #: contiguous block boundaries for the contiguous modes, None for mincut
    bounds: np.ndarray | None
    shards: list[CSRShard]
    sub_rows: np.ndarray = field(repr=False)
    sub_cols: np.ndarray = field(repr=False)
    sub_vals: np.ndarray = field(repr=False)

    @property
    def n_devices(self) -> int:
        return len(self.shards)

    @property
    def row_sets(self) -> list[np.ndarray]:
        """Per-device sorted global row ids (the shard layouts)."""
        return [s.rows for s in self.shards]

    @property
    def row_counts(self) -> tuple[int, ...]:
        return tuple(s.n_rows for s in self.shards)

    @property
    def devices(self) -> list[Device]:
        return [s.device for s in self.shards]

    @property
    def halo_counts(self) -> tuple[int, ...]:
        """Per-device count of x entries received per SpMV."""
        return tuple(s.halo_count for s in self.shards)

    @property
    def halo_pairs(self) -> int:
        """Number of (destination, source) peer copies issued per SpMV."""
        return int(sum(np.count_nonzero(s.halo_src_counts) for s in self.shards))

    def step_halo_bytes(self, itemsize: int = 8) -> int:
        """Peer-exchange bytes one SpMV moves over the bus."""
        return sum(self.halo_counts) * itemsize

    @property
    def shard_upload_bytes(self) -> int:
        """One-time P2P bytes that distributed the row blocks from device 0."""
        return self._shard_upload_bytes

    _shard_upload_bytes: int = 0

    def free(self) -> None:
        for s in self.shards:
            s.free()
        self.shards = []


def _split_row_block(
    indptr: np.ndarray,
    indices: np.ndarray,
    vals: np.ndarray,
    rows_d: np.ndarray,
    owner: np.ndarray,
    local_slot: np.ndarray,
    d: int,
    n_devices: int,
):
    """Host-side split of device ``d``'s row set into local/halo pieces.

    ``owner`` maps every global row/column to its device and
    ``local_slot`` to its position within the owner's sorted row set, so
    arbitrary (non-contiguous) row sets split exactly like contiguous
    blocks did.
    """
    nd = int(rows_d.size)
    starts = indptr[rows_d]
    counts = indptr[rows_d + 1] - starts
    total = int(counts.sum())
    if total:
        # gather the nnz of all owned rows: for each row, a run of
        # consecutive source offsets starting at indptr[row]
        shift = np.cumsum(counts) - counts
        idx = np.arange(total, dtype=np.int64) + np.repeat(starts - shift, counts)
    else:
        idx = np.empty(0, dtype=np.int64)
    seg_rows = np.repeat(np.arange(nd, dtype=np.int64), counts)
    seg_cols = indices[idx]
    seg_vals = vals[idx]
    local_mask = owner[seg_cols] == d

    def _csr_piece(mask):
        piece_counts = np.bincount(seg_rows[mask], minlength=nd)
        piece_indptr = np.zeros(nd + 1, dtype=np.int64)
        np.cumsum(piece_counts, out=piece_indptr[1:])
        return piece_indptr

    local_indptr = _csr_piece(local_mask)
    local_cols = local_slot[seg_cols[local_mask]]
    local_vals = seg_vals[local_mask]

    halo_mask = ~local_mask
    halo_indptr = _csr_piece(halo_mask)
    halo_global = seg_cols[halo_mask]
    halo_cols, halo_slots = np.unique(halo_global, return_inverse=True)
    halo_vals = seg_vals[halo_mask]
    src_counts = np.bincount(owner[halo_cols], minlength=n_devices)
    return (
        local_indptr, local_cols, local_vals,
        halo_indptr, halo_slots.astype(np.int64), halo_vals,
        halo_cols, src_counts,
        total,
    )


def partition_csr(
    A: DeviceCSR,
    devices: list[Device],
    rows_cache: np.ndarray | None = None,
    mode: str = "nnz",
    row_sets: list[np.ndarray] | None = None,
) -> PartitionedCSR:
    """Split ``A`` into per-device row sets with local/halo column parts.

    ``mode`` picks the partitioning strategy (see :func:`partition_rows`);
    ``"nnz"`` is the default because row-count splits ignore degree skew.
    Pass ``row_sets`` (with matching ``mode`` for bookkeeping) to reuse a
    partition computed once by a composed multi-stage plan.

    Device 0 (which holds ``A``) keeps its row set in place; every other
    device receives its raw rows over the modeled bus as one peer copy on
    its halo copy stream (``indptr`` slice + column indices + values),
    concurrently across devices.  Each device then runs one streaming
    *split* kernel reordering the rows into the local/halo layout.  All
    of this is charged onto the shared timeline at absolute times, so the
    setup cost is the makespan over devices, not the sum.
    """
    n, m = A.shape
    if n != m:
        raise SparseValueError(
            f"partition_csr needs a square operator, got shape {A.shape}"
        )
    if not devices:
        raise SparseValueError("partition_csr needs at least one device")
    timeline = devices[0].timeline
    for dev in devices[1:]:
        if dev.timeline is not timeline:
            raise SparseValueError(
                "all devices must share one timeline (one simulated platform)"
            )
    p = len(devices)
    indptr = A.indptr.data
    indices = A.indices.data
    vals = A.val.data
    bounds: np.ndarray | None
    if row_sets is not None:
        if len(row_sets) != p:
            raise SparseValueError(
                f"{len(row_sets)} row sets for {p} devices"
            )
        owner = np.full(n, -1, dtype=np.int64)
        for d, rows_d in enumerate(row_sets):
            owner[rows_d] = d
        if (owner < 0).any():
            raise SparseValueError("row sets do not cover every row")
        bounds = None
    else:
        row_sets, owner, bounds = partition_rows(indptr, indices, p, mode=mode)
    local_slot = np.empty(n, dtype=np.int64)
    for rows_d in row_sets:
        local_slot[rows_d] = np.arange(rows_d.size, dtype=np.int64)
    if rows_cache is None:
        sub_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    else:
        sub_rows = rows_cache
    sub_cols = indices.copy()
    sub_vals = vals.copy()

    shards: list[CSRShard] = []
    bufs = BufferGroup()
    block_nnz: list[int] = []
    try:
        for d, dev in enumerate(devices):
            rows_d = np.asarray(row_sets[d], dtype=np.int64)
            (
                l_indptr, l_cols, l_vals,
                h_indptr, h_slots, h_vals,
                h_cols, src_counts,
                rnnz,
            ) = _split_row_block(
                indptr, indices, vals, rows_d, owner, local_slot, d, p
            )
            nd = int(rows_d.size)
            shard = CSRShard(
                device=dev,
                index=d,
                rows=rows_d,
                local_indptr=bufs.add(dev.empty(nd + 1, dtype=np.int64)),
                local_indices=bufs.add(
                    dev.empty(max(l_cols.size, 1), dtype=np.int64)
                ),
                local_val=bufs.add(dev.empty(l_vals.size, dtype=vals.dtype)),
                halo_indptr=bufs.add(dev.empty(nd + 1, dtype=np.int64)),
                halo_indices=bufs.add(
                    dev.empty(max(h_slots.size, 1), dtype=np.int64)
                ),
                halo_val=bufs.add(dev.empty(h_vals.size, dtype=vals.dtype)),
                halo_buf=bufs.add(dev.empty(max(h_cols.size, 1), dtype=vals.dtype)),
                halo_cols=h_cols,
                halo_src_counts=src_counts,
                copy_stream=Stream(dev, name=f"dev{d}/halo"),
            )
            shard.local_indptr.data[...] = l_indptr
            shard.local_indices.data[: l_cols.size] = l_cols
            shard.local_val.data[...] = l_vals
            shard.halo_indptr.data[...] = h_indptr
            shard.halo_indices.data[: h_slots.size] = h_slots
            shard.halo_val.data[...] = h_vals
            shards.append(shard)
            block_nnz.append(rnnz)
    except BaseException:
        bufs.free_all()
        raise

    # lay the distribution onto the timeline: peer copies of the raw row
    # blocks (devices 1..p-1, concurrent — each destination has its own
    # link) followed by one split kernel per device
    t0 = timeline.clock.now
    upload_bytes = 0
    vs = vals.dtype.itemsize
    try:
        for d, shard in enumerate(shards):
            dev = shard.device
            nd = shard.n_rows
            rnnz = block_nnz[d]
            ready = t0
            if d > 0:
                # indptr slice + int64 column indices + values at their
                # storage width
                nbytes = (nd + 1) * 8 + rnnz * 8 + rnnz * vs
                _, ready = shard.copy_stream.enqueue_p2p(
                    nbytes, ready_at=t0, peer="dev0", src=0
                )
                upload_bytes += nbytes
            # split pass: stream the block in, write local + halo layout out
            split_bytes = 2.0 * (rnnz * (vs + 4) + (nd + 1) * 8)
            dt = dev.cost.kernel_time(0.0, split_bytes, kind="stream")
            timeline.record_at(
                f"partition_split[dev{d}]", "kernel", ready, dt
            )
            dev.kernel_launches += 1
    except BaseException:
        bufs.free_all()
        raise

    out = PartitionedCSR(
        shape=A.shape,
        nnz=A.nnz,
        mode=mode,
        owner=owner,
        bounds=bounds,
        shards=shards,
        sub_rows=sub_rows,
        sub_cols=sub_cols,
        sub_vals=sub_vals,
    )
    out._shard_upload_bytes = upload_bytes
    return out


def spmv_partitioned(
    P: PartitionedCSR, x: np.ndarray, y: np.ndarray | None = None
) -> np.ndarray:
    """One multi-device SpMV over the row-partitioned operator.

    Per device, three things are laid onto the shared timeline at a
    common start ``t0``:

    1. the **local kernel** (owned columns) launches at ``t0``;
    2. the **halo copies** — one ``cudaMemcpyPeerAsync`` per contributing
       peer, serialized on the device's halo copy stream (they share the
       destination's bus link) — also start at ``t0``;
    3. the **halo kernel** starts at ``max(local end, last halo
       arrival)``.  It was enqueued back-to-back behind the local kernel
       on the same stream, so its dispatch overhead is hidden
       (:meth:`~repro.hw.costmodel.GPUCostModel.spmv_halo_time` charges
       no launch overhead).

    The clock advances to the latest end over all devices — the SpMV's
    cost is the makespan, which is where the multi-device speedup (and
    the small-graph latency floor) comes from.  The returned product is
    computed through the canonical substrate triple and is bit-identical
    to single-device :func:`~repro.cusparse.spmv.csrmv`.
    """
    n = P.shape[0]
    if x.shape != (n,):
        raise SparseValueError(
            f"spmv_partitioned: operator is {P.shape}, x has shape {x.shape}"
        )
    timeline = P.shards[0].device.timeline
    t0 = timeline.clock.now
    vs = P.sub_vals.dtype.itemsize
    letter = kernel_letter(vs)
    for shard in P.shards:
        dev = shard.device
        chaos_check("cusparse.csrmv", dev)
        d = shard.index
        dt_local = dev.cost.spmv_time(shard.n_rows, shard.nnz_local, itemsize=vs)
        timeline.record_at(
            f"cusparse{letter}csrmv[local,dev{d}]", "kernel", t0, dt_local
        )
        dev.kernel_launches += 1
        dev.spmv_traffic_bytes += dev.cost.spmv_bytes(
            shard.n_rows, shard.nnz_local, vs
        )
        arrival = t0
        for src, count in enumerate(shard.halo_src_counts):
            if count == 0:
                continue
            _, arrival = shard.copy_stream.enqueue_p2p(
                int(count) * vs, ready_at=t0, peer=f"dev{src}", src=src
            )
        if shard.nnz_halo > 0:
            h_start = max(t0 + dt_local, arrival)
            dt_halo = dev.cost.spmv_halo_time(
                shard.n_rows, shard.nnz_halo, itemsize=vs
            )
            timeline.record_at(
                f"cusparse{letter}csrmv[halo,dev{d}]", "kernel", h_start, dt_halo
            )
            dev.kernel_launches += 1
            dev.spmv_traffic_bytes += dev.cost.spmv_halo_bytes(
                shard.n_rows, shard.nnz_halo, vs
            )
            # the halo gather reads the freshly landed x segments
            shard.halo_buf.data[: shard.halo_count] = x[shard.halo_cols]

    prod = np.bincount(
        P.sub_rows, weights=as_f64(P.sub_vals) * as_f64(x)[P.sub_cols], minlength=n
    )
    if y is None:
        return prod
    y[...] = prod
    return y


def spmm_partitioned(
    P: PartitionedCSR, B: np.ndarray, C: np.ndarray | None = None
) -> np.ndarray:
    """One multi-device SpMM over the row-partitioned operator.

    Block analogue of :func:`spmv_partitioned` for the power-iteration
    embedding: per device the local block kernel launches at ``t0`` while
    the halo *rows* of B (``halo_count × p`` values) travel peer-to-peer
    on the halo copy stream; the halo block kernel starts at ``max(local
    end, last halo arrival)`` with its dispatch latency hidden behind the
    local kernel.

    Bit-identity: the product is row-reduced through the identical
    ``np.add.reduceat`` substrate as :func:`~repro.cusparse.spmm.csrmm`
    (and the ELL/HYB ``_substrate_mm``), so the device count never changes
    a float of the block product — the power embedding is bit-identical
    from one device to many, exactly like the Lanczos path is for SpMV.
    """
    n = P.shape[0]
    if B.ndim != 2 or B.shape[0] != n:
        raise SparseValueError(
            f"spmm_partitioned: operator is {P.shape}, B has shape {B.shape}"
        )
    p = B.shape[1]
    timeline = P.shards[0].device.timeline
    t0 = timeline.clock.now
    vs = P.sub_vals.dtype.itemsize
    letter = kernel_letter(vs)
    for shard in P.shards:
        dev = shard.device
        chaos_check("cusparse.csrmm", dev)
        d = shard.index
        dt_local = dev.cost.spmm_time(
            shard.n_rows, shard.nnz_local, p, itemsize=vs
        )
        timeline.record_at(
            f"cusparse{letter}csrmm[local,dev{d}]", "kernel", t0, dt_local
        )
        dev.kernel_launches += 1
        dev.spmv_traffic_bytes += dev.cost.spmm_bytes(
            shard.n_rows, shard.nnz_local, p, vs
        )
        arrival = t0
        for src, count in enumerate(shard.halo_src_counts):
            if count == 0:
                continue
            # p columns of every off-device B row land in one copy
            _, arrival = shard.copy_stream.enqueue_p2p(
                int(count) * p * vs, ready_at=t0, peer=f"dev{src}", src=src
            )
        if shard.nnz_halo > 0:
            h_start = max(t0 + dt_local, arrival)
            dt_halo = dev.cost.spmm_halo_time(
                shard.n_rows, shard.nnz_halo, p, itemsize=vs
            )
            timeline.record_at(
                f"cusparse{letter}csrmm[halo,dev{d}]", "kernel", h_start, dt_halo
            )
            dev.kernel_launches += 1
            dev.spmv_traffic_bytes += dev.cost.spmm_halo_bytes(
                shard.n_rows, shard.nnz_halo, p, vs
            )

    gathered = as_f64(P.sub_vals)[:, None] * as_f64(B)[P.sub_cols]
    row_nnz = np.bincount(P.sub_rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=indptr[1:])
    nonempty = np.flatnonzero(row_nnz > 0)
    prod = np.zeros((n, p))
    if nonempty.size:
        prod[nonempty] = np.add.reduceat(gathered, indptr[nonempty], axis=0)
    if C is None:
        return prod
    C[...] = prod
    return C
