"""Row-partitioned sparse matrices and the multi-device SpMV.

The multi-GPU eigensolver follows the classic distributed-memory Lanczos
recipe (1-D row partitioning with communication/computation overlap):

* the matrix is split into contiguous **row blocks**, one per device,
  balanced by row count;
* on each device the block's columns are split into a **local** part
  (columns owned by this device — the x entries are already resident)
  and a **halo** part (columns owned by peers);
* per SpMV, the local kernel launches immediately while the halo
  segments of the iteration vector travel device-to-device over the
  modeled bus (``cudaMemcpyPeerAsync`` on a dedicated copy stream per
  device); the halo kernel is enqueued right behind the local kernel on
  the same stream, so it starts as soon as both the local pass and the
  last halo segment have finished — and its dispatch latency hides
  behind the local kernel's execution.

Bit-identity invariant
----------------------
Numerics never change with the device count: :func:`spmv_partitioned`
computes the product through the canonical CSR-order substrate triple —
the identical ``np.bincount`` that
:func:`~repro.cusparse.spmv.csrmv` performs on one device.  Partitioning
changes only the *charged time* (and where the bytes flow), never a
float, which is what pins multi-device spectra to the single-device
path bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.device import Device
from repro.cuda.memory import BufferGroup, DeviceArray
from repro.cuda.stream import Stream
from repro.cusparse.matrices import DeviceCSR
from repro.errors import SparseValueError
from repro.precision import as_f64, kernel_letter


def partition_bounds(n: int, n_devices: int) -> np.ndarray:
    """Balanced contiguous row-block bounds: ``bounds[d]:bounds[d+1]``.

    Same even split the multi-GPU k-means path uses; every device gets
    ``n/n_devices`` rows up to rounding.
    """
    if n_devices < 1:
        raise SparseValueError(f"n_devices must be >= 1, got {n_devices}")
    if n < n_devices:
        raise SparseValueError(
            f"cannot split {n} rows across {n_devices} devices"
        )
    return np.linspace(0, n, n_devices + 1).astype(np.int64)


@dataclass
class CSRShard:
    """One device's row block, stored as split local + halo CSR parts.

    ``local_indices`` are offsets into the device's own x shard;
    ``halo_indices`` are offsets into ``halo_buf``, the receive buffer the
    peer copies land in.  ``halo_cols`` (host metadata) maps those slots
    back to global column ids, and ``halo_src_counts[e]`` says how many of
    them device ``e`` owns — one peer copy per nonzero entry per SpMV.
    """

    device: Device
    index: int
    lo: int
    hi: int
    local_indptr: DeviceArray
    local_indices: DeviceArray
    local_val: DeviceArray
    halo_indptr: DeviceArray
    halo_indices: DeviceArray
    halo_val: DeviceArray
    halo_buf: DeviceArray
    halo_cols: np.ndarray = field(repr=False)
    halo_src_counts: np.ndarray = field(repr=False)
    copy_stream: Stream = field(repr=False, default=None)

    @property
    def n_rows(self) -> int:
        return self.hi - self.lo

    @property
    def nnz_local(self) -> int:
        return self.local_val.size

    @property
    def nnz_halo(self) -> int:
        return self.halo_val.size

    @property
    def halo_count(self) -> int:
        """Distinct off-device x entries this shard receives per SpMV."""
        return int(self.halo_cols.size)

    def free(self) -> None:
        for arr in (
            self.local_indptr, self.local_indices, self.local_val,
            self.halo_indptr, self.halo_indices, self.halo_val,
            self.halo_buf,
        ):
            arr.free()


@dataclass
class PartitionedCSR:
    """A CSR matrix split into per-device row blocks (plus the canonical
    host-side substrate mirror used for the reference arithmetic)."""

    shape: tuple[int, int]
    nnz: int
    bounds: np.ndarray
    shards: list[CSRShard]
    sub_rows: np.ndarray = field(repr=False)
    sub_cols: np.ndarray = field(repr=False)
    sub_vals: np.ndarray = field(repr=False)

    @property
    def n_devices(self) -> int:
        return len(self.shards)

    @property
    def devices(self) -> list[Device]:
        return [s.device for s in self.shards]

    @property
    def halo_counts(self) -> tuple[int, ...]:
        """Per-device count of x entries received per SpMV."""
        return tuple(s.halo_count for s in self.shards)

    @property
    def halo_pairs(self) -> int:
        """Number of (destination, source) peer copies issued per SpMV."""
        return int(sum(np.count_nonzero(s.halo_src_counts) for s in self.shards))

    def step_halo_bytes(self, itemsize: int = 8) -> int:
        """Peer-exchange bytes one SpMV moves over the bus."""
        return sum(self.halo_counts) * itemsize

    @property
    def shard_upload_bytes(self) -> int:
        """One-time P2P bytes that distributed the row blocks from device 0."""
        return self._shard_upload_bytes

    _shard_upload_bytes: int = 0

    def free(self) -> None:
        for s in self.shards:
            s.free()
        self.shards = []


def _split_row_block(
    indptr: np.ndarray,
    indices: np.ndarray,
    vals: np.ndarray,
    bounds: np.ndarray,
    d: int,
):
    """Host-side split of row block ``d`` into local/halo CSR pieces."""
    lo, hi = int(bounds[d]), int(bounds[d + 1])
    nd = hi - lo
    s, e = int(indptr[lo]), int(indptr[hi])
    seg_rows = (
        np.repeat(np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo:hi + 1]))
        - lo
    )
    seg_cols = indices[s:e]
    seg_vals = vals[s:e]
    local_mask = (seg_cols >= lo) & (seg_cols < hi)

    def _csr_piece(mask):
        counts = np.bincount(seg_rows[mask], minlength=nd)
        piece_indptr = np.zeros(nd + 1, dtype=np.int64)
        np.cumsum(counts, out=piece_indptr[1:])
        return piece_indptr

    local_indptr = _csr_piece(local_mask)
    local_cols = seg_cols[local_mask] - lo
    local_vals = seg_vals[local_mask]

    halo_mask = ~local_mask
    halo_indptr = _csr_piece(halo_mask)
    halo_global = seg_cols[halo_mask]
    halo_cols, halo_slots = np.unique(halo_global, return_inverse=True)
    halo_vals = seg_vals[halo_mask]
    owner = np.searchsorted(bounds, halo_cols, side="right") - 1
    src_counts = np.bincount(owner, minlength=len(bounds) - 1)
    return (
        lo, hi,
        local_indptr, local_cols, local_vals,
        halo_indptr, halo_slots.astype(np.int64), halo_vals,
        halo_cols, src_counts,
        e - s,
    )


def partition_csr(
    A: DeviceCSR,
    devices: list[Device],
    rows_cache: np.ndarray | None = None,
) -> PartitionedCSR:
    """Split ``A`` into per-device row blocks with local/halo column parts.

    Device 0 (which holds ``A``) keeps its block in place; every other
    device receives its raw row block over the modeled bus as one peer
    copy on its halo copy stream (``indptr`` slice + column indices +
    values), concurrently across devices.  Each device then runs one
    streaming *split* kernel reordering the block into the local/halo
    layout.  All of this is charged onto the shared timeline at absolute
    times, so the setup cost is the makespan over devices, not the sum.
    """
    n, m = A.shape
    if n != m:
        raise SparseValueError(
            f"partition_csr needs a square operator, got shape {A.shape}"
        )
    if not devices:
        raise SparseValueError("partition_csr needs at least one device")
    timeline = devices[0].timeline
    for dev in devices[1:]:
        if dev.timeline is not timeline:
            raise SparseValueError(
                "all devices must share one timeline (one simulated platform)"
            )
    p = len(devices)
    bounds = partition_bounds(n, p)
    indptr = A.indptr.data
    indices = A.indices.data
    vals = A.val.data
    if rows_cache is None:
        sub_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    else:
        sub_rows = rows_cache
    sub_cols = indices.copy()
    sub_vals = vals.copy()

    shards: list[CSRShard] = []
    bufs = BufferGroup()
    block_nnz: list[int] = []
    try:
        for d, dev in enumerate(devices):
            (
                lo, hi,
                l_indptr, l_cols, l_vals,
                h_indptr, h_slots, h_vals,
                h_cols, src_counts,
                rnnz,
            ) = _split_row_block(indptr, indices, vals, bounds, d)
            nd = hi - lo
            shard = CSRShard(
                device=dev,
                index=d,
                lo=lo,
                hi=hi,
                local_indptr=bufs.add(dev.empty(nd + 1, dtype=np.int64)),
                local_indices=bufs.add(
                    dev.empty(max(l_cols.size, 1), dtype=np.int64)
                ),
                local_val=bufs.add(dev.empty(l_vals.size, dtype=vals.dtype)),
                halo_indptr=bufs.add(dev.empty(nd + 1, dtype=np.int64)),
                halo_indices=bufs.add(
                    dev.empty(max(h_slots.size, 1), dtype=np.int64)
                ),
                halo_val=bufs.add(dev.empty(h_vals.size, dtype=vals.dtype)),
                halo_buf=bufs.add(dev.empty(max(h_cols.size, 1), dtype=vals.dtype)),
                halo_cols=h_cols,
                halo_src_counts=src_counts,
                copy_stream=Stream(dev, name=f"dev{d}/halo"),
            )
            shard.local_indptr.data[...] = l_indptr
            shard.local_indices.data[: l_cols.size] = l_cols
            shard.local_val.data[...] = l_vals
            shard.halo_indptr.data[...] = h_indptr
            shard.halo_indices.data[: h_slots.size] = h_slots
            shard.halo_val.data[...] = h_vals
            shards.append(shard)
            block_nnz.append(rnnz)
    except BaseException:
        bufs.free_all()
        raise

    # lay the distribution onto the timeline: peer copies of the raw row
    # blocks (devices 1..p-1, concurrent — each destination has its own
    # link) followed by one split kernel per device
    t0 = timeline.clock.now
    upload_bytes = 0
    vs = vals.dtype.itemsize
    try:
        for d, shard in enumerate(shards):
            dev = shard.device
            nd = shard.n_rows
            rnnz = block_nnz[d]
            ready = t0
            if d > 0:
                # indptr slice + int64 column indices + values at their
                # storage width
                nbytes = (nd + 1) * 8 + rnnz * 8 + rnnz * vs
                _, ready = shard.copy_stream.enqueue_p2p(
                    nbytes, ready_at=t0, peer="dev0"
                )
                upload_bytes += nbytes
            # split pass: stream the block in, write local + halo layout out
            split_bytes = 2.0 * (rnnz * (vs + 4) + (nd + 1) * 8)
            dt = dev.cost.kernel_time(0.0, split_bytes, kind="stream")
            timeline.record_at(
                f"partition_split[dev{d}]", "kernel", ready, dt
            )
            dev.kernel_launches += 1
    except BaseException:
        bufs.free_all()
        raise

    out = PartitionedCSR(
        shape=A.shape,
        nnz=A.nnz,
        bounds=bounds,
        shards=shards,
        sub_rows=sub_rows,
        sub_cols=sub_cols,
        sub_vals=sub_vals,
    )
    out._shard_upload_bytes = upload_bytes
    return out


def spmv_partitioned(
    P: PartitionedCSR, x: np.ndarray, y: np.ndarray | None = None
) -> np.ndarray:
    """One multi-device SpMV over the row-partitioned operator.

    Per device, three things are laid onto the shared timeline at a
    common start ``t0``:

    1. the **local kernel** (owned columns) launches at ``t0``;
    2. the **halo copies** — one ``cudaMemcpyPeerAsync`` per contributing
       peer, serialized on the device's halo copy stream (they share the
       destination's bus link) — also start at ``t0``;
    3. the **halo kernel** starts at ``max(local end, last halo
       arrival)``.  It was enqueued back-to-back behind the local kernel
       on the same stream, so its dispatch overhead is hidden
       (:meth:`~repro.hw.costmodel.GPUCostModel.spmv_halo_time` charges
       no launch overhead).

    The clock advances to the latest end over all devices — the SpMV's
    cost is the makespan, which is where the multi-device speedup (and
    the small-graph latency floor) comes from.  The returned product is
    computed through the canonical substrate triple and is bit-identical
    to single-device :func:`~repro.cusparse.spmv.csrmv`.
    """
    n = P.shape[0]
    if x.shape != (n,):
        raise SparseValueError(
            f"spmv_partitioned: operator is {P.shape}, x has shape {x.shape}"
        )
    timeline = P.shards[0].device.timeline
    t0 = timeline.clock.now
    vs = P.sub_vals.dtype.itemsize
    letter = kernel_letter(vs)
    for shard in P.shards:
        dev = shard.device
        chaos_check("cusparse.csrmv", dev)
        d = shard.index
        dt_local = dev.cost.spmv_time(shard.n_rows, shard.nnz_local, itemsize=vs)
        timeline.record_at(
            f"cusparse{letter}csrmv[local,dev{d}]", "kernel", t0, dt_local
        )
        dev.kernel_launches += 1
        dev.spmv_traffic_bytes += dev.cost.spmv_bytes(
            shard.n_rows, shard.nnz_local, vs
        )
        arrival = t0
        for src, count in enumerate(shard.halo_src_counts):
            if count == 0:
                continue
            _, arrival = shard.copy_stream.enqueue_p2p(
                int(count) * vs, ready_at=t0, peer=f"dev{src}"
            )
        if shard.nnz_halo > 0:
            h_start = max(t0 + dt_local, arrival)
            dt_halo = dev.cost.spmv_halo_time(
                shard.n_rows, shard.nnz_halo, itemsize=vs
            )
            timeline.record_at(
                f"cusparse{letter}csrmv[halo,dev{d}]", "kernel", h_start, dt_halo
            )
            dev.kernel_launches += 1
            dev.spmv_traffic_bytes += dev.cost.spmv_halo_bytes(
                shard.n_rows, shard.nnz_halo, vs
            )
            # the halo gather reads the freshly landed x segments
            shard.halo_buf.data[: shard.halo_count] = x[shard.halo_cols]

    prod = np.bincount(
        P.sub_rows, weights=as_f64(P.sub_vals) * as_f64(x)[P.sub_cols], minlength=n
    )
    if y is None:
        return prod
    y[...] = prod
    return y


def spmm_partitioned(
    P: PartitionedCSR, B: np.ndarray, C: np.ndarray | None = None
) -> np.ndarray:
    """One multi-device SpMM over the row-partitioned operator.

    Block analogue of :func:`spmv_partitioned` for the power-iteration
    embedding: per device the local block kernel launches at ``t0`` while
    the halo *rows* of B (``halo_count × p`` values) travel peer-to-peer
    on the halo copy stream; the halo block kernel starts at ``max(local
    end, last halo arrival)`` with its dispatch latency hidden behind the
    local kernel.

    Bit-identity: the product is row-reduced through the identical
    ``np.add.reduceat`` substrate as :func:`~repro.cusparse.spmm.csrmm`
    (and the ELL/HYB ``_substrate_mm``), so the device count never changes
    a float of the block product — the power embedding is bit-identical
    from one device to many, exactly like the Lanczos path is for SpMV.
    """
    n = P.shape[0]
    if B.ndim != 2 or B.shape[0] != n:
        raise SparseValueError(
            f"spmm_partitioned: operator is {P.shape}, B has shape {B.shape}"
        )
    p = B.shape[1]
    timeline = P.shards[0].device.timeline
    t0 = timeline.clock.now
    vs = P.sub_vals.dtype.itemsize
    letter = kernel_letter(vs)
    for shard in P.shards:
        dev = shard.device
        chaos_check("cusparse.csrmm", dev)
        d = shard.index
        dt_local = dev.cost.spmm_time(
            shard.n_rows, shard.nnz_local, p, itemsize=vs
        )
        timeline.record_at(
            f"cusparse{letter}csrmm[local,dev{d}]", "kernel", t0, dt_local
        )
        dev.kernel_launches += 1
        dev.spmv_traffic_bytes += dev.cost.spmm_bytes(
            shard.n_rows, shard.nnz_local, p, vs
        )
        arrival = t0
        for src, count in enumerate(shard.halo_src_counts):
            if count == 0:
                continue
            # p columns of every off-device B row land in one copy
            _, arrival = shard.copy_stream.enqueue_p2p(
                int(count) * p * vs, ready_at=t0, peer=f"dev{src}"
            )
        if shard.nnz_halo > 0:
            h_start = max(t0 + dt_local, arrival)
            dt_halo = dev.cost.spmm_halo_time(
                shard.n_rows, shard.nnz_halo, p, itemsize=vs
            )
            timeline.record_at(
                f"cusparse{letter}csrmm[halo,dev{d}]", "kernel", h_start, dt_halo
            )
            dev.kernel_launches += 1
            dev.spmv_traffic_bytes += dev.cost.spmm_halo_bytes(
                shard.n_rows, shard.nnz_halo, p, vs
            )

    gathered = as_f64(P.sub_vals)[:, None] * as_f64(B)[P.sub_cols]
    row_nnz = np.bincount(P.sub_rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=indptr[1:])
    nonempty = np.flatnonzero(row_nnz > 0)
    prod = np.zeros((n, p))
    if nonempty.size:
        prod[nonempty] = np.add.reduceat(gathered, indptr[nonempty], axis=0)
    if C is None:
        return prod
    C[...] = prod
    return C
