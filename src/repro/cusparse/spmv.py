"""Sparse matrix-vector products on the device.

:func:`csrmv` is the workhorse of the whole paper: ARPACK's reverse
communication interface calls it once (sometimes twice) per Lanczos
iteration, with the vector shuttling over PCIe each time (Algorithm 3).
The cost model charges gather-class bandwidth, which is why the GPU's
advantage over a CPU SpMV is the ~5-10x the paper reports rather than the
raw flops ratio.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.memory import DeviceArray
from repro.cusparse.matrices import DeviceCOO, DeviceCSR
from repro.errors import SparseValueError
from repro.precision import as_f64, kernel_letter


def csrmv(
    A: DeviceCSR,
    x: DeviceArray,
    y: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    rows_cache: np.ndarray | None = None,
) -> DeviceArray:
    """``y <- alpha * A @ x + beta * y`` (``cusparseDcsrmv``).

    Parameters
    ----------
    rows_cache:
        Optional precomputed per-nonzero row expansion (``repeat`` of row
        ids); callers running thousands of iterations (the eigensolver)
        pass this to keep the host-side simulation overhead amortized.
        It does not affect the simulated cost.
    """
    dev = A.device
    chaos_check("cusparse.csrmv", dev)
    n, m = A.shape
    if x.size != m:
        raise SparseValueError(f"csrmv: A is {A.shape}, x has length {x.size}")
    if y is None:
        y = dev.empty(n, dtype=A.val.data.dtype)
        beta = 0.0
    elif y.size != n:
        raise SparseValueError(f"csrmv: A is {A.shape}, y has length {y.size}")

    if rows_cache is None:
        rows_cache = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(A.indptr.data)
        )
    # fp64 accumulation regardless of storage width: operands upcast
    # before the multiply-reduce (as_f64 is the identity on float64, so
    # the exact path runs the expression it always did); the write into
    # y quantizes to y's storage dtype.
    prod = np.bincount(
        rows_cache,
        weights=as_f64(A.val.data) * as_f64(x.data)[A.indices.data],
        minlength=n,
    )
    if beta == 0.0:
        y.data[...] = alpha * prod
    else:
        y.data[...] = alpha * prod + beta * y.data

    vs = A.val.data.dtype.itemsize
    dt = dev.cost.spmv_time(n, A.nnz, itemsize=vs)
    dev.timeline.record(f"cusparse{kernel_letter(vs)}csrmv", "kernel", dt)
    dev.kernel_launches += 1
    dev.spmv_traffic_bytes += dev.cost.spmv_bytes(n, A.nnz, vs)
    return y


def coomv(
    A: DeviceCOO,
    x: DeviceArray,
    y: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """``y <- alpha * A @ x + beta * y`` in COO (atomics-based kernel).

    COO SpMV on a GPU requires atomic scatter-adds; the cost model reflects
    this with an extra penalty over csrmv — the reason the pipeline converts
    to CSR before the eigensolver (§IV.B, and the format ablation bench).
    """
    dev = A.device
    chaos_check("cusparse.coomv", dev)
    n, m = A.shape
    if x.size != m:
        raise SparseValueError(f"coomv: A is {A.shape}, x has length {x.size}")
    if y is None:
        y = dev.empty(n, dtype=A.val.data.dtype)
        beta = 0.0
    elif y.size != n:
        raise SparseValueError(f"coomv: A is {A.shape}, y has length {y.size}")

    prod = np.bincount(
        A.row.data,
        weights=as_f64(A.val.data) * as_f64(x.data)[A.col.data],
        minlength=n,
    )
    if beta == 0.0:
        y.data[...] = alpha * prod
    else:
        y.data[...] = alpha * prod + beta * y.data

    # atomic contention: ~2x the csrmv bytes at gather efficiency
    vs = A.val.data.dtype.itemsize
    dt = dev.cost.spmv_time(n, A.nnz, itemsize=vs) * 2.0
    dev.timeline.record(f"cusparse{kernel_letter(vs)}coomv", "kernel", dt)
    dev.kernel_launches += 1
    dev.spmv_traffic_bytes += dev.cost.spmv_bytes(n, A.nnz, vs)
    return y


def _substrate_product(A, x: DeviceArray, y, alpha: float, beta: float, n: int):
    """Shared reference arithmetic for the padded formats.

    ELL/HYB objects carry the canonical CSR-order triple
    (``sub_rows``/``sub_cols``/``sub_vals``); computing the product through
    it — the identical ``np.bincount`` csrmv performs — is what guarantees
    bit-identical results across formats (see ``formats`` module docstring).
    """
    prod = np.bincount(
        A.sub_rows,
        weights=as_f64(A.sub_vals) * as_f64(x.data)[A.sub_cols],
        minlength=n,
    )
    if beta == 0.0:
        y.data[...] = alpha * prod
    else:
        y.data[...] = alpha * prod + beta * y.data


def ellmv(
    A,
    x: DeviceArray,
    y: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """``y <- alpha * A @ x + beta * y`` for a :class:`DeviceELL` matrix.

    One fully-coalesced kernel over the padded layout; cheap on uniform row
    lengths, pays for every padding slot on skewed ones.
    """
    dev = A.device
    chaos_check("cusparse.ellmv", dev)
    n, m = A.shape
    if x.size != m:
        raise SparseValueError(f"ellmv: A is {A.shape}, x has length {x.size}")
    if y is None:
        y = dev.empty(n, dtype=A.sub_vals.dtype)
        beta = 0.0
    elif y.size != n:
        raise SparseValueError(f"ellmv: A is {A.shape}, y has length {y.size}")

    _substrate_product(A, x, y, alpha, beta, n)
    vs = A.sub_vals.dtype.itemsize
    dt = dev.cost.ellmv_time(n, A.nnz, A.width, itemsize=vs)
    dev.timeline.record(f"cusparse{kernel_letter(vs)}ellmv", "kernel", dt)
    dev.kernel_launches += 1
    dev.spmv_traffic_bytes += dev.cost.ellmv_bytes(n, A.nnz, A.width, vs)
    return y


def hybmv(
    A,
    x: DeviceArray,
    y: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """``y <- alpha * A @ x + beta * y`` for a :class:`DeviceHYB` matrix.

    Two launches: the coalesced ELL pass over the regular part, then the
    atomics-based COO pass over the spill tail.
    """
    dev = A.device
    chaos_check("cusparse.hybmv", dev)
    n, m = A.shape
    if x.size != m:
        raise SparseValueError(f"hybmv: A is {A.shape}, x has length {x.size}")
    if y is None:
        y = dev.empty(n, dtype=A.sub_vals.dtype)
        beta = 0.0
    elif y.size != n:
        raise SparseValueError(f"hybmv: A is {A.shape}, y has length {y.size}")

    _substrate_product(A, x, y, alpha, beta, n)
    vs = A.sub_vals.dtype.itemsize
    letter = kernel_letter(vs)
    dev.timeline.record(
        f"cusparse{letter}hybmv[ell]",
        "kernel",
        dev.cost.ellmv_time(n, A.nnz_ell, A.width, itemsize=vs),
    )
    dev.kernel_launches += 1
    dev.spmv_traffic_bytes += dev.cost.ellmv_bytes(n, A.nnz_ell, A.width, vs)
    if A.nnz_coo > 0:
        dev.timeline.record(
            f"cusparse{letter}hybmv[coo]",
            "kernel",
            dev.cost.spmv_time(n, A.nnz_coo, itemsize=vs) * 2.0,
        )
        dev.kernel_launches += 1
        dev.spmv_traffic_bytes += dev.cost.spmv_bytes(n, A.nnz_coo, vs)
    return y


def spmv_any(
    A,
    x: DeviceArray,
    y: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    rows_cache: np.ndarray | None = None,
) -> DeviceArray:
    """Format-dispatching SpMV: CSR, ELL or HYB operand, same semantics."""
    from repro.cusparse.formats import DeviceELL, DeviceHYB

    if isinstance(A, DeviceCSR):
        return csrmv(A, x, y, alpha=alpha, beta=beta, rows_cache=rows_cache)
    if isinstance(A, DeviceELL):
        return ellmv(A, x, y, alpha=alpha, beta=beta)
    if isinstance(A, DeviceHYB):
        return hybmv(A, x, y, alpha=alpha, beta=beta)
    if isinstance(A, DeviceCOO):
        return coomv(A, x, y, alpha=alpha, beta=beta)
    raise SparseValueError(f"spmv: unsupported operand type {type(A).__name__}")
