"""ELL/HYB device sparse formats and the SpMV format autotuner.

cuSPARSE ships one SpMV kernel per storage format because no single layout
wins everywhere:

* **CSR** is compact but every row read is an irregular gather;
* **ELL** pads all rows to the longest one — fully coalesced reads, so it
  flies on near-uniform row lengths and drowns in padding on skewed ones;
* **HYB** stores the first ``K`` entries of each row in ELL and spills the
  tail to a COO list, splitting the difference for power-law graphs.

:func:`autotune_format` picks the format per matrix from row-length
statistics (mean / max / variance over ``indptr``), by evaluating the
calibrated per-format cost-model kernels and taking the cheapest — the same
inspector/executor split ``cusparseDcsrmv`` callers do by hand.

Bit-identity invariant
----------------------
All formats share one reference substrate arithmetic: each carries the
canonical CSR-order ``(rows, cols, vals)`` triple as a host-side simulation
mirror, and every SpMV computes the same ``np.bincount`` over it that
:func:`~repro.cusparse.spmv.csrmv` performs.  Format choice changes only
the *charged time* and the device-memory footprint, never a float — which
is what lets the pipeline autotune freely while keeping cluster labels
bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.memory import BufferGroup, DeviceArray
from repro.cusparse.matrices import DeviceCSR
from repro.errors import SparseFormatError
from repro.hw.costmodel import GPUCostModel
from repro.precision import kernel_letter

SPMV_FORMATS = ("csr", "ell", "hyb")


@dataclass(frozen=True)
class RowStats:
    """Row-length statistics of a sparse matrix (the autotuner's features)."""

    n_rows: int
    nnz: int
    mean: float
    max: int
    variance: float

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def padding_ratio(self) -> float:
        """Padded-ELL entries over true nonzeros (1.0 = perfectly uniform)."""
        if self.nnz == 0:
            return 1.0
        return self.n_rows * self.max / self.nnz


def row_stats(indptr: np.ndarray) -> RowStats:
    """Compute :class:`RowStats` from a CSR ``indptr`` array."""
    counts = np.diff(indptr)
    n_rows = counts.size
    nnz = int(indptr[-1]) if n_rows else 0
    if n_rows == 0:
        return RowStats(0, 0, 0.0, 0, 0.0)
    return RowStats(
        n_rows=n_rows,
        nnz=nnz,
        mean=float(counts.mean()),
        max=int(counts.max()),
        variance=float(counts.var()),
    )


@dataclass
class DeviceELL:
    """ELLPACK matrix on the device: ``(n_rows, width)`` padded layout.

    ``cols`` uses ``-1`` for padding slots and ``val`` zero-fills them; the
    device arrays are the format's real memory footprint.  The substrate
    triple (``sub_rows``/``sub_cols``/``sub_vals``) is the host-side
    simulation mirror in canonical CSR order — see the module docstring.
    """

    cols: DeviceArray
    val: DeviceArray
    shape: tuple[int, int]
    nnz: int
    sub_rows: np.ndarray = field(repr=False)
    sub_cols: np.ndarray = field(repr=False)
    sub_vals: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.cols.shape != self.val.shape:
            raise SparseFormatError(
                f"device ELL cols/val disagree: {self.cols.shape} vs {self.val.shape}"
            )

    @property
    def width(self) -> int:
        return self.cols.shape[1] if self.cols.ndim == 2 else 0

    @property
    def device(self):
        return self.val.device

    def free(self) -> None:
        self.cols.free()
        self.val.free()


@dataclass
class DeviceHYB:
    """HYB matrix on the device: ELL part of width ``K`` plus a COO tail."""

    ell_cols: DeviceArray
    ell_val: DeviceArray
    coo_row: DeviceArray
    coo_col: DeviceArray
    coo_val: DeviceArray
    shape: tuple[int, int]
    nnz: int
    sub_rows: np.ndarray = field(repr=False)
    sub_cols: np.ndarray = field(repr=False)
    sub_vals: np.ndarray = field(repr=False)

    @property
    def width(self) -> int:
        return self.ell_cols.shape[1] if self.ell_cols.ndim == 2 else 0

    @property
    def nnz_ell(self) -> int:
        return self.nnz - self.coo_val.size

    @property
    def nnz_coo(self) -> int:
        return self.coo_val.size

    @property
    def device(self):
        return self.ell_val.device

    def free(self) -> None:
        self.ell_cols.free()
        self.ell_val.free()
        self.coo_row.free()
        self.coo_col.free()
        self.coo_val.free()


def _substrate_triple(A: DeviceCSR) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The canonical CSR-order (rows, cols, vals) simulation mirror."""
    counts = A.row_lengths()
    rows = np.repeat(np.arange(A.shape[0], dtype=np.int64), counts)
    return rows, A.indices.data.copy(), A.val.data.copy()


def _padded_layout(
    A: DeviceCSR, width: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scatter the first ``width`` entries of each CSR row into the padded
    ``(n_rows, width)`` ELL arrays; returns (cols, vals, kept-entry mask)."""
    n = A.shape[0]
    counts = A.row_lengths()
    offsets = np.repeat(A.indptr.data[:-1], counts)
    slot = np.arange(A.nnz, dtype=np.int64) - offsets  # position within row
    mask = slot < width
    cols = np.full((n, max(width, 1)), -1, dtype=np.int64)
    vals = np.zeros((n, max(width, 1)), dtype=A.val.data.dtype)
    rows = np.repeat(np.arange(n, dtype=np.int64), counts)
    cols[rows[mask], slot[mask]] = A.indices.data[mask]
    vals[rows[mask], slot[mask]] = A.val.data[mask]
    return cols, vals, mask


def csr_to_ell(A: DeviceCSR, width: int | None = None) -> DeviceELL:
    """Convert CSR -> ELL on the device (``cusparseDcsr2ell``).

    Charges one streaming conversion kernel; allocates the padded layout
    through the device allocator.  ``width`` defaults to the longest row.
    """
    dev = A.device
    chaos_check("cusparse.csr2ell", dev)
    n, _ = A.shape
    if width is None:
        counts = A.row_lengths()
        width = int(counts.max()) if counts.size else 0
    cols_host, vals_host, mask = _padded_layout(A, width)
    if not mask.all():
        raise SparseFormatError(
            f"ELL width {width} drops entries (longest row is larger); "
            "use HYB for skewed matrices"
        )
    sub_rows, sub_cols, sub_vals = _substrate_triple(A)
    bufs = BufferGroup()
    try:
        cols = bufs.add(dev.empty((n, max(width, 1)), dtype=np.int64))
        val = bufs.add(dev.empty((n, max(width, 1)), dtype=A.val.data.dtype))
    except BaseException:
        bufs.free_all()
        raise
    cols.data[...] = cols_host
    val.data[...] = vals_host
    vs = A.val.data.dtype.itemsize
    dt = dev.cost.format_conversion_time(A.nnz, n * width, itemsize=vs)
    dev.timeline.record(f"cusparse{kernel_letter(vs)}csr2ell", "kernel", dt)
    dev.kernel_launches += 1
    return DeviceELL(
        cols=cols,
        val=val,
        shape=A.shape,
        nnz=A.nnz,
        sub_rows=sub_rows,
        sub_cols=sub_cols,
        sub_vals=sub_vals,
    )


def hyb_ell_width(stats: RowStats) -> int:
    """cuSPARSE's ``CUSPARSE_HYB_PARTITION_AUTO`` heuristic: the ELL part
    covers the *typical* row, the tail spills to COO."""
    return max(1, int(math.ceil(stats.mean)))


def csr_to_hyb(A: DeviceCSR, width: int | None = None) -> DeviceHYB:
    """Convert CSR -> HYB on the device (``cusparseDcsr2hyb``)."""
    dev = A.device
    chaos_check("cusparse.csr2hyb", dev)
    n, _ = A.shape
    counts = A.row_lengths()
    if width is None:
        width = hyb_ell_width(row_stats(A.indptr.data))
    cols_host, vals_host, mask = _padded_layout(A, width)
    spill = ~mask
    sub_rows, sub_cols, sub_vals = _substrate_triple(A)
    bufs = BufferGroup()
    try:
        ell_cols = bufs.add(dev.empty((n, width), dtype=np.int64))
        ell_val = bufs.add(dev.empty((n, width), dtype=A.val.data.dtype))
        n_coo = max(int(spill.sum()), 0)
        coo_row = bufs.add(dev.empty(n_coo, dtype=np.int64))
        coo_col = bufs.add(dev.empty(n_coo, dtype=np.int64))
        coo_val = bufs.add(dev.empty(n_coo, dtype=A.val.data.dtype))
    except BaseException:
        bufs.free_all()
        raise
    ell_cols.data[...] = cols_host
    ell_val.data[...] = vals_host
    coo_row.data[...] = sub_rows[spill]
    coo_col.data[...] = A.indices.data[spill]
    coo_val.data[...] = A.val.data[spill]
    vs = A.val.data.dtype.itemsize
    dt = dev.cost.format_conversion_time(
        A.nnz, n * width + 3 * coo_val.size, itemsize=vs
    )
    dev.timeline.record(f"cusparse{kernel_letter(vs)}csr2hyb", "kernel", dt)
    dev.kernel_launches += 1
    return DeviceHYB(
        ell_cols=ell_cols,
        ell_val=ell_val,
        coo_row=coo_row,
        coo_col=coo_col,
        coo_val=coo_val,
        shape=A.shape,
        nnz=A.nnz,
        sub_rows=sub_rows,
        sub_cols=sub_cols,
        sub_vals=sub_vals,
    )


@dataclass(frozen=True)
class FormatDecision:
    """The autotuner's verdict, with its evidence."""

    format: str
    stats: RowStats
    #: predicted per-SpMV seconds for each candidate format
    predicted_s: dict[str, float]
    #: ELL partition width a HYB conversion would use
    hyb_width: int
    #: measured per-SpMV seconds fed back from earlier solves on the same
    #: matrix shape (empty when no measurements exist yet)
    measured_s: dict[str, float] = field(default_factory=dict)
    #: evidence class the ranking used per candidate: "measured" when a
    #: kernel timing was available, "predicted" otherwise
    evidence: dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "format": self.format,
            "predicted_spmv_s": dict(self.predicted_s),
            "measured_spmv_s": dict(self.measured_s),
            "evidence": dict(self.evidence),
            "hyb_width": self.hyb_width,
            "row_mean": self.stats.mean,
            "row_max": self.stats.max,
            "row_variance": self.stats.variance,
            "padding_ratio": self.stats.padding_ratio,
        }


def autotune_format(
    indptr: np.ndarray,
    cost: GPUCostModel,
    formats: tuple[str, ...] = SPMV_FORMATS,
    measured: dict[str, float] | None = None,
    itemsize: int = 8,
) -> FormatDecision:
    """Choose the cheapest SpMV format from row-length statistics.

    Evaluates the calibrated cost-model kernel for each candidate format on
    this matrix's shape and picks the minimum time; ties (and empty
    matrices) fall back to CSR.  With no ``measured`` evidence the decision
    is a pure function of ``indptr`` and the device spec — deterministic
    and free of measurement noise, an analytic stand-in for the
    probe-and-measure autotuners real libraries use.

    ``measured`` maps formats to mean per-SpMV kernel seconds observed on
    earlier solves of the same matrix shape
    (:meth:`~repro.cuda.device.Device.measured_spmv_times`); a measured
    time overrides the model's prediction for that candidate, so the
    ranking prefers ground truth where it exists and falls back to the
    model elsewhere.  The decision records which evidence class each
    candidate used.

    ``itemsize`` is the value-storage width the predictions price — pass
    the reduced width when tuning for an fp32/fp16 operand (measured
    evidence should then come from same-width kernels only).
    """
    for f in formats:
        if f not in SPMV_FORMATS:
            raise SparseFormatError(f"unknown SpMV format {f!r}")
    stats = row_stats(indptr)
    K = hyb_ell_width(stats)
    predicted: dict[str, float] = {}
    if "csr" in formats:
        predicted["csr"] = cost.spmv_time(stats.n_rows, stats.nnz, itemsize=itemsize)
    if stats.nnz and stats.n_rows:
        counts = np.diff(indptr)
        if "ell" in formats:
            predicted["ell"] = cost.ellmv_time(
                stats.n_rows, stats.nnz, stats.max, itemsize=itemsize
            )
        if "hyb" in formats:
            nnz_ell = int(np.minimum(counts, K).sum())
            predicted["hyb"] = cost.hybmv_time(
                stats.n_rows, nnz_ell, K, stats.nnz - nnz_ell, itemsize=itemsize
            )
    if not predicted:
        raise SparseFormatError("no candidate formats to autotune over")
    measured_known = {
        f: float(measured[f])
        for f in predicted
        if measured is not None and f in measured
    }
    effective = {f: measured_known.get(f, t) for f, t in predicted.items()}
    best = min(sorted(effective), key=lambda f: effective[f])
    if effective.get("csr", float("inf")) <= effective[best]:
        best = "csr"  # prefer the no-conversion format on ties
    return FormatDecision(
        format=best,
        stats=stats,
        predicted_s=predicted,
        hyb_width=K,
        measured_s=measured_known,
        evidence={
            f: "measured" if f in measured_known else "predicted"
            for f in predicted
        },
    )


def autotune_spmm_format(
    indptr: np.ndarray,
    cost: GPUCostModel,
    p: int,
    formats: tuple[str, ...] = SPMV_FORMATS,
    measured: dict[str, float] | None = None,
    conversion_uses: int | None = None,
    itemsize: int = 8,
) -> FormatDecision:
    """Choose the cheapest SpMM format for a ``p``-column right-hand side.

    The SpMM twin of :func:`autotune_format`, reusing the same row-length
    evidence and :class:`FormatDecision` reporting: the calibrated
    per-format SpMM kernels (``spmm_time``/``ellmm_time``/``hybmm_time``)
    are evaluated on this matrix's shape and the minimum picked, with
    ``measured`` per-launch seconds overriding predictions where they
    exist.  Ties fall back to CSR (no conversion needed).

    ``conversion_uses`` charges each non-CSR candidate its CSR->X
    conversion kernel amortized over that many SpMM launches — pass ``1``
    when the operand is rebuilt per product (the k-means membership
    matrix changes every Lloyd iteration), leave ``None`` when the
    conversion happens once outside the measured loop.
    """
    if p < 1:
        raise SparseFormatError(f"spmm autotune needs p >= 1 columns, got {p}")
    if conversion_uses is not None and conversion_uses < 1:
        raise SparseFormatError(
            f"conversion_uses must be >= 1, got {conversion_uses}"
        )
    for f in formats:
        if f not in SPMV_FORMATS:
            raise SparseFormatError(f"unknown SpMM format {f!r}")
    stats = row_stats(indptr)
    K = hyb_ell_width(stats)
    predicted: dict[str, float] = {}
    conversion: dict[str, float] = {}
    if "csr" in formats:
        predicted["csr"] = cost.spmm_time(
            stats.n_rows, stats.nnz, p, itemsize=itemsize
        )
    if stats.nnz and stats.n_rows:
        counts = np.diff(indptr)
        if "ell" in formats:
            predicted["ell"] = cost.ellmm_time(
                stats.n_rows, stats.nnz, stats.max, p, itemsize=itemsize
            )
            conversion["ell"] = cost.format_conversion_time(
                stats.nnz, stats.n_rows * stats.max, itemsize=itemsize
            )
        if "hyb" in formats:
            nnz_ell = int(np.minimum(counts, K).sum())
            predicted["hyb"] = cost.hybmm_time(
                stats.n_rows, nnz_ell, K, stats.nnz - nnz_ell, p, itemsize=itemsize
            )
            conversion["hyb"] = cost.format_conversion_time(
                stats.nnz, stats.n_rows * K + 3 * (stats.nnz - nnz_ell), itemsize=itemsize
            )
    if not predicted:
        raise SparseFormatError("no candidate formats to autotune over")
    measured_known = {
        f: float(measured[f])
        for f in predicted
        if measured is not None and f in measured
    }
    effective = {f: measured_known.get(f, t) for f, t in predicted.items()}
    if conversion_uses is not None:
        effective = {
            f: t + conversion.get(f, 0.0) / conversion_uses
            for f, t in effective.items()
        }
    best = min(sorted(effective), key=lambda f: effective[f])
    if effective.get("csr", float("inf")) <= effective[best]:
        best = "csr"  # prefer the no-conversion format on ties
    return FormatDecision(
        format=best,
        stats=stats,
        predicted_s=predicted,
        hyb_width=K,
        measured_s=measured_known,
        evidence={
            f: "measured" if f in measured_known else "predicted"
            for f in predicted
        },
    )


def convert_for_spmv(
    A: DeviceCSR, fmt: str, hyb_width: int | None = None
) -> "DeviceCSR | DeviceELL | DeviceHYB":
    """Materialize ``A`` in ``fmt`` (no-op for ``"csr"``)."""
    if fmt == "csr":
        return A
    if fmt == "ell":
        return csr_to_ell(A)
    if fmt == "hyb":
        return csr_to_hyb(A, width=hyb_width)
    raise SparseFormatError(f"unknown SpMV format {fmt!r}")
