"""Sparse × dense matrix products on the device (``cusparseDcsrmm`` and
the ELL/HYB counterparts).

The same format trade-off that drives the SpMV autotuner applies to SpMM:
the padded ELL layout streams coalesced and is read once per launch
(amortized over the ``p`` columns of B), while CSR pays an irregular
gather per row segment.  All formats share the reference substrate
arithmetic (see :mod:`repro.cusparse.formats`): the gathered-B products
are formed in canonical CSR order and row-reduced with the identical
``np.add.reduceat`` call, so the format choice changes only the charged
time, never a float of C.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.memory import DeviceArray
from repro.cusparse.matrices import DeviceCSR
from repro.errors import SparseValueError
from repro.precision import as_f64, kernel_letter


def _substrate_mm(
    sub_rows: np.ndarray,
    sub_cols: np.ndarray,
    sub_vals: np.ndarray,
    B: DeviceArray,
    C: DeviceArray,
    n: int,
    alpha: float,
    beta: float,
) -> None:
    """Shared reference arithmetic for all SpMM formats.

    ``sub_*`` is the canonical CSR-order triple; the row starts are
    reconstructed from the row ids, so the ``reduceat`` segments are the
    exact segments :func:`csrmm` reduces — bit-identical across formats.
    """
    p = B.shape[1]
    gathered = as_f64(sub_vals)[:, None] * as_f64(B.data)[sub_cols]
    row_nnz = np.bincount(sub_rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=indptr[1:])
    nonempty = np.flatnonzero(row_nnz > 0)
    prod = np.zeros((n, p))
    if nonempty.size:
        prod[nonempty] = np.add.reduceat(gathered, indptr[nonempty], axis=0)
    if beta == 0.0:
        C.data[...] = alpha * prod
    else:
        C.data[...] = alpha * prod + beta * C.data


def _check_operands(A, B, C, n, m):
    if B.ndim != 2 or B.shape[0] != m:
        raise SparseValueError(f"spmm: A is {A.shape}, B is {B.shape}")
    p = B.shape[1]
    if C is not None and C.shape != (n, p):
        raise SparseValueError(f"spmm: C is {C.shape}, expected {(n, p)}")
    return p


def csrmm(
    A: DeviceCSR,
    B: DeviceArray,
    C: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """``C <- alpha * A @ B + beta * C`` with sparse A and dense B.

    Used when several vectors are multiplied at once (e.g. applying the
    operator to a block of Lanczos restart vectors).
    """
    dev = A.device
    chaos_check("cusparse.csrmm", dev)
    n, m = A.shape
    p = _check_operands(A, B, C, n, m)
    if C is None:
        C = dev.empty((n, p), dtype=A.val.data.dtype)
        beta = 0.0

    # per-row segment sums over the gathered B rows; reduceat shares
    # numpy's pairwise-summation kernel with thrust::reduce_by_key's
    # substrate, so CSR row sums here are bit-identical to a segmented
    # reduction over the same element order (operands upcast to fp64
    # before the reduce; the write into C quantizes to its storage dtype)
    gathered = as_f64(A.val.data)[:, None] * as_f64(B.data)[A.indices.data]
    row_nnz = np.diff(A.indptr.data)
    nonempty = np.flatnonzero(row_nnz > 0)
    prod = np.zeros((n, p))
    if nonempty.size:
        prod[nonempty] = np.add.reduceat(
            gathered, A.indptr.data[nonempty], axis=0
        )
    if beta == 0.0:
        C.data[...] = alpha * prod
    else:
        C.data[...] = alpha * prod + beta * C.data

    # single launch; matrix structure traffic amortized across the p columns
    vs = A.val.data.dtype.itemsize
    dt = dev.cost.spmm_time(n, A.nnz, p, itemsize=vs)
    dev.timeline.record(f"cusparse{kernel_letter(vs)}csrmm", "kernel", dt)
    dev.kernel_launches += 1
    dev.spmv_traffic_bytes += dev.cost.spmm_bytes(n, A.nnz, p, vs)
    return C


def ellmm(
    A,
    B: DeviceArray,
    C: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """``C <- alpha * A @ B + beta * C`` for a :class:`DeviceELL` matrix.

    One coalesced launch over the padded layout; on near-uniform row
    lengths (e.g. the k-means membership matrix at exactly one nonzero
    per row) it beats csrmm by skipping the row-pointer indirection.
    """
    dev = A.device
    chaos_check("cusparse.ellmm", dev)
    n, m = A.shape
    p = _check_operands(A, B, C, n, m)
    if C is None:
        C = dev.empty((n, p), dtype=A.sub_vals.dtype)
        beta = 0.0

    _substrate_mm(A.sub_rows, A.sub_cols, A.sub_vals, B, C, n, alpha, beta)
    vs = A.sub_vals.dtype.itemsize
    dt = dev.cost.ellmm_time(n, A.nnz, A.width, p, itemsize=vs)
    dev.timeline.record(f"cusparse{kernel_letter(vs)}ellmm", "kernel", dt)
    dev.kernel_launches += 1
    dev.spmv_traffic_bytes += dev.cost.ellmm_bytes(n, A.nnz, A.width, p, vs)
    return C


def hybmm(
    A,
    B: DeviceArray,
    C: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """``C <- alpha * A @ B + beta * C`` for a :class:`DeviceHYB` matrix.

    Two launches: the coalesced ELL pass plus the atomics-based COO pass
    over the spill tail, mirroring :func:`~repro.cusparse.spmv.hybmv`.
    """
    dev = A.device
    chaos_check("cusparse.hybmm", dev)
    n, m = A.shape
    p = _check_operands(A, B, C, n, m)
    if C is None:
        C = dev.empty((n, p), dtype=A.sub_vals.dtype)
        beta = 0.0

    _substrate_mm(A.sub_rows, A.sub_cols, A.sub_vals, B, C, n, alpha, beta)
    vs = A.sub_vals.dtype.itemsize
    letter = kernel_letter(vs)
    dev.timeline.record(
        f"cusparse{letter}hybmm[ell]",
        "kernel",
        dev.cost.ellmm_time(n, A.nnz_ell, A.width, p, itemsize=vs),
    )
    dev.kernel_launches += 1
    dev.spmv_traffic_bytes += dev.cost.ellmm_bytes(n, A.nnz_ell, A.width, p, vs)
    if A.nnz_coo > 0:
        dev.timeline.record(
            f"cusparse{letter}hybmm[coo]",
            "kernel",
            dev.cost.spmm_time(n, A.nnz_coo, p, itemsize=vs) * 2.0,
        )
        dev.kernel_launches += 1
        dev.spmv_traffic_bytes += dev.cost.spmm_bytes(n, A.nnz_coo, p, vs)
    return C


def spmm_any(
    A,
    B: DeviceArray,
    C: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """Format-dispatching SpMM: CSR, ELL or HYB operand, same semantics."""
    from repro.cusparse.formats import DeviceELL, DeviceHYB

    if isinstance(A, DeviceCSR):
        return csrmm(A, B, C, alpha=alpha, beta=beta)
    if isinstance(A, DeviceELL):
        return ellmm(A, B, C, alpha=alpha, beta=beta)
    if isinstance(A, DeviceHYB):
        return hybmm(A, B, C, alpha=alpha, beta=beta)
    raise SparseValueError(f"spmm: unsupported operand type {type(A).__name__}")
