"""Sparse × dense matrix products on the device (``cusparseDcsrmm``)."""

from __future__ import annotations

import numpy as np

from repro.cuda.memory import DeviceArray
from repro.cusparse.matrices import DeviceCSR
from repro.errors import SparseValueError


def csrmm(
    A: DeviceCSR,
    B: DeviceArray,
    C: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """``C <- alpha * A @ B + beta * C`` with sparse A and dense B.

    Used when several vectors are multiplied at once (e.g. applying the
    operator to a block of Lanczos restart vectors).
    """
    dev = A.device
    n, m = A.shape
    if B.ndim != 2 or B.shape[0] != m:
        raise SparseValueError(f"csrmm: A is {A.shape}, B is {B.shape}")
    p = B.shape[1]
    if C is None:
        C = dev.empty((n, p), dtype=np.float64)
        beta = 0.0
    elif C.shape != (n, p):
        raise SparseValueError(f"csrmm: C is {C.shape}, expected {(n, p)}")

    # per-row segment sums over the gathered B rows; reduceat shares
    # numpy's pairwise-summation kernel with thrust::reduce_by_key's
    # substrate, so CSR row sums here are bit-identical to a segmented
    # reduction over the same element order
    gathered = A.val.data[:, None] * B.data[A.indices.data]
    row_nnz = np.diff(A.indptr.data)
    nonempty = np.flatnonzero(row_nnz > 0)
    prod = np.zeros((n, p))
    if nonempty.size:
        prod[nonempty] = np.add.reduceat(
            gathered, A.indptr.data[nonempty], axis=0
        )
    if beta == 0.0:
        C.data[...] = alpha * prod
    else:
        C.data[...] = alpha * prod + beta * C.data

    # single launch; matrix structure traffic amortized across the p columns
    dt = dev.cost.spmm_time(n, A.nnz, p)
    dev.timeline.record("cusparseDcsrmm", "kernel", dt)
    dev.kernel_launches += 1
    return C
