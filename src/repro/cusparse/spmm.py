"""Sparse × dense matrix products on the device (``cusparseDcsrmm``)."""

from __future__ import annotations

import numpy as np

from repro.cuda.memory import DeviceArray
from repro.cusparse.matrices import DeviceCSR
from repro.errors import SparseValueError


def csrmm(
    A: DeviceCSR,
    B: DeviceArray,
    C: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> DeviceArray:
    """``C <- alpha * A @ B + beta * C`` with sparse A and dense B.

    Used when several vectors are multiplied at once (e.g. applying the
    operator to a block of Lanczos restart vectors).
    """
    dev = A.device
    n, m = A.shape
    if B.ndim != 2 or B.shape[0] != m:
        raise SparseValueError(f"csrmm: A is {A.shape}, B is {B.shape}")
    p = B.shape[1]
    if C is None:
        C = dev.empty((n, p), dtype=np.float64)
        beta = 0.0
    elif C.shape != (n, p):
        raise SparseValueError(f"csrmm: C is {C.shape}, expected {(n, p)}")

    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(A.indptr.data))
    prod = np.zeros((n, p))
    np.add.at(prod, rows, A.val.data[:, None] * B.data[A.indices.data])
    if beta == 0.0:
        C.data[...] = alpha * prod
    else:
        C.data[...] = alpha * prod + beta * C.data

    # p column sweeps of a csrmv-shaped access pattern
    dt = dev.cost.spmv_time(n, A.nnz) * p
    dev.timeline.record("cusparseDcsrmm", "kernel", dt)
    dev.kernel_launches += 1
    return C
