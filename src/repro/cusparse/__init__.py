"""Simulated cuSPARSE: device-resident sparse matrices and kernels.

Provides the calls Algorithm 2 and 3 of the paper make:

* ``cusparseDcsrmv``  → :func:`~repro.cusparse.spmv.csrmv`
* ``cusparseXcoo2csr`` → :func:`~repro.cusparse.conversions.coo2csr`
* plus ``coomv``, ``csr2csc``, ``csrmm`` and host↔device sparse movement.
"""

from repro.cusparse.matrices import DeviceCOO, DeviceCSR, coo_to_device, csr_to_device
from repro.cusparse.formats import (
    DeviceELL,
    DeviceHYB,
    FormatDecision,
    RowStats,
    autotune_format,
    autotune_spmm_format,
    convert_for_spmv,
    csr_to_ell,
    csr_to_hyb,
    row_stats,
)
from repro.cusparse.conversions import coo2csr, csr2csc, csr2coo
from repro.cusparse.partition import (
    CSRShard,
    PartitionedCSR,
    partition_bounds,
    partition_csr,
    spmv_partitioned,
)
from repro.cusparse.spmv import coomv, csrmv, ellmv, hybmv, spmv_any
from repro.cusparse.spmm import csrmm, ellmm, hybmm, spmm_any

__all__ = [
    "DeviceCOO",
    "DeviceCSR",
    "DeviceELL",
    "DeviceHYB",
    "FormatDecision",
    "RowStats",
    "autotune_format",
    "autotune_spmm_format",
    "convert_for_spmv",
    "csr_to_ell",
    "csr_to_hyb",
    "row_stats",
    "ellmv",
    "hybmv",
    "spmv_any",
    "CSRShard",
    "PartitionedCSR",
    "partition_bounds",
    "partition_csr",
    "spmv_partitioned",
    "coo_to_device",
    "csr_to_device",
    "coo2csr",
    "csr2csc",
    "csr2coo",
    "coomv",
    "csrmv",
    "csrmm",
    "ellmm",
    "hybmm",
    "spmm_any",
]
