"""Table V / Figure 5 — spectral clustering on Syn200 (SBM, k=200).

The medium-size, many-cluster regime: the eigensolver speedup is modest
("mainly constrained by the CPU-based routines"), while k-means gains
>100x over Matlab's random-seeded sweep."""

import pytest

from repro.bench.report import format_comparison, format_paper_check
from repro.core.pipeline import SpectralClustering
from repro.datasets.registry import load_dataset
from repro.metrics.external import adjusted_rand_index

from conftest import BENCH_SCALES


def test_table5_report(comparison, write_table):
    r = comparison("syn200")
    write_table(
        "table5_syn200", format_comparison(r) + "\n\n" + format_paper_check(r)
    )
    for stage, cols in r.projection.items():
        assert cols["cuda"] <= cols["matlab"], stage
        assert cols["cuda"] <= cols["python"], stage


def test_kmeans_speedup_large_over_matlab(comparison):
    """Paper Table V: 38.4 s vs 0.025 s — >100x over Matlab."""
    r = comparison("syn200")
    km = r.projection["kmeans"]
    assert km["matlab"] / km["cuda"] > 100


def test_eigensolver_speedup_modest(comparison):
    """'a slight improvement in computing the eigenvectors' (paper: 1.7x
    over Matlab)."""
    r = comparison("syn200")
    eig = r.projection["eigensolver"]
    assert 1.0 <= eig["matlab"] / eig["cuda"] < 20


def test_sbm_recovery_quality(comparison):
    r = comparison("syn200")
    assert r.quality["cuda"] > 0.8


@pytest.fixture(scope="module")
def syn_ds():
    return load_dataset("syn200", scale=BENCH_SCALES["syn200"], seed=0)


def test_bench_full_pipeline(benchmark, syn_ds):
    sc = SpectralClustering(n_clusters=syn_ds.n_clusters, eig_tol=1e-8, seed=0)
    res = benchmark(sc.fit, graph=syn_ds.graph)
    assert adjusted_rand_index(res.labels, syn_ds.labels) > 0.8


def test_bench_kmeans_stage(benchmark, syn_ds):
    from repro.baselines.reference import reference_spectral_clustering
    from repro.cuda.device import Device
    from repro.kmeans.gpu import kmeans_device

    ref = reference_spectral_clustering(
        graph=syn_ds.graph, n_clusters=syn_ds.n_clusters, eig_tol=1e-8, seed=0
    )

    def run():
        kmeans_device(Device(), ref.embedding, syn_ds.n_clusters, seed=0)

    benchmark(run)
