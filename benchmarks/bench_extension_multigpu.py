"""Extension — multi-GPU k-means scalability.

The paper's platform model allows "several GPUs as co-processors" (§III.B)
though its evaluation uses one; this bench carries Algorithm 4 to 1-4
simulated K20c devices and maps the strong-scaling curve, including the
launch-overhead floor that caps speedup on small shards."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.init import kmeans_plus_plus
from repro.kmeans.multi_gpu import kmeans_multi_device


@pytest.fixture(scope="module")
def workload(rng=None):
    r = np.random.default_rng(0)
    k, d, n = 16, 16, 80_000
    centers = r.standard_normal((k, d)) * 8
    V = centers[r.integers(0, k, n)] + r.standard_normal((n, d))
    C0 = kmeans_plus_plus(V[:4000], k, np.random.default_rng(1))
    return V, k, C0


def test_extension_multigpu_report(workload, write_table):
    V, k, C0 = workload
    d1 = Device()
    base = kmeans_device(d1, V, k, initial_centroids=C0, max_iter=4)
    t1 = d1.timeline.total(tag="kmeans")

    rows = [f"{'1 (Alg. 4)':<12}{t1:>14.5f}{1.0:>10.2f}x"]
    speedups = {1: 1.0}
    for n_dev in (2, 3, 4):
        res, tm = kmeans_multi_device(
            [Device() for _ in range(n_dev)], V, k,
            initial_centroids=C0, max_iter=4,
        )
        assert np.array_equal(res.labels, base.labels)
        s = t1 / tm.parallel_seconds
        speedups[n_dev] = s
        rows.append(f"{n_dev:<12}{tm.parallel_seconds:>14.5f}{s:>10.2f}x")

    lines = [
        f"Extension: multi-GPU k-means strong scaling "
        f"(n={V.shape[0]}, k={k}, d={V.shape[1]}, 4 iters)",
        f"{'devices':<12}{'makespan/s':>14}{'speedup':>11}",
        "-" * 38,
        *rows,
        "",
        "identical labels on every configuration (asserted).",
    ]
    write_table("extension_multigpu", "\n".join(lines))

    # scaling is real but sub-linear (launch overheads + host allreduce)
    assert speedups[2] > 1.3
    assert speedups[4] > speedups[2]
    assert speedups[4] < 4.0


def test_bench_two_devices(benchmark, workload):
    V, k, C0 = workload
    benchmark.pedantic(
        lambda: kmeans_multi_device(
            [Device(), Device()], V, k, initial_centroids=C0, max_iter=2
        ),
        rounds=2, iterations=1,
    )
