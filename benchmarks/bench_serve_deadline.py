"""Deadline-driven serving: preemption, speculation, and the disk cache.

Three serving-tier claims on the simulated clock, each measured against
its own observational baseline on the identical trace:

* **preemption** — on a deadline-heavy workload (background fit batches
  plus movable background predicts, with urgent warm predicts landing
  mid-burst) preemptive EDF converts every baseline miss into a meet
  (>=30% miss reduction gated) at equal throughput, and the arithmetic
  is bit-identical because preemption only rewrites placement;
* **speculation** — on a recurring-fingerprint trace a non-zero
  speculation window coalesces arrivals into fewer, larger batches;
* **persistence** — a restarted service warms from the on-disk cache:
  zero cold fits the second time around, bit-identical labels.

``serve_deadline_summary()`` is consumed by ``bench_regression.py`` into
the ``serve_deadline`` section of ``BENCH_regression.json``, which
``check_regression.py`` gates in CI.
"""

import tempfile

import numpy as np
import pytest

from repro.datasets.sbm import stochastic_block_model
from repro.serve import (
    ClusterService,
    ClusterRequest,
    PredictRequest,
    ServiceConfig,
)
from repro.sparse.construct import from_edge_list

N_FITS = 6
N_BG_PREDICTS = 8
MIN_MISS_REDUCTION = 0.30
MIN_THROUGHPUT_RATIO = 0.95


def _graph():
    rng = np.random.default_rng(7)
    sizes = [30] * 4
    edges, _ = stochastic_block_model(sizes, p_in=0.6, p_out=0.02, rng=rng)
    return from_edge_list(edges, n_nodes=sum(sizes))


def _config(preemption=True, speculation_window=0.0, cache_dir=None):
    return ServiceConfig(
        n_devices=1, streams_per_device=1, max_batch=4, cache_entries=32,
        preemption=preemption, speculation_window=speculation_window,
        cache_dir=cache_dir,
    )


def _fit_spec(graph):
    return ClusterRequest(
        request_id="fitspec", arrival=0.0, graph=graph, n_clusters=4
    )


def _background(graph, shared):
    """One model-warming predict, then a stream of fit batches whose
    k-means tails are the preemption victims."""
    trace = [PredictRequest(request_id="pwarm", fit=shared, arrival=0.0)]
    for i in range(N_FITS):
        trace.append(ClusterRequest(
            request_id=f"f{i}", arrival=0.005 + i * 1e-4,
            graph=graph, n_clusters=4,
        ))
    return trace


def _deadline_trace(graph, shared):
    """The deadline-heavy workload, calibrated by a probe run.

    A probe (preemption off) locates the k-means spans and the warm
    predict duration; urgent warm predicts are then timed to land inside
    busy windows with deadlines that FIFO placement misses but a
    boundary split or queue-jump insert meets.  Both runs (preemption on
    and off) replay this identical trace.
    """
    probe = ClusterService(_config(preemption=False))
    probe.process(_background(graph, shared))
    events = list(probe.scheduler.schedule.events)
    kwin = sorted((e.start, e.end) for e in events if ":kmeans[" in e.name)
    pdur = next(e.duration for e in events if e.name == "predict[pwarm]")
    fifo_free = max(e.end for e in events)

    trace = _background(graph, shared)
    # urgent predicts inside alternating k-means spans: a FIFO placement
    # queues behind the whole backlog, a split at the next Lloyd
    # boundary meets the deadline
    prev_end, n_urgent = 0.0, 0
    for i, (lo, hi) in enumerate(kwin):
        if i % 2 == 0:
            continue  # space the urgents so their placements stay apart
        arrival = max(lo + 0.25 * (hi - lo), prev_end)
        if arrival >= hi:
            continue
        fifo_end = fifo_free + (n_urgent + 1) * pdur
        trace.append(PredictRequest(
            request_id=f"u{i}", fit=shared, arrival=arrival,
            deadline=arrival + 0.5 * (fifo_end - arrival),
        ))
        prev_end = hi + pdur
        n_urgent += 1
    # a burst of movable no-deadline predicts, then an urgent
    # queue-jumper that inserts ahead of them
    t0 = fifo_free + N_BG_PREDICTS * pdur
    for b in range(N_BG_PREDICTS):
        trace.append(PredictRequest(
            request_id=f"bg{b}", fit=shared, arrival=t0,
        ))
    arrival = t0 + 1.5 * pdur
    trace.append(PredictRequest(
        request_id="uburst", fit=shared, arrival=arrival,
        deadline=arrival + 3.0 * pdur,
    ))
    return trace


def _labels_by_id(responses):
    return {
        r.request_id: (
            None if getattr(r, "labels", None) is None else r.labels.tobytes()
        )
        for r in responses
    }


def _recurring_trace(graph, gap, n):
    return [
        ClusterRequest(
            request_id=f"r{i}", arrival=i * gap, graph=graph, n_clusters=4
        )
        for i in range(n)
    ]


def _preemption_section(graph, shared):
    trace = _deadline_trace(graph, shared)
    runs = {}
    for flag in (False, True):
        service = ClusterService(_config(preemption=flag))
        responses, report = service.process(trace)
        assert all(r.ok for r in responses), [
            (r.request_id, r.error) for r in responses if not r.ok
        ]
        runs[flag] = (responses, report)
    r_off, off = runs[False]
    r_on, on = runs[True]
    misses_off = off.predict["deadline_misses"]
    misses_on = on.predict["deadline_misses"]
    reduction = (
        (misses_off - misses_on) / misses_off if misses_off > 0 else 0.0
    )
    return {
        "n_requests": len(trace),
        "with_deadline": misses_off + off.predict["deadlines_met"],
        "min_miss_reduction": MIN_MISS_REDUCTION,
        "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
        "deadline_misses_baseline": misses_off,
        "deadline_misses_preemptive": misses_on,
        "miss_reduction": reduction,
        "preemptions": on.scheduler["preemptions"],
        "preemption_splits": on.scheduler["preemption_splits"],
        "preemption_inserts": on.scheduler["preemption_inserts"],
        "saved_misses": on.scheduler["saved_misses"],
        "ctx_switch_s": on.scheduler["ctx_switch_s"],
        "throughput_rps": on.throughput_rps,
        "baseline_throughput_rps": off.throughput_rps,
        "throughput_ratio": on.throughput_rps / off.throughput_rps,
        "labels_bit_identical": _labels_by_id(r_on) == _labels_by_id(r_off),
    }


def _speculation_section(graph):
    # calibrate the metronome gap off one lone request's makespan
    probe = ClusterService(_config())
    _, rep = probe.process(_recurring_trace(graph, 0.0, 1))
    gap = 4.0 * rep.makespan
    trace = _recurring_trace(graph, gap, 8)
    base_r, base = ClusterService(_config()).process(trace)
    spec_r, spec = ClusterService(
        _config(speculation_window=1.5 * gap)
    ).process(trace)
    return {
        "gap_s": gap,
        "window_s": 1.5 * gap,
        "spec_holds": spec.batches["spec_holds"],
        "spec_hits": spec.batches["spec_hits"],
        "spec_misses": spec.batches["spec_misses"],
        "spec_hold_s": spec.batches["spec_hold_s"],
        "n_batches_baseline": base.batches["n_batches"],
        "n_batches_speculative": spec.batches["n_batches"],
        "mean_batch_baseline": base.batches["mean_batch_size"],
        "mean_batch_speculative": spec.batches["mean_batch_size"],
        "labels_bit_identical": (
            _labels_by_id(base_r) == _labels_by_id(spec_r)
        ),
    }


def _persistence_section(graph, shared):
    trace = _background(graph, shared)
    with tempfile.TemporaryDirectory() as root:
        first_r, first = ClusterService(
            _config(cache_dir=root)
        ).process(trace)
        second_r, second = ClusterService(
            _config(cache_dir=root)
        ).process(trace)
    return {
        "disk_writes_first": first.cache["disk_writes"],
        "disk_bytes_written_first": first.cache["disk_bytes_written"],
        "disk_hits_restarted": second.cache["disk_hits"],
        "cold_fits_first": first.predict["cold_fits"],
        "cold_fits_restarted": second.predict["cold_fits"],
        "labels_bit_identical": (
            _labels_by_id(first_r) == _labels_by_id(second_r)
        ),
    }


_SUMMARY_CACHE: dict = {}


def serve_deadline_summary() -> dict:
    """Machine-readable deadline-tier summary for BENCH_regression.json."""
    if "summary" not in _SUMMARY_CACHE:
        graph = _graph()
        shared = _fit_spec(graph)
        _SUMMARY_CACHE["summary"] = {
            "preemption": _preemption_section(graph, shared),
            "speculation": _speculation_section(graph),
            "persistence": _persistence_section(graph, shared),
        }
    return _SUMMARY_CACHE["summary"]


@pytest.fixture(scope="module")
def summary():
    return serve_deadline_summary()


def test_preemption_reduces_misses(summary):
    pre = summary["preemption"]
    assert pre["deadline_misses_baseline"] > 0, (
        "workload produced no baseline misses — nothing to save"
    )
    assert pre["miss_reduction"] >= MIN_MISS_REDUCTION, (
        f"preemption only cut misses by {pre['miss_reduction']:.0%} "
        f"({pre['deadline_misses_baseline']} -> "
        f"{pre['deadline_misses_preemptive']})"
    )
    assert pre["preemptions"] > 0
    assert pre["saved_misses"] > 0


def test_preemption_exercises_both_kinds(summary):
    pre = summary["preemption"]
    assert pre["preemption_splits"] > 0, "no boundary split fired"
    assert pre["preemption_inserts"] > 0, "no queue-jump insert fired"


def test_preemption_throughput_equal(summary):
    pre = summary["preemption"]
    assert pre["throughput_ratio"] >= MIN_THROUGHPUT_RATIO, (
        f"preemption cost {1 - pre['throughput_ratio']:.1%} throughput"
    )


def test_preemption_results_bit_identical(summary):
    assert summary["preemption"]["labels_bit_identical"] is True


def test_speculation_coalesces_batches(summary):
    spec = summary["speculation"]
    assert spec["spec_holds"] > 0
    assert spec["spec_hits"] > 0
    assert spec["n_batches_speculative"] < spec["n_batches_baseline"]
    assert spec["mean_batch_speculative"] > spec["mean_batch_baseline"]
    assert spec["labels_bit_identical"] is True


def test_restart_warms_from_disk(summary):
    per = summary["persistence"]
    assert per["disk_writes_first"] > 0
    assert per["disk_hits_restarted"] > 0
    assert per["cold_fits_first"] > 0
    assert per["cold_fits_restarted"] == 0
    assert per["labels_bit_identical"] is True


def test_report_table(summary, write_table):
    pre = summary["preemption"]
    spec = summary["speculation"]
    per = summary["persistence"]
    lines = [
        "deadline-driven serving",
        "=======================",
        f"misses baseline -> preemptive : "
        f"{pre['deadline_misses_baseline']} -> "
        f"{pre['deadline_misses_preemptive']} "
        f"({pre['miss_reduction']:.0%} reduction)",
        f"preemptions                   : {pre['preemptions']} "
        f"({pre['preemption_splits']} splits, "
        f"{pre['preemption_inserts']} inserts)",
        f"throughput ratio (on/off)     : {pre['throughput_ratio']:.3f}",
        f"spec holds/hits               : "
        f"{spec['spec_holds']}/{spec['spec_hits']}",
        f"batches baseline -> spec      : {spec['n_batches_baseline']} -> "
        f"{spec['n_batches_speculative']}",
        f"restart disk hits             : {per['disk_hits_restarted']} "
        f"(cold fits {per['cold_fits_first']} -> "
        f"{per['cold_fits_restarted']})",
    ]
    write_table("serve_deadline", "\n".join(lines))


def test_serve_deadline_wall_time(benchmark):
    """Wall-clock cost of the deadline-heavy path (regression axis)."""
    graph = _graph()
    shared = _fit_spec(graph)
    trace = _deadline_trace(graph, shared)

    def run():
        return ClusterService(_config()).process(trace)

    responses, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.ok for r in responses)
