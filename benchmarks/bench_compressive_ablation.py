"""Extension — compressive embedding tier ablation with ARI-tolerance tiers.

The compressive tier trades eigensolver *accuracy* for *applications*: a
Chebyshev step-filter applied to ``d`` random signals replaces the exact
Lanczos basis with a sketch whose cost is a fixed number of SpMMs,
independent of spectral gaps.  This bench sweeps the
``filter order x signal count`` grid over the four Table II workloads at
bench scale and records, per cell:

* ``ari`` / ``ari_vs_exact`` — quality against ground truth and against
  the exact fp64 Lanczos labels;
* ``total_simulated_s`` / ``eig_simulated_s`` — modeled device time;
* ``ledger_ok`` — the analytic SpMM traffic plan
  (``applications x bytes-per-application``) reproduced the metered
  bytes exactly (``ledger == meter``), at fp64 in every cell and at
  fp32 in a dedicated probe cell.

One **large cell** runs the tier end-to-end on the paper-scale synthetic
SBM (``sbm50k``, n=50 000, k=20) — the workload the subsystem exists
for, where an exact solve is not even benched.  It gates on an absolute
truth-ARI floor and a modeled-time budget.

The tolerance tiers live *here*, next to the measurements they gate, and
are copied into ``BENCH_regression.json`` so ``check_regression.py`` can
enforce them in CI:

* the **default cell** (order 48, default signal count) must reach
  ``MIN_ARI_RATIO_VS_EXACT`` x the exact-path ARI on every dataset —
  on dblp the exact path is itself near-random (ARI ~0.02) and the
  compressive sketch beats it outright (~0.06), so the ratio gate holds
  with 3x headroom rather than hiding the cliff;
* every cell's ``ledger_ok`` must stay True — byte accounting is exact;
* the large cell stays under ``LARGE_SIM_BUDGET_S`` modeled seconds at
  ``ari >= LARGE_ARI_FLOOR`` with ``n >= LARGE_MIN_N``;
* absolute per-dataset truth-ARI floors (``ARI_FLOORS``) document the
  measured quality honestly — set below observed values, not
  aspirational targets.

The grid is recomputed at most once per process (the large cell costs
minutes of wall time); ``bench_regression.py`` reuses the memoized
summary when both files run in one pytest invocation.
"""

import numpy as np
import pytest

from repro.compressive.filters import DEFAULT_FILTER_ORDER, default_n_signals
from repro.core.pipeline import SpectralClustering
from repro.datasets.registry import load_dataset
from repro.metrics.external import adjusted_rand_index

from conftest import BENCH_SCALES

#: filter orders swept per dataset; DEFAULT_FILTER_ORDER is the default
FILTER_ORDERS = (24, DEFAULT_FILTER_ORDER)

#: signal-count tiers swept per dataset (resolved per-k at runtime)
SIGNAL_TIERS = ("dhalf", "dfull")

#: the default cell — the configuration a plain
#: ``embedding="compressive"`` request runs
DEFAULT_CELL = f"o{DEFAULT_FILTER_ORDER}_dfull"

#: the acceptance bar: the default cell's labels must agree with the
#: exact fp64 Lanczos labels' ground-truth ARI to within this factor on
#: EVERY bench dataset
MIN_ARI_RATIO_VS_EXACT = 0.9

#: absolute truth-ARI floors for the default cell, set with headroom
#: below measured values (dti 0.420, fb 1.000, syn200 0.903, dblp 0.061)
ARI_FLOORS = {
    "dti": 0.35,
    "fb": 0.99,
    "syn200": 0.85,
    "dblp": 0.04,
}

#: large-cell contract: paper-scale n, quality floor, modeled-time budget
LARGE_DATASET = "sbm50k"
LARGE_MIN_N = 50_000
LARGE_ARI_FLOOR = 0.90  # measured 0.950
LARGE_SIM_BUDGET_S = 1.25  # measured 1.024 simulated seconds

_cache: dict | None = None


def _cell_key(order: int, tier: str) -> str:
    return f"o{order}_{tier}"


def _tier_signals(tier: str, k: int) -> int:
    d = default_n_signals(k)
    return d if tier == "dfull" else max(8, d // 2)


def _fit(ds, **kw):
    sc = SpectralClustering(
        n_clusters=ds.n_clusters, eig_tol=1e-8, seed=0, **kw
    )
    if ds.points is not None:
        return sc.fit(X=ds.points, edges=ds.edges)
    return sc.fit(graph=ds.graph)


def _cell_record(res, exact_labels, truth) -> dict:
    stats = res.eig_stats
    return {
        "filter_order": stats["filter_order"],
        "n_signals": stats["n_signals"],
        "ari": (
            adjusted_rand_index(res.labels, truth)
            if truth is not None
            else None
        ),
        "ari_vs_exact": (
            adjusted_rand_index(res.labels, exact_labels)
            if exact_labels is not None
            else None
        ),
        "total_simulated_s": res.profile.total,
        "eig_simulated_s": res.profile.by_stage["eigensolver"],
        "spmv_bytes": stats["spmv_bytes"],
        "ledger_ok": stats["spmv_bytes"] == stats["ledger_bytes"],
    }


def compressive_ablation_summary() -> dict:
    """Machine-readable compressive grid (consumed by
    BENCH_regression.json).

    Per dataset: one entry per (filter order, signal tier) cell with
    quality, modeled time, and byte-ledger evidence, plus the exact-path
    baseline the ratio gate compares against.  ``large`` is the
    paper-scale SBM cell at defaults.  ``fp32_ledger_ok`` pins the
    analytic traffic plan at reduced storage width too.
    """
    global _cache
    if _cache is not None:
        return _cache
    out: dict = {
        "cells": [
            _cell_key(o, t) for o in FILTER_ORDERS for t in SIGNAL_TIERS
        ],
        "default_cell": DEFAULT_CELL,
        "min_ari_ratio_vs_exact": MIN_ARI_RATIO_VS_EXACT,
        "datasets": {},
    }
    for name in sorted(BENCH_SCALES):
        ds = load_dataset(name, scale=BENCH_SCALES[name], seed=0)
        exact = _fit(ds)
        ari_exact = (
            adjusted_rand_index(exact.labels, ds.labels)
            if ds.labels is not None
            else None
        )
        cells = {
            _cell_key(order, tier): _cell_record(
                _fit(
                    ds,
                    embedding="compressive",
                    filter_order=order,
                    n_signals=_tier_signals(tier, ds.n_clusters),
                ),
                exact.labels,
                ds.labels,
            )
            for order in FILTER_ORDERS
            for tier in SIGNAL_TIERS
        }
        out["datasets"][name] = {
            "scale": BENCH_SCALES[name],
            "k": ds.n_clusters,
            "n": int(exact.embedding.shape[0]),
            "ari_exact": ari_exact,
            "exact_simulated_s": exact.profile.total,
            "ari_floor": ARI_FLOORS[name],
            "cells": cells,
        }
    # fp32 byte-ledger probe: one default-cell fit at reduced width
    ds = load_dataset("syn200", scale=BENCH_SCALES["syn200"], seed=0)
    res32 = _fit(ds, embedding="compressive", precision="fp32")
    out["fp32_ledger_ok"] = (
        res32.eig_stats["spmv_bytes"] == res32.eig_stats["ledger_bytes"]
    )
    # the paper-scale cell: n=50k SBM end-to-end at defaults
    large = load_dataset(LARGE_DATASET, scale=1.0, seed=0)
    res = _fit(large, embedding="compressive")
    out["large"] = {
        "dataset": LARGE_DATASET,
        "n": large.n,
        "k": large.n_clusters,
        "min_n": LARGE_MIN_N,
        "ari_floor": LARGE_ARI_FLOOR,
        "sim_budget_s": LARGE_SIM_BUDGET_S,
        **_cell_record(res, None, large.labels),
    }
    _cache = out
    return out


@pytest.fixture(scope="module")
def summary():
    return compressive_ablation_summary()


def test_compressive_ablation_report(summary, write_table):
    lines = [
        "Extension: compressive embedding tier ablation "
        "(Chebyshev filter order x signal count, coherence-sampled k-means)",
        f"{'dataset':<9}{'cell':<12}{'order':>6}{'d':>5}{'ari':>8}"
        f"{'vs exact':>9}{'sim s':>10}{'ledger':>8}",
        "-" * 67,
    ]
    for name, wl in summary["datasets"].items():
        lines.append(
            f"{name:<9}{'exact':<12}{'-':>6}{'-':>5}"
            f"{wl['ari_exact']:>8.3f}{'1.000':>9}"
            f"{wl['exact_simulated_s']:>10.4f}{'-':>8}"
        )
        for cell, c in wl["cells"].items():
            lines.append(
                f"{name:<9}{cell:<12}{c['filter_order']:>6}"
                f"{c['n_signals']:>5}{c['ari']:>8.3f}"
                f"{c['ari_vs_exact']:>9.3f}{c['total_simulated_s']:>10.4f}"
                f"{'ok' if c['ledger_ok'] else 'FAIL':>8}"
            )
    lg = summary["large"]
    lines.append(
        f"{lg['dataset']:<9}{'default':<12}{lg['filter_order']:>6}"
        f"{lg['n_signals']:>5}{lg['ari']:>8.3f}{'-':>9}"
        f"{lg['total_simulated_s']:>10.4f}"
        f"{'ok' if lg['ledger_ok'] else 'FAIL':>8}"
    )
    lines.append(
        f"large cell: n={lg['n']:,} under {lg['sim_budget_s']}s modeled "
        f"budget  |  default-cell bar: >={summary['min_ari_ratio_vs_exact']}x "
        f"exact-path ARI on every dataset  |  fp32 ledger ok: "
        f"{summary['fp32_ledger_ok']}"
    )
    write_table("compressive_ablation", "\n".join(lines))


def test_default_cell_inside_ari_band(summary):
    """The acceptance criterion: the default compressive configuration
    reaches >= 0.9x the exact path's ground-truth ARI on all four bench
    datasets, and clears the absolute per-dataset floor."""
    for name, wl in summary["datasets"].items():
        c = wl["cells"][summary["default_cell"]]
        floor = summary["min_ari_ratio_vs_exact"] * wl["ari_exact"]
        assert c["ari"] >= floor, (
            f"{name}: default-cell ARI {c['ari']:.3f} below "
            f"{summary['min_ari_ratio_vs_exact']}x exact "
            f"({wl['ari_exact']:.3f})"
        )
        assert c["ari"] >= wl["ari_floor"], (
            f"{name}: default-cell ARI {c['ari']:.3f} below absolute "
            f"floor {wl['ari_floor']}"
        )


def test_ledger_equals_meter_in_every_cell(summary):
    """Byte accounting is exact: the analytic applications x
    bytes-per-application plan reproduces the metered SpMM traffic in
    every fp64 cell, in the fp32 probe, and in the large cell."""
    for name, wl in summary["datasets"].items():
        for cell, c in wl["cells"].items():
            assert c["ledger_ok"], f"{name}.{cell}: ledger != meter"
            assert c["spmv_bytes"] > 0
    assert summary["fp32_ledger_ok"] is True
    assert summary["large"]["ledger_ok"] is True


def test_large_cell_clears_contract(summary):
    """The subsystem's reason to exist: an n>=50k SBM clusters end-to-end
    inside the modeled-time budget at high quality."""
    lg = summary["large"]
    assert lg["n"] >= lg["min_n"]
    assert lg["ari"] >= lg["ari_floor"], (
        f"large cell ARI {lg['ari']:.3f} below floor {lg['ari_floor']}"
    )
    assert lg["total_simulated_s"] <= lg["sim_budget_s"], (
        f"large cell modeled time {lg['total_simulated_s']:.4f}s over "
        f"budget {lg['sim_budget_s']}s"
    )


def test_more_signals_never_free(summary):
    """Sanity on the cost axis: widening the sketch (more signals) at a
    fixed order strictly increases modeled eigensolver time."""
    for name, wl in summary["datasets"].items():
        for order in FILTER_ORDERS:
            half = wl["cells"][_cell_key(order, "dhalf")]
            full = wl["cells"][_cell_key(order, "dfull")]
            if half["n_signals"] < full["n_signals"]:
                assert half["eig_simulated_s"] < full["eig_simulated_s"], (
                    f"{name} o{order}: wider sketch did not cost more"
                )


def test_grid_is_deterministic(summary):
    """Same (dataset, scale, seed) → the memoized summary is the frozen
    record's source of truth; spot-check one cell reproduces."""
    ds = load_dataset("dti", scale=BENCH_SCALES["dti"], seed=0)
    res = _fit(
        ds,
        embedding="compressive",
        filter_order=DEFAULT_FILTER_ORDER,
        n_signals=_tier_signals("dfull", ds.n_clusters),
    )
    c = summary["datasets"]["dti"]["cells"][DEFAULT_CELL]
    assert adjusted_rand_index(res.labels, ds.labels) == pytest.approx(
        c["ari"], abs=0
    )
    assert res.profile.total == pytest.approx(
        c["total_simulated_s"], abs=0
    )
    assert np.isfinite(c["spmv_bytes"])
