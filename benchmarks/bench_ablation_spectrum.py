"""Ablation — largest eigenvalues of D⁻¹W vs smallest of L_n, and the
symmetric vs random-walk operator realization.

§IV.B: "computing the largest eigenvalues results in better numerical
stability and convergent behavior, [so] we focus our attention on computing
the eigenvectors corresponding to the largest k eigenvalues of D⁻¹W."
This bench verifies the two formulations agree and measures the
convergence-behavior difference that motivates the choice."""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.datasets.registry import load_dataset
from repro.linalg.eigsolver import SymEigProblem
from repro.graph.laplacian import laplacian, sym_normalized_adjacency
from repro.metrics.external import adjusted_rand_index
from repro.sparse.construct import identity


@pytest.fixture(scope="module")
def ds():
    return load_dataset("syn200", scale=0.05, seed=0)


def _solve(op, n, k, which):
    prob = SymEigProblem(n=n, k=k, which=which, tol=1e-8, seed=0)
    while not prob.converged():
        prob.take_step()
        if prob.needs_matvec():
            prob.put_vector(op.matvec(prob.get_vector()))
    theta, U = prob.find_eigenvectors()
    return theta, U, prob.result


def test_ablation_spectrum_report(ds, write_table):
    W = ds.graph
    k = ds.n_clusters
    n = W.shape[0]
    S = sym_normalized_adjacency(W)
    # L_sym = I - S has the mirrored spectrum
    L = identity(n).add(S.scaled(-1.0))

    t_la, _, r_la = _solve(S, n, k, "LA")
    t_sa, _, r_sa = _solve(L, n, k, "SA")

    lines = [
        f"Ablation: spectrum end (syn200 scaled, n={n}, k={k})",
        f"{'formulation':<28}{'n_op':>8}{'restarts':>10}{'conv':>6}",
        "-" * 54,
        f"{'largest of D^-1/2WD^-1/2':<28}{r_la.n_op:>8}{r_la.n_restarts:>10}"
        f"{str(r_la.converged):>6}",
        f"{'smallest of L_n':<28}{r_sa.n_op:>8}{r_sa.n_restarts:>10}"
        f"{str(r_sa.converged):>6}",
        f"spectra agree: max |(1 - λ_L) - λ_W| = "
        f"{np.max(np.abs((1 - t_sa)[::-1] - t_la[::-1])):.2e}",
    ]
    write_table("ablation_spectrum", "\n".join(lines))
    # the two formulations are the same problem
    assert np.allclose(np.sort(1.0 - t_sa), np.sort(t_la), atol=1e-6)


def test_sym_vs_rw_operator_end_to_end(ds):
    """The 'rw' path feeds the *nonsymmetric* D⁻¹W through symmetric
    Lanczos, exactly as the paper describes doing.  The result: the same
    partition, but eigenvalues perturbed at the ~1e-3 level (we observe
    λ_max slightly above the theoretical bound of 1) — the numerical
    wrinkle that makes the symmetric similarity transform the sound
    default."""
    W = ds.graph
    sym = SpectralClustering(n_clusters=ds.n_clusters, operator="sym", seed=0)
    rw = SpectralClustering(n_clusters=ds.n_clusters, operator="rw", seed=0)
    r_sym = sym.fit(graph=W)
    r_rw = rw.fit(graph=W)
    # approximately the same spectrum (identical in exact arithmetic)...
    assert np.allclose(
        np.sort(r_sym.eigenvalues), np.sort(r_rw.eigenvalues), atol=5e-2
    )
    # ...but not to solver precision: the rw route is measurably perturbed
    # while the sym route pins the top eigenvalue at exactly 1
    assert abs(r_sym.eigenvalues[0] - 1.0) < 1e-8
    a = adjusted_rand_index(r_sym.labels, ds.labels)
    b = adjusted_rand_index(r_rw.labels, ds.labels)
    assert min(a, b) > 0.7


def test_bench_la_formulation(benchmark, ds):
    S = sym_normalized_adjacency(ds.graph)
    n = ds.graph.shape[0]
    benchmark.pedantic(
        _solve, args=(S, n, ds.n_clusters, "LA"), rounds=2, iterations=1
    )
