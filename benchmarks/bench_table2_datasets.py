"""Table II — dataset statistics.

Regenerates the dataset inventory: for each Table II workload, the scaled
instance actually benchmarked plus the paper-scale statistics the
generators are matched against.  The pytest-benchmark timings measure the
generators themselves.
"""

import pytest

from repro.datasets.registry import PAPER_STATS, load_dataset

from conftest import BENCH_SCALES


def _row(name, ds):
    p = PAPER_STATS[name]
    return (
        f"{name:<8}{ds.n:>9}{ds.n_edges:>10}{ds.n_clusters:>7}"
        f"{p['nodes']:>10}{p['edges']:>10}{p['clusters']:>9}"
    )


def test_table2_report(write_table):
    lines = [
        "Table II — datasets (scaled instance | paper scale)",
        f"{'name':<8}{'nodes':>9}{'edges':>10}{'k':>7}"
        f"{'p.nodes':>10}{'p.edges':>10}{'p.k':>9}",
        "-" * 63,
    ]
    for name, scale in BENCH_SCALES.items():
        ds = load_dataset(name, scale=scale, seed=0)
        lines.append(_row(name, ds))
    write_table("table2_datasets", "\n".join(lines))


@pytest.mark.parametrize("name", ["fb", "syn200"])
def test_bench_graph_generation(benchmark, name):
    benchmark(load_dataset, name, scale=BENCH_SCALES[name], seed=0)


def test_bench_dti_generation(benchmark):
    benchmark(load_dataset, "dti", scale=BENCH_SCALES["dti"], seed=0)
