"""Shared benchmark fixtures.

Each bench measures the *wall time* of the real (vectorized NumPy)
execution with pytest-benchmark, and prints/writes the *simulated* table
that corresponds to the paper's Table/Figure — both axes matter and they
are kept clearly separate (see DESIGN.md "Timing methodology").

Comparison runs are cached per (dataset, scale) for the whole session so
the table benches and Table VII reuse one pipeline execution.  Rendered
tables are also written to ``benchmarks/out/`` for inspection after a
``--benchmark-only`` run, whose stdout capture would otherwise hide them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.runner import ComparisonResult, run_comparison

#: scaled-down workloads per dataset: full paper sizes would take hours in
#: pure Python; these keep each bench in seconds while the projection
#: handles the paper-scale axis
BENCH_SCALES = {
    "dti": 0.01,
    "fb": 0.5,
    "syn200": 0.1,
    "dblp": 0.02,
}

_cache: dict[str, ComparisonResult] = {}

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def comparison():
    """Factory fixture: ``comparison('fb')`` runs (once) and returns the
    three-column comparison at the bench scale."""

    def get(name: str) -> ComparisonResult:
        if name not in _cache:
            _cache[name] = run_comparison(
                name, scale=BENCH_SCALES[name], seed=0, eig_tol=1e-8
            )
        return _cache[name]

    return get


@pytest.fixture(scope="session")
def write_table():
    """Write a rendered table to benchmarks/out/<name>.txt and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[written to benchmarks/out/{name}.txt]")

    return write
