"""Ablation — k-means iteration structure: SpMM centroid update and the
fused distance+argmin pass vs the paper's discrete pipeline.

§IV.C builds the centroid update from sort_by_key + segmented reduction
and runs distances, argmin and the convergence count as separate
launches.  The rebuilt hot path replaces the update with a membership
SpMM (histogram + exclusive scan + stable scatter + ``cusparseDcsrmm``)
and folds the assignment phase into one fused kernel with an on-device
label-change counter.  Both knobs are pure time optimizations: every
combination must produce bit-identical labels, centroids and inertia
histories, while the simulated cost separates."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.hw.costmodel import GPUCostModel
from repro.hw.spec import K20C
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.init import kmeans_plus_plus

#: every (centroid_update, fused) combination, baseline last
KNOB_GRID = [
    ("spmm", True),
    ("spmm", False),
    ("sort", True),
    ("sort", False),
]


def _combo_key(update: str, fused: bool) -> str:
    return f"{update}_{'fused' if fused else 'unfused'}"


def _workload():
    rng = np.random.default_rng(0)
    k, d, n = 32, 32, 4000
    centers = rng.standard_normal((k, d)) * 6
    V = centers[rng.integers(0, k, n)] + rng.standard_normal((n, d))
    C0 = kmeans_plus_plus(V, k, np.random.default_rng(1))
    return V, k, C0


@pytest.fixture(scope="module")
def workload():
    return _workload()


def _run_grid(V, k, C0):
    out = {}
    for update, fused in KNOB_GRID:
        dev = Device()
        res = kmeans_device(
            dev, V, k, initial_centroids=C0,
            centroid_update=update, fused=fused,
        )
        out[_combo_key(update, fused)] = (
            res, dev.timeline.total(tag="kmeans")
        )
    return out


def kmeans_ablation_summary() -> dict:
    """Machine-readable ablation summary (consumed by BENCH_regression.json).

    ``total_simulated_s`` per knob combination on the fixed workload, the
    default-vs-baseline speedup, and a bit-parity flag over labels,
    centroids and inertia history — the regression gate refuses any run
    where a knob changed a bit.
    """
    V, k, C0 = _workload()
    grid = _run_grid(V, k, C0)
    ref, _ = grid["sort_unfused"]
    bit_identical = all(
        np.array_equal(res.labels, ref.labels)
        and res.centroids.tobytes() == ref.centroids.tobytes()
        and np.asarray(res.inertia_history).tobytes()
        == np.asarray(ref.inertia_history).tobytes()
        for res, _t in grid.values()
    )
    combos = {
        key: {"total_simulated_s": t, "n_iter": res.n_iter}
        for key, (res, t) in grid.items()
    }
    return {
        "n": V.shape[0],
        "k": k,
        "d": V.shape[1],
        "combos": combos,
        "speedup_default_vs_baseline": (
            combos["sort_unfused"]["total_simulated_s"]
            / combos["spmm_fused"]["total_simulated_s"]
        ),
        "bit_identical": bit_identical,
    }


def test_ablation_kmeans_report(workload, write_table):
    V, k, C0 = workload
    grid = _run_grid(V, k, C0)
    ref, t_ref = grid["sort_unfused"]

    # paper-scale projection of just the centroid-update phase
    # (DTI: n=142K points, k=500 clusters, d=500 features)
    gpu = GPUCostModel(K20C)
    n_p, k_p, d_p = 142541, 500, 500
    proj_sort = (
        gpu.sort_time(n_p)                                    # sort_by_key
        + gpu.kernel_time(n_p * d_p, 2.0 * n_p * d_p * 8)     # permute rows
        + gpu.kernel_time(n_p * d_p, 2.0 * n_p * d_p * 8)     # reduce values
        + gpu.kernel_time(float(n_p), 2.0 * n_p * 8)          # reduce counts
    )
    proj_spmm = (
        gpu.kernel_time(float(n_p), n_p * 8.0)                # histogram
        + gpu.kernel_time(float(k_p), 2.0 * k_p * 8)          # exclusive scan
        + gpu.kernel_time(float(n_p), 2.0 * n_p * 8)          # scatter
        + gpu.spmm_time(k_p, n_p, d_p)                        # cusparseDcsrmm
    )

    lines = [
        f"Ablation: k-means iteration structure "
        f"(n={V.shape[0]}, k={k}, d={V.shape[1]})",
        f"{'update':<8}{'assign':<10}{'sim kmeans t/s':>16}{'iters':>8}",
        "-" * 42,
    ]
    for update, fused in KNOB_GRID:
        res, t = grid[_combo_key(update, fused)]
        assign = "fused" if fused else "discrete"
        lines.append(f"{update:<8}{assign:<10}{t:>16.6f}{res.n_iter:>8}")
    lines += [
        "",
        "projected centroid-update phase at DTI scale (n=142541, k=d=500):",
        f"  sort+reduce: {proj_sort:.4f} s/iter",
        f"  membership SpMM: {proj_spmm:.4f} s/iter "
        f"({proj_sort / proj_spmm:.1f}x faster)",
    ]
    write_table("ablation_kmeans", "\n".join(lines))

    # every combination clusters bit-identically
    for res, _t in grid.values():
        assert np.array_equal(res.labels, ref.labels)
        assert res.centroids.tobytes() == ref.centroids.tobytes()
        assert res.n_iter == ref.n_iter
        assert np.asarray(res.inertia_history).tobytes() == np.asarray(
            ref.inertia_history
        ).tobytes()
    # each knob is an improvement on its own; together they are fastest
    _, t_default = grid["spmm_fused"]
    _, t_spmm_only = grid["spmm_unfused"]
    _, t_fused_only = grid["sort_fused"]
    assert t_spmm_only < t_ref
    assert t_fused_only < t_ref
    assert t_default < min(t_spmm_only, t_fused_only)
    # the SpMM update beats sort+reduce at paper scale too
    assert proj_spmm < proj_sort


def test_summary_shape():
    s = kmeans_ablation_summary()
    assert s["bit_identical"] is True
    assert s["speedup_default_vs_baseline"] > 1.0
    assert set(s["combos"]) == {_combo_key(u, f) for u, f in KNOB_GRID}


def test_bench_kmeans_default(benchmark, workload):
    V, k, C0 = workload
    benchmark(
        lambda: kmeans_device(Device(), V, k, initial_centroids=C0, max_iter=5)
    )


def test_bench_kmeans_baseline(benchmark, workload):
    V, k, C0 = workload
    benchmark(
        lambda: kmeans_device(
            Device(), V, k, initial_centroids=C0, max_iter=5,
            centroid_update="sort", fused=False,
        )
    )
