"""Extension — mixed-precision eigensolver ablation with tolerance bands.

The mixed-precision axis trades eigensolver *bits* for *bytes*: fp32/fp16
operator and iteration-vector storage shrinks every SpMV/SpMM's modeled
device-memory traffic (values stream at the storage width while the
accumulation stays fp64), and an fp64 iterative-refinement pass recovers
the accuracy the quantized iteration lost.  This bench sweeps the
``precision x embedding`` grid over the four Table II workloads at bench
scale and records, per cell:

* ``spmv_bytes`` — modeled SpMV/SpMM device-memory traffic (the roofline
  byte expressions, summed) and its reduction vs the fp64 baseline;
* ``ari`` / ``ari_vs_exact`` — quality against ground truth and against
  the exact fp64 Lanczos labels;
* ``refine_residual`` / ``refine_steps`` — the refinement pass evidence.

The tolerance bands live *here*, next to the measurements they gate, and
are copied into ``BENCH_regression.json`` so ``check_regression.py`` can
enforce them in CI:

* the fp64 Lanczos cell must be **bit-identical** to a default fit — the
  precision axis is invisible at full width;
* reduced Lanczos cells gate on ``ari_vs_exact`` >= the per-dataset band
  and ``refine_residual`` <= the precision's tolerance floor;
* the fp32 cell must cut modeled byte traffic by >=
  ``MIN_FP32_BYTE_REDUCTION`` on every dataset;
* power-embedding cells are recorded as evidence (the embedding is
  approximate by design — Boutsidis et al. bound its k-means cost, not
  its subspace angle) but only gated on byte-traffic creep.

The bands are set *honestly* from measured behavior: fp16 keeps fb and
syn200 at full agreement, degrades dti mildly, and effectively breaks
dblp (ari_vs_exact ~0.14) — the dblp band documents that cliff rather
than hiding it.
"""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.datasets.registry import load_dataset
from repro.metrics.external import adjusted_rand_index
from repro.precision import TOL_FLOORS

from conftest import BENCH_SCALES

#: (precision, embedding) cells swept per dataset; the fp64 Lanczos cell
#: is the exact baseline the others are measured against
PRECISION_CELLS = (
    ("fp64", "lanczos"),
    ("fp32", "lanczos"),
    ("fp16", "lanczos"),
    ("fp32", "power"),
)

#: reduced-precision Lanczos cells must agree with the exact fp64 labels
#: at least this well (ARI), per dataset — measured headroom below the
#: observed values, not aspirational targets
ARI_VS_EXACT_BANDS = {
    "dti": {"fp32": 0.95, "fp16": 0.75},
    "fb": {"fp32": 0.95, "fp16": 0.95},
    "syn200": {"fp32": 0.95, "fp16": 0.95},
    "dblp": {"fp32": 0.90, "fp16": 0.10},
}

#: the acceptance bar: fp32 storage must cut modeled SpMV byte traffic by
#: at least this factor on EVERY bench dataset
MIN_FP32_BYTE_REDUCTION = 1.5


def _cell_key(precision: str, embedding: str) -> str:
    return f"{precision}_{embedding}"


def _fit(ds, **kw):
    sc = SpectralClustering(
        n_clusters=ds.n_clusters, eig_tol=1e-8, seed=0, **kw
    )
    if ds.points is not None:
        return sc.fit(X=ds.points, edges=ds.edges)
    return sc.fit(graph=ds.graph)


def precision_ablation_summary() -> dict:
    """Machine-readable precision grid (consumed by BENCH_regression.json).

    Per dataset: one entry per (precision, embedding) cell with the byte
    traffic, quality, and refinement evidence, plus the tolerance bands
    the regression gate enforces.  ``fp64_bit_identical`` is the global
    exact-path flag: every dataset's fp64 Lanczos cell reproduced the
    default fit bit-for-bit.
    """
    out: dict = {
        "cells": [_cell_key(p, e) for p, e in PRECISION_CELLS],
        "min_fp32_byte_reduction": MIN_FP32_BYTE_REDUCTION,
        "residual_floors": {
            p: TOL_FLOORS[p] for p in ("fp32", "fp16")
        },
        "datasets": {},
    }
    bit_identical = True
    for name in sorted(BENCH_SCALES):
        ds = load_dataset(name, scale=BENCH_SCALES[name], seed=0)
        default = _fit(ds)  # no precision axis: the pre-axis behavior
        cells: dict = {}
        exact_labels = None
        b64 = None
        for precision, embedding in PRECISION_CELLS:
            res = _fit(ds, precision=precision, embedding=embedding)
            stats = res.eig_stats
            if (precision, embedding) == ("fp64", "lanczos"):
                exact_labels = res.labels
                b64 = stats["spmv_bytes"]
                bit_identical = bit_identical and (
                    np.array_equal(res.labels, default.labels)
                    and res.eigenvalues.tobytes()
                    == default.eigenvalues.tobytes()
                    and res.embedding.tobytes()
                    == default.embedding.tobytes()
                )
            cells[_cell_key(precision, embedding)] = {
                "spmv_bytes": stats["spmv_bytes"],
                "spmv_kernel_s": stats["spmv_kernel_s"],
                "communication_s": res.profile.communication,
                "byte_reduction_vs_fp64": b64 / stats["spmv_bytes"],
                "ari": (
                    adjusted_rand_index(res.labels, ds.labels)
                    if ds.labels is not None
                    else None
                ),
                "ari_vs_exact": adjusted_rand_index(
                    res.labels, exact_labels
                ),
                "refine_residual": stats["refine_residual"],
                "refine_steps": stats["refine_steps"],
                "gated": embedding == "lanczos",
            }
        out["datasets"][name] = {
            "scale": BENCH_SCALES[name],
            "k": ds.n_clusters,
            "n": int(default.embedding.shape[0]),
            "bands": dict(ARI_VS_EXACT_BANDS[name]),
            "cells": cells,
        }
    out["fp64_bit_identical"] = bit_identical
    return out


@pytest.fixture(scope="module")
def summary():
    return precision_ablation_summary()


def test_precision_ablation_report(summary, write_table):
    lines = [
        "Extension: mixed-precision eigensolver ablation "
        "(storage width vs modeled SpMV bytes, fp64 accumulate + refine)",
        f"{'dataset':<9}{'cell':<14}{'spmv bytes':>13}{'reduction':>10}"
        f"{'ari':>7}{'vs exact':>9}{'refine res':>12}",
        "-" * 74,
    ]
    for name, wl in summary["datasets"].items():
        for cell, c in wl["cells"].items():
            rres = (
                f"{c['refine_residual']:.2e}"
                if c["refine_residual"] is not None
                else "-"
            )
            ari = f"{c['ari']:.3f}" if c["ari"] is not None else "-"
            lines.append(
                f"{name:<9}{cell:<14}{c['spmv_bytes']:>13,.0f}"
                f"{c['byte_reduction_vs_fp64']:>9.2f}x"
                f"{ari:>7}{c['ari_vs_exact']:>9.3f}{rres:>12}"
            )
    lines.append(
        f"fp64 bit-identical: {summary['fp64_bit_identical']}  |  "
        f"fp32 byte-reduction bar: "
        f">={summary['min_fp32_byte_reduction']}x on every dataset"
    )
    write_table("precision_ablation", "\n".join(lines))


def test_exact_cell_is_bit_identical(summary):
    assert summary["fp64_bit_identical"] is True


def test_reduced_cells_inside_tolerance_bands(summary):
    """The tolerance-banded accuracy contract, asserted at bench time so
    a violation fails even before the check_regression.py CI gate."""
    for name, wl in summary["datasets"].items():
        for precision in ("fp32", "fp16"):
            c = wl["cells"][_cell_key(precision, "lanczos")]
            band = wl["bands"][precision]
            assert c["ari_vs_exact"] >= band, (
                f"{name} {precision}: ari_vs_exact {c['ari_vs_exact']:.3f}"
                f" below band {band}"
            )
            assert c["refine_residual"] is not None
            assert c["refine_residual"] <= TOL_FLOORS[precision], (
                f"{name} {precision}: refined residual "
                f"{c['refine_residual']:.3g} above floor "
                f"{TOL_FLOORS[precision]}"
            )
            assert c["refine_steps"] >= 1


def test_fp32_byte_reduction_clears_bar(summary):
    """The acceptance criterion: fp32 cuts modeled SpMV byte traffic by
    >= 1.5x vs fp64 on ALL FOUR datasets while staying inside its band."""
    for name, wl in summary["datasets"].items():
        red = wl["cells"]["fp32_lanczos"]["byte_reduction_vs_fp64"]
        assert red >= summary["min_fp32_byte_reduction"], (
            f"{name}: fp32 byte reduction {red:.3f}x below "
            f"{summary['min_fp32_byte_reduction']}x bar"
        )


def test_byte_traffic_orders_with_storage_width(summary):
    for name, wl in summary["datasets"].items():
        b = {c: wl["cells"][c]["spmv_bytes"] for c in wl["cells"]}
        assert b["fp64_lanczos"] > b["fp32_lanczos"] > b["fp16_lanczos"] > 0
