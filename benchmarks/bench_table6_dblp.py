"""Table VI / Figure 6 — spectral clustering on the DBLP graph (k=500).

The large-scale, large-k regime: "Both Matlab and Python implementations
perform poorly for such a problem size" — the k-means speedup exceeds
400x and even the CPU-bound eigensolver gains ~3x."""

import pytest

from repro.bench.report import format_comparison, format_paper_check
from repro.core.pipeline import SpectralClustering
from repro.datasets.registry import load_dataset

from conftest import BENCH_SCALES


def test_table6_report(comparison, write_table):
    r = comparison("dblp")
    write_table(
        "table6_dblp", format_comparison(r) + "\n\n" + format_paper_check(r)
    )
    for stage, cols in r.projection.items():
        assert cols["cuda"] <= cols["matlab"], stage
        assert cols["cuda"] <= cols["python"], stage


def test_kmeans_speedup_dominates(comparison):
    """Paper: 1012.9/1.79 = 566x over Matlab, 719.7/1.79 = 401x over
    Python at k=500."""
    r = comparison("dblp")
    km = r.projection["kmeans"]
    assert km["matlab"] / km["cuda"] > 200
    assert km["python"] / km["cuda"] > 100


def test_python_eigensolver_worst(comparison):
    """Table VI ordering: python (9338) > matlab (1885) > cuda (683)."""
    r = comparison("dblp")
    eig = r.projection["eigensolver"]
    assert eig["python"] > eig["matlab"] > eig["cuda"]


@pytest.fixture(scope="module")
def dblp_ds():
    return load_dataset("dblp", scale=BENCH_SCALES["dblp"], seed=0)


def test_bench_full_pipeline(benchmark, dblp_ds):
    sc = SpectralClustering(n_clusters=dblp_ds.n_clusters, eig_tol=1e-8, seed=0)
    benchmark.pedantic(sc.fit, kwargs=dict(graph=dblp_ds.graph), rounds=1, iterations=1)
