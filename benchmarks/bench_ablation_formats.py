"""Ablation — sparse format for the eigensolver's SpMV: COO vs CSR vs BSR.

§IV.B converts the similarity matrix "to the CSR format to perform the
sparse matrix-vector multiplication at the next step"; this bench
quantifies why, on the simulated device (COO needs atomic scatter-adds)
and in host wall-clock."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.cusparse.conversions import coo2csr
from repro.cusparse.matrices import coo_to_device
from repro.cusparse.spmv import coomv, csrmv
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("syn200", scale=0.1, seed=0).graph


def test_ablation_format_report(graph, write_table):
    dev = Device()
    dcoo = coo_to_device(dev, graph.sorted_by_row())
    dcsr = coo2csr(dcoo)
    x = dev.to_device(np.ones(graph.shape[0]))

    t0 = dev.elapsed
    coomv(dcoo, x)
    t_coo = dev.elapsed - t0
    t0 = dev.elapsed
    csrmv(dcsr, x)
    t_csr = dev.elapsed - t0

    lines = [
        f"Ablation: SpMV format on syn200 (n={graph.shape[0]}, nnz={graph.nnz})",
        f"{'format':<8}{'simulated SpMV/s':>18}",
        "-" * 26,
        f"{'COO':<8}{t_coo:>18.6f}",
        f"{'CSR':<8}{t_csr:>18.6f}",
        f"CSR wins by {t_coo / t_csr:.2f}x (plus coo2csr conversion paid once "
        f"vs thousands of Lanczos iterations)",
    ]
    write_table("ablation_formats", "\n".join(lines))
    assert t_csr < t_coo


def test_conversion_amortized_over_iterations(graph):
    """coo2csr costs about one SpMV; the eigensolver runs thousands."""
    dev = Device()
    dcoo = coo_to_device(dev, graph.sorted_by_row())
    t0 = dev.elapsed
    dcsr = coo2csr(dcoo)
    t_conv = dev.elapsed - t0
    x = dev.to_device(np.ones(graph.shape[0]))
    t0 = dev.elapsed
    csrmv(dcsr, x)
    t_spmv = dev.elapsed - t0
    assert t_conv < 20 * t_spmv


@pytest.fixture(scope="module")
def host_formats(graph):
    csr = graph.to_csr()
    return graph, csr, csr.to_csc(), csr.to_bsr(4)


def test_bench_host_csr_matvec(benchmark, host_formats):
    _, csr, _, _ = host_formats
    x = np.ones(csr.shape[1])
    benchmark(csr.matvec, x)


def test_bench_host_coo_matvec(benchmark, host_formats):
    coo, _, _, _ = host_formats
    x = np.ones(coo.shape[1])
    benchmark(coo.matvec, x)


def test_bench_host_csc_matvec(benchmark, host_formats):
    _, _, csc, _ = host_formats
    x = np.ones(csc.shape[1])
    benchmark(csc.matvec, x)


def test_bench_host_bsr_matvec(benchmark, host_formats):
    _, _, _, bsr = host_formats
    x = np.ones(bsr.shape[1])
    benchmark(bsr.matvec, x)
