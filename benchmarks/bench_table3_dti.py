"""Table III / Figure 3 — spectral clustering on the DTI dataset.

Regenerates the three-stage CUDA/Matlab/Python comparison on the DTI
workload: the similarity-matrix build (Algorithm 1), the sparse
eigensolver (Algorithm 3) and k-means (Algorithm 4), plus the §V.C
vectorized-similarity variants, with the paper-scale projection checked
against the published rows.
"""

import pytest

from repro.baselines.cost import (
    MATLAB_2015A,
    PYTHON_27,
    similarity_vectorized_time,
)
from repro.bench.report import format_comparison, format_paper_check
from repro.core.pipeline import SpectralClustering
from repro.datasets.registry import load_dataset

from conftest import BENCH_SCALES


def test_table3_report(comparison, write_table):
    r = comparison("dti")
    nnz = r.nnz_directed
    extra = [
        "",
        "§V.C vectorized-similarity variants (modeled, scaled workload):",
        f"  Matlab vectorized: {similarity_vectorized_time(MATLAB_2015A, nnz):.4f} s",
        f"  Python vectorized: {similarity_vectorized_time(PYTHON_27, nnz):.4f} s",
        "",
        format_paper_check(r),
    ]
    write_table(
        "table3_dti", format_comparison(r) + "\n" + "\n".join(extra)
    )
    # Figure 3 is the same data as bars — assert the shape it draws:
    # CUDA fastest at every stage on the projected paper-scale workload
    for stage, cols in r.projection.items():
        assert cols["cuda"] <= cols["matlab"], stage
        assert cols["cuda"] <= cols["python"], stage


def test_similarity_winner_is_cuda(comparison):
    r = comparison("dti")
    cols = r.stages["similarity"]
    assert cols["cuda"] < cols["matlab"] and cols["cuda"] < cols["python"]
    # serial interpreted loops lose by orders of magnitude (paper: ~6700x)
    assert cols["matlab"] / cols["cuda"] > 100


@pytest.fixture(scope="module")
def dti_ds():
    return load_dataset("dti", scale=BENCH_SCALES["dti"], seed=0)


def test_bench_full_pipeline(benchmark, dti_ds):
    sc = SpectralClustering(
        n_clusters=dti_ds.n_clusters, eig_tol=1e-8, seed=0
    )
    benchmark(sc.fit, X=dti_ds.points, edges=dti_ds.edges)


def test_bench_similarity_stage(benchmark, dti_ds):
    from repro.cuda.device import Device
    from repro.graph.build import build_similarity_device

    def run():
        build_similarity_device(Device(), dti_ds.points, dti_ds.edges)

    benchmark(run)
