"""Ablation — k-means distance computation: BLAS-3 expansion vs direct
kernel.

§IV.C: "the process of transforming the computation of the pair-wise
distance matrix to the BLAS operations significantly accelerates the
running time of the algorithm."  This bench runs Algorithm 4 both ways —
Eqs. 12-16 via cuBLAS gemm, and the naive per-pair kernel — on identical
seeds, verifying bit-identical clustering while the simulated cost
separates sharply as k·d grows."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.hw.costmodel import GPUCostModel
from repro.hw.spec import K20C
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.init import kmeans_plus_plus


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    k, d, n = 32, 32, 4000
    centers = rng.standard_normal((k, d)) * 6
    V = centers[rng.integers(0, k, n)] + rng.standard_normal((n, d))
    C0 = kmeans_plus_plus(V, k, np.random.default_rng(1))
    return V, k, C0


def test_ablation_distance_report(workload, write_table):
    V, k, C0 = workload
    d_gemm, d_direct = Device(), Device()
    r_gemm = kmeans_device(d_gemm, V, k, initial_centroids=C0)
    r_direct = kmeans_device(
        d_direct, V, k, initial_centroids=C0, distance_method="direct"
    )
    t_gemm = d_gemm.timeline.total(tag="kmeans")
    t_direct = d_direct.timeline.total(tag="kmeans")

    # paper-scale projection of just the distance phase (DTI: n=142K, k=d=500)
    gpu = GPUCostModel(K20C)
    n_p, k_p = 142541, 500
    proj_gemm = gpu.gemm_time(n_p, k_p, k_p) + gpu.kernel_time(
        float(n_p) * k_p, float(n_p) * k_p * 8
    )
    proj_direct = gpu.kernel_time(
        3.0 * n_p * k_p * k_p, float(n_p) * k_p * k_p * 8
    )

    lines = [
        f"Ablation: k-means distance method (n={V.shape[0]}, k={k}, d={V.shape[1]})",
        f"{'method':<10}{'sim kmeans t/s':>16}{'iters':>8}",
        "-" * 34,
        f"{'gemm':<10}{t_gemm:>16.6f}{r_gemm.n_iter:>8}",
        f"{'direct':<10}{t_direct:>16.6f}{r_direct.n_iter:>8}",
        "",
        f"projected distance phase at DTI scale (n=142541, k=d=500):",
        f"  gemm:   {proj_gemm:.4f} s/iter",
        f"  direct: {proj_direct:.4f} s/iter  ({proj_direct / proj_gemm:.0f}x slower)",
    ]
    write_table("ablation_distance", "\n".join(lines))

    # identical clustering, cheaper gemm
    assert np.array_equal(r_gemm.labels, r_direct.labels)
    assert r_gemm.n_iter == r_direct.n_iter
    assert t_gemm < t_direct
    # at paper scale the BLAS-3 reformulation is the difference between
    # seconds and minutes per iteration
    assert proj_direct / proj_gemm > 20


def test_bench_gemm_distances(benchmark, workload):
    V, k, C0 = workload
    benchmark(
        lambda: kmeans_device(Device(), V, k, initial_centroids=C0, max_iter=5)
    )


def test_bench_direct_distances(benchmark, workload):
    V, k, C0 = workload
    benchmark(
        lambda: kmeans_device(
            Device(), V, k, initial_centroids=C0, max_iter=5,
            distance_method="direct",
        )
    )
