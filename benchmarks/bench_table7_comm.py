"""Table VII — data communication vs computation time of the CUDA runs.

The paper's point: the PCIe round trips that Algorithm 3 pays on every
Lanczos iteration stay negligible next to the computation, "especially for
large-scale problems".  The simulated split comes straight from the device
timeline's h2d/d2h vs kernel/cpu categories."""

from repro.bench.paperdata import PAPER_TABLES

from conftest import BENCH_SCALES


def test_table7_report(comparison, write_table):
    lines = [
        "Table VII — communication vs computation (CUDA, simulated)",
        f"{'dataset':<10}{'comm/s':>12}{'comp/s':>12}{'comm%':>8}"
        f"{'paper comm':>12}{'paper comp':>12}",
        "-" * 66,
    ]
    for name in BENCH_SCALES:
        r = comparison(name)
        paper = PAPER_TABLES["table7_comm"][name]
        frac = 100 * r.comm / max(r.comm + r.comp, 1e-30)
        lines.append(
            f"{name:<10}{r.comm:>12.5f}{r.comp:>12.5f}{frac:>7.1f}%"
            f"{paper['communication']:>12.4f}{paper['computation']:>12.4f}"
        )
    write_table("table7_comm", "\n".join(lines))


def test_communication_less_than_computation_everywhere(comparison):
    """The table's claim, on our simulated runs."""
    for name in BENCH_SCALES:
        r = comparison(name)
        assert r.comm < r.comp, name


def test_communication_fraction_shrinks_at_paper_scale(comparison):
    """§V.C: comm is O(n) per iteration while compute is O(n·m); at the
    paper's sizes the comm share of the eigensolver stays below ~10%."""
    for name in ("dti", "dblp"):
        proj = comparison(name).projection["eigensolver"]
        assert proj["cuda_communication"] < 0.10 * proj["cuda"], name


def test_paper_comm_fractions_bracketed(comparison):
    """Our simulated comm fraction should land in the same regime as the
    paper's (within an order of magnitude)."""
    for name in BENCH_SCALES:
        paper = PAPER_TABLES["table7_comm"][name]
        paper_frac = paper["communication"] / (
            paper["communication"] + paper["computation"]
        )
        proj = comparison(name).projection["eigensolver"]
        ours = proj["cuda_communication"] / proj["cuda"]
        assert ours < 10 * paper_frac + 0.1, name
