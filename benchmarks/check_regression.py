#!/usr/bin/env python
"""Bench-regression gate: fail CI when simulated costs creep upward.

Compares a freshly generated ``BENCH_regression.json`` against the
committed baseline and exits non-zero if ``communication_s`` or
``total_simulated_s`` regressed by more than the tolerance (default 5%)
on any dataset, or if clustering quality (``ari_cuda``) changed at all —
the simulation is deterministic, so quality drift is a bug, not noise.

Improvements (lower cost) always pass; re-baseline by committing the new
file after an intentional cost-model change.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json
"""

from __future__ import annotations

import argparse
import json
import sys

GATED_KEYS = ("communication_s", "total_simulated_s")


def compare(baseline: dict, current: dict, rel_tol: float) -> list[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures: list[str] = []
    base_ds = baseline.get("datasets", {})
    cur_ds = current.get("datasets", {})
    for name in sorted(base_ds):
        if name not in cur_ds:
            failures.append(f"{name}: dataset missing from current run")
            continue
        for key in GATED_KEYS:
            old = base_ds[name][key]
            new = cur_ds[name][key]
            if old > 0 and new > old * (1.0 + rel_tol):
                failures.append(
                    f"{name}.{key}: {old:.6g} -> {new:.6g} "
                    f"(+{(new / old - 1.0) * 100:.1f}%, tolerance "
                    f"{rel_tol * 100:.0f}%)"
                )
        old_ari = base_ds[name].get("ari_cuda")
        new_ari = cur_ds[name].get("ari_cuda")
        if old_ari is not None and new_ari != old_ari:
            failures.append(
                f"{name}.ari_cuda: {old_ari!r} -> {new_ari!r} "
                "(quality must be bit-identical)"
            )
    failures.extend(_compare_serve_predict(baseline, current, rel_tol))
    failures.extend(_compare_serve_deadline(baseline, current, rel_tol))
    failures.extend(_compare_kmeans_ablation(baseline, current, rel_tol))
    failures.extend(_compare_multigpu_eig(baseline, current, rel_tol))
    failures.extend(_compare_precision_ablation(baseline, current, rel_tol))
    failures.extend(_compare_compressive_ablation(baseline, current, rel_tol))
    failures.extend(_compare_topology_composition(baseline, current, rel_tol))
    return failures


def _compare_serve_predict(
    baseline: dict, current: dict, rel_tol: float
) -> list[str]:
    """Gate the predict fast path: the predict-heavy mix keeps its >=3x
    throughput win over the all-cold-fit baseline, warm predicts stay
    >=100x below cold fits at the median, every audited transfer ledger
    equals the device meter, delta refits stay bit-identical to cold
    fits on every bench dataset, and the warm predict p50 itself never
    creeps past the tolerance."""
    failures: list[str] = []
    base = baseline.get("serve_predict")
    cur = current.get("serve_predict")
    if base is None:
        return failures
    if cur is None:
        return ["serve_predict: section missing from current run"]
    win = cur.get("throughput_win")
    bar = cur.get("min_throughput_win", 3.0)
    if win is not None and win < bar:
        failures.append(
            f"serve_predict.throughput_win: {win:.3g}x fell below the "
            f">={bar}x win over the all-cold baseline"
        )
    ratio = cur.get("warm_cold_ratio")
    rbar = cur.get("min_warm_cold_ratio", 100.0)
    if ratio is not None and ratio < rbar:
        failures.append(
            f"serve_predict.warm_cold_ratio: warm predict p50 only "
            f"{ratio:.3g}x below cold-fit p50 (>= {rbar}x required)"
        )
    if cur.get("ledger_mismatches", 0) != 0:
        failures.append(
            f"serve_predict.ledger_mismatches: "
            f"{cur['ledger_mismatches']} predict transfer ledger(s) "
            "diverged from the device meter"
        )
    for name in sorted(base.get("refit_parity", {})):
        wl = cur.get("refit_parity", {}).get(name)
        if wl is None:
            failures.append(f"serve_predict.refit_parity.{name}: missing")
            continue
        if wl.get("labels_bit_identical") is not True:
            failures.append(
                f"serve_predict.refit_parity.{name}: delta refit labels "
                "diverged from a cold fit on the patched graph"
            )
    old_p50 = base.get("warm_predict_p50_s")
    new_p50 = cur.get("warm_predict_p50_s")
    if old_p50 and new_p50 and new_p50 > old_p50 * (1.0 + rel_tol):
        failures.append(
            f"serve_predict.warm_predict_p50_s: {old_p50:.6g} -> "
            f"{new_p50:.6g} (+{(new_p50 / old_p50 - 1.0) * 100:.1f}%, "
            f"tolerance {rel_tol * 100:.0f}%)"
        )
    return failures


def _compare_serve_deadline(
    baseline: dict, current: dict, rel_tol: float
) -> list[str]:
    """Gate the deadline-driven serving tier: preemption keeps cutting
    deadline misses >=30% against the observational baseline at equal
    throughput (within tolerance), placement rewrites stay bit-identical
    to FIFO arithmetic, speculation keeps coalescing the recurring
    trace, and a restarted service keeps warming from disk with zero
    cold fits and bit-identical labels."""
    failures: list[str] = []
    base = baseline.get("serve_deadline")
    cur = current.get("serve_deadline")
    if base is None:
        return failures
    if cur is None:
        return ["serve_deadline: section missing from current run"]
    pre = cur.get("preemption", {})
    reduction = pre.get("miss_reduction")
    bar = pre.get("min_miss_reduction", 0.30)
    if reduction is not None and reduction < bar:
        failures.append(
            f"serve_deadline.miss_reduction: preemption only cut "
            f"deadline misses {reduction:.0%} "
            f"({pre.get('deadline_misses_baseline')} -> "
            f"{pre.get('deadline_misses_preemptive')}; >= {bar:.0%} "
            "required)"
        )
    ratio = pre.get("throughput_ratio")
    rbar = pre.get("min_throughput_ratio", 0.95)
    if ratio is not None and ratio < rbar:
        failures.append(
            f"serve_deadline.throughput_ratio: preemption costs "
            f"{(1.0 - ratio) * 100:.1f}% throughput "
            f"(>= {rbar:.2f}x of the baseline required)"
        )
    if pre.get("labels_bit_identical") is not True:
        failures.append(
            "serve_deadline.preemption: labels diverged between the "
            "preemptive and observational schedules"
        )
    spec = cur.get("speculation", {})
    if spec.get("spec_hits", 0) <= 0:
        failures.append(
            "serve_deadline.speculation: no speculation hit on the "
            "recurring-fingerprint trace"
        )
    if spec.get("labels_bit_identical") is not True:
        failures.append(
            "serve_deadline.speculation: labels diverged under holds"
        )
    per = cur.get("persistence", {})
    if per.get("cold_fits_restarted", 1) != 0:
        failures.append(
            f"serve_deadline.persistence: restarted service paid "
            f"{per.get('cold_fits_restarted')} cold fit(s) instead of "
            "warming from disk"
        )
    if per.get("labels_bit_identical") is not True:
        failures.append(
            "serve_deadline.persistence: disk-warmed labels diverged "
            "from the first process"
        )
    return failures


def _compare_topology_composition(
    baseline: dict, current: dict, rel_tol: float
) -> list[str]:
    """Gate the composed multi-device fit: composition keeps its
    end-to-end 2-device win over the phase-by-phase path, mincut keeps
    its >=20% halo-byte cut on at least two community workloads, labels
    and spectra stay bit-identical at every device count, the k-means
    transfer ledger equals the device meters, and neither the composed
    makespan nor any partition's halo bytes creep past the tolerance."""
    failures: list[str] = []
    base = baseline.get("topology_composition")
    cur = current.get("topology_composition")
    if base is None:
        return failures
    if cur is None:
        return ["topology_composition: section missing from current run"]
    if cur.get("bit_identical") is not True:
        failures.append(
            "topology_composition.bit_identical: device counts or "
            "partition modes diverged (output must be bit-identical)"
        )
    if cur.get("ledger_ok") is not True:
        failures.append(
            "topology_composition.ledger_ok: composed k-means transfer "
            "ledger diverged from the device traffic meters"
        )
    comp = cur.get("composed", {})
    speedup = comp.get("speedup_vs_phased")
    if speedup is not None and speedup <= 1.0:
        failures.append(
            f"topology_composition.composed: speedup {speedup:.3g}x "
            "lost the end-to-end win over the phase-by-phase fit"
        )
    old_t = base.get("composed", {}).get("total_composed_s")
    new_t = comp.get("total_composed_s")
    if old_t and new_t and new_t > old_t * (1.0 + rel_tol):
        failures.append(
            f"topology_composition.composed.total_composed_s: "
            f"{old_t:.6g} -> {new_t:.6g} "
            f"(+{(new_t / old_t - 1.0) * 100:.1f}%, tolerance "
            f"{rel_tol * 100:.0f}%)"
        )
    bar = cur.get("min_halo_reduction", 0.2)
    winners = 0
    for name in sorted(base.get("partitions", {})):
        if name not in cur.get("partitions", {}):
            failures.append(f"topology_composition.{name}: workload missing")
            continue
        base_halo = base["partitions"][name]["step_halo_bytes"]
        cur_halo = cur["partitions"][name]["step_halo_bytes"]
        for mode in sorted(base_halo):
            old = base_halo[mode]
            new = cur_halo.get(mode)
            if new is None:
                failures.append(
                    f"topology_composition.{name}.{mode}: mode missing"
                )
                continue
            if old > 0 and new > old * (1.0 + rel_tol):
                failures.append(
                    f"topology_composition.{name}.{mode}.step_halo_bytes: "
                    f"{old} -> {new} "
                    f"(+{(new / old - 1.0) * 100:.1f}%, tolerance "
                    f"{rel_tol * 100:.0f}%)"
                )
        red = cur["partitions"][name].get("mincut_reduction_vs_rows", 0.0)
        winners += red >= bar
    if cur.get("partitions") and winners < 2:
        failures.append(
            f"topology_composition: mincut beat rows by >={bar:.0%} on "
            f"only {winners} workload(s); at least 2 required"
        )
    return failures


def _compare_compressive_ablation(
    baseline: dict, current: dict, rel_tol: float
) -> list[str]:
    """Gate the compressive tier: the default cell stays inside its
    ARI band (>= the ratio bar x the exact-path ARI and >= the absolute
    per-dataset floor), byte ledgers stay exact (``ledger == meter``) in
    every cell, the n>=50k large cell stays under its modeled-time
    budget at quality, and no cell's modeled time creeps past the
    tolerance."""
    failures: list[str] = []
    base = baseline.get("compressive_ablation")
    cur = current.get("compressive_ablation")
    if base is None:
        return failures
    if cur is None:
        return ["compressive_ablation: section missing from current run"]
    if cur.get("fp32_ledger_ok") is not True:
        failures.append(
            "compressive_ablation.fp32_ledger_ok: analytic byte ledger "
            "diverged from the traffic meter at fp32"
        )
    ratio = cur.get("min_ari_ratio_vs_exact", 0.9)
    default_cell = cur.get("default_cell", "o48_dfull")
    for name in sorted(base.get("datasets", {})):
        if name not in cur.get("datasets", {}):
            failures.append(f"compressive_ablation.{name}: dataset missing")
            continue
        base_wl = base["datasets"][name]
        cur_wl = cur["datasets"][name]
        for cell in sorted(base_wl.get("cells", {})):
            if cell not in cur_wl.get("cells", {}):
                failures.append(
                    f"compressive_ablation.{name}.{cell}: cell missing"
                )
                continue
            old = base_wl["cells"][cell]["total_simulated_s"]
            new = cur_wl["cells"][cell]["total_simulated_s"]
            if old > 0 and new > old * (1.0 + rel_tol):
                failures.append(
                    f"compressive_ablation.{name}.{cell}"
                    f".total_simulated_s: {old:.6g} -> {new:.6g} "
                    f"(+{(new / old - 1.0) * 100:.1f}%, tolerance "
                    f"{rel_tol * 100:.0f}%)"
                )
            if cur_wl["cells"][cell].get("ledger_ok") is not True:
                failures.append(
                    f"compressive_ablation.{name}.{cell}: "
                    "byte ledger != traffic meter"
                )
        cell = cur_wl.get("cells", {}).get(default_cell)
        ari_exact = cur_wl.get("ari_exact")
        if cell is not None and ari_exact is not None:
            if cell["ari"] < ratio * ari_exact:
                failures.append(
                    f"compressive_ablation.{name}.{default_cell}: ARI "
                    f"{cell['ari']:.3f} fell below {ratio}x the exact "
                    f"path ({ari_exact:.3f})"
                )
            floor = cur_wl.get("ari_floor")
            if floor is not None and cell["ari"] < floor:
                failures.append(
                    f"compressive_ablation.{name}.{default_cell}: ARI "
                    f"{cell['ari']:.3f} below absolute floor {floor}"
                )
    lg = cur.get("large")
    if lg is None:
        failures.append("compressive_ablation.large: cell missing")
    else:
        if lg["n"] < lg.get("min_n", 50_000):
            failures.append(
                f"compressive_ablation.large: n {lg['n']} shrank below "
                f"the paper-scale floor {lg.get('min_n', 50_000)}"
            )
        if lg["ari"] < lg.get("ari_floor", 0.9):
            failures.append(
                f"compressive_ablation.large: ARI {lg['ari']:.3f} below "
                f"floor {lg.get('ari_floor', 0.9)}"
            )
        budget = lg.get("sim_budget_s")
        if budget is not None and lg["total_simulated_s"] > budget:
            failures.append(
                f"compressive_ablation.large: modeled time "
                f"{lg['total_simulated_s']:.4f}s over budget {budget}s"
            )
        old_lg = base.get("large")
        if old_lg is not None:
            old = old_lg["total_simulated_s"]
            new = lg["total_simulated_s"]
            if old > 0 and new > old * (1.0 + rel_tol):
                failures.append(
                    f"compressive_ablation.large.total_simulated_s: "
                    f"{old:.6g} -> {new:.6g} "
                    f"(+{(new / old - 1.0) * 100:.1f}%, tolerance "
                    f"{rel_tol * 100:.0f}%)"
                )
    return failures


def _compare_precision_ablation(
    baseline: dict, current: dict, rel_tol: float
) -> list[str]:
    """Gate the mixed-precision grid: the exact path stays bit-identical,
    every reduced Lanczos cell stays inside its tolerance band (ARI vs
    the exact labels >= the per-dataset band, refined residual <= the
    precision's floor), fp32 keeps its >=1.5x byte-traffic win on every
    dataset, and no cell's modeled byte traffic creeps past the
    tolerance."""
    failures: list[str] = []
    base = baseline.get("precision_ablation")
    cur = current.get("precision_ablation")
    if base is None:
        return failures
    if cur is None:
        return ["precision_ablation: section missing from current run"]
    if cur.get("fp64_bit_identical") is not True:
        failures.append(
            "precision_ablation.fp64_bit_identical: exact path diverged "
            "(fp64 lanczos must reproduce the default fit bit-for-bit)"
        )
    floors = cur.get("residual_floors", {})
    min_red = cur.get("min_fp32_byte_reduction", 1.5)
    for name in sorted(base.get("datasets", {})):
        if name not in cur.get("datasets", {}):
            failures.append(f"precision_ablation.{name}: dataset missing")
            continue
        base_wl = base["datasets"][name]
        cur_wl = cur["datasets"][name]
        bands = cur_wl.get("bands", {})
        for cell in sorted(base_wl.get("cells", {})):
            if cell not in cur_wl.get("cells", {}):
                failures.append(
                    f"precision_ablation.{name}.{cell}: cell missing"
                )
                continue
            old = base_wl["cells"][cell]["spmv_bytes"]
            new = cur_wl["cells"][cell]["spmv_bytes"]
            if old > 0 and new > old * (1.0 + rel_tol):
                failures.append(
                    f"precision_ablation.{name}.{cell}.spmv_bytes: "
                    f"{old:.6g} -> {new:.6g} "
                    f"(+{(new / old - 1.0) * 100:.1f}%, tolerance "
                    f"{rel_tol * 100:.0f}%)"
                )
        for precision in ("fp32", "fp16"):
            cell = cur_wl.get("cells", {}).get(f"{precision}_lanczos")
            if cell is None:
                continue
            band = bands.get(precision)
            if band is not None and cell["ari_vs_exact"] < band:
                failures.append(
                    f"precision_ablation.{name}.{precision}_lanczos: "
                    f"ari_vs_exact {cell['ari_vs_exact']:.3f} fell below "
                    f"band {band}"
                )
            floor = floors.get(precision)
            rres = cell.get("refine_residual")
            if floor is not None and rres is not None and rres > floor:
                failures.append(
                    f"precision_ablation.{name}.{precision}_lanczos: "
                    f"refined residual {rres:.3g} above floor {floor}"
                )
        fp32 = cur_wl.get("cells", {}).get("fp32_lanczos")
        if fp32 is not None and fp32["byte_reduction_vs_fp64"] < min_red:
            failures.append(
                f"precision_ablation.{name}: fp32 byte reduction "
                f"{fp32['byte_reduction_vs_fp64']:.3f}x lost the "
                f">={min_red}x win over fp64"
            )
    return failures


def _compare_multigpu_eig(
    baseline: dict, current: dict, rel_tol: float
) -> list[str]:
    """Gate the multi-GPU eigensolver: sharding must stay bit-identical,
    keep its 2-device win, and no config's makespan may creep."""
    failures: list[str] = []
    base = baseline.get("multigpu_eig")
    cur = current.get("multigpu_eig")
    if base is None:
        return failures
    if cur is None:
        return ["multigpu_eig: section missing from current run"]
    if cur.get("bit_identical") is not True:
        failures.append(
            "multigpu_eig.bit_identical: device counts diverged "
            "(spectra must be bit-identical)"
        )
    for name in sorted(base.get("workloads", {})):
        if name not in cur.get("workloads", {}):
            failures.append(f"multigpu_eig.{name}: workload missing")
            continue
        base_cfg = base["workloads"][name]["configs"]
        cur_cfg = cur["workloads"][name]["configs"]
        for p in sorted(base_cfg):
            if p not in cur_cfg:
                failures.append(f"multigpu_eig.{name}[{p}]: config missing")
                continue
            old = base_cfg[p]["eig_simulated_s"]
            new = cur_cfg[p]["eig_simulated_s"]
            if old > 0 and new > old * (1.0 + rel_tol):
                failures.append(
                    f"multigpu_eig.{name}[{p}].eig_simulated_s: "
                    f"{old:.6g} -> {new:.6g} "
                    f"(+{(new / old - 1.0) * 100:.1f}%, tolerance "
                    f"{rel_tol * 100:.0f}%)"
                )
        speedup = cur_cfg.get("2", {}).get("speedup_vs_1dev")
        if speedup is not None and speedup <= 1.0:
            failures.append(
                f"multigpu_eig.{name}: 2-device speedup {speedup:.3g}x "
                "lost the win over one device"
            )
    return failures


def _compare_kmeans_ablation(
    baseline: dict, current: dict, rel_tol: float
) -> list[str]:
    """Gate the k-means ablation: no combo's cost creeps, no bit drifts."""
    failures: list[str] = []
    base = baseline.get("kmeans_ablation")
    cur = current.get("kmeans_ablation")
    if base is None:
        return failures
    if cur is None:
        return ["kmeans_ablation: section missing from current run"]
    if cur.get("bit_identical") is not True:
        failures.append(
            "kmeans_ablation.bit_identical: knob combinations diverged "
            "(results must be bit-identical)"
        )
    for combo in sorted(base.get("combos", {})):
        if combo not in cur.get("combos", {}):
            failures.append(f"kmeans_ablation.{combo}: combo missing")
            continue
        old = base["combos"][combo]["total_simulated_s"]
        new = cur["combos"][combo]["total_simulated_s"]
        if old > 0 and new > old * (1.0 + rel_tol):
            failures.append(
                f"kmeans_ablation.{combo}.total_simulated_s: "
                f"{old:.6g} -> {new:.6g} "
                f"(+{(new / old - 1.0) * 100:.1f}%, tolerance "
                f"{rel_tol * 100:.0f}%)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("baseline", help="committed BENCH_regression.json")
    p.add_argument("current", help="freshly generated BENCH_regression.json")
    p.add_argument(
        "--rel-tol", type=float, default=0.05,
        help="allowed fractional cost increase per metric (default 0.05)",
    )
    args = p.parse_args(argv)

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = compare(baseline, current, args.rel_tol)
    if failures:
        print("bench regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1

    for name in sorted(current.get("datasets", {})):
        row = current["datasets"][name]
        print(
            f"{name:8s} comm {row['communication_s']:.6g} s  "
            f"total {row['total_simulated_s']:.6g} s  ok"
        )
    sp = current.get("serve_predict")
    if sp:
        print(
            f"serve predict mix {sp['predict_fraction']:.0%} "
            f"win {sp['throughput_win']:.2f}x  "
            f"warm/cold {sp['warm_cold_ratio']:.0f}x  "
            f"ledgers {'ok' if sp['ledger_mismatches'] == 0 else 'FAIL'}  ok"
        )
    sd = current.get("serve_deadline")
    if sd:
        pre = sd["preemption"]
        print(
            f"serve deadline misses {pre['deadline_misses_baseline']}"
            f"->{pre['deadline_misses_preemptive']} "
            f"({pre['miss_reduction']:.0%} cut, "
            f"{pre['preemptions']} preemptions)  "
            f"spec hits {sd['speculation']['spec_hits']}  "
            f"restart cold fits {sd['persistence']['cold_fits_restarted']}  "
            "ok"
        )
    ablation = current.get("kmeans_ablation")
    if ablation:
        for combo in sorted(ablation.get("combos", {})):
            t = ablation["combos"][combo]["total_simulated_s"]
            print(f"kmeans ablation {combo:14s} total {t:.6g} s  ok")
    multigpu = current.get("multigpu_eig")
    if multigpu:
        for name in sorted(multigpu.get("workloads", {})):
            cfg = multigpu["workloads"][name]["configs"]
            for p in sorted(cfg, key=int):
                print(
                    f"multigpu eig {name:8s} x{p} "
                    f"eig {cfg[p]['eig_simulated_s']:.6g} s  "
                    f"({cfg[p]['speedup_vs_1dev']:.2f}x)  ok"
                )
    precision = current.get("precision_ablation")
    if precision:
        for name in sorted(precision.get("datasets", {})):
            cells = precision["datasets"][name]["cells"]
            for cell in sorted(cells):
                c = cells[cell]
                print(
                    f"precision {name:8s} {cell:13s} "
                    f"{c['spmv_bytes']:.6g} B "
                    f"({c['byte_reduction_vs_fp64']:.2f}x, "
                    f"ari_vs_exact {c['ari_vs_exact']:.3f})  ok"
                )
    compressive = current.get("compressive_ablation")
    if compressive:
        for name in sorted(compressive.get("datasets", {})):
            wl = compressive["datasets"][name]
            for cell in sorted(wl["cells"]):
                c = wl["cells"][cell]
                print(
                    f"compressive {name:8s} {cell:11s} "
                    f"sim {c['total_simulated_s']:.6g} s  "
                    f"(ari {c['ari']:.3f}, ledger "
                    f"{'ok' if c['ledger_ok'] else 'FAIL'})  ok"
                )
        lg = compressive.get("large")
        if lg:
            print(
                f"compressive {lg['dataset']:8s} n={lg['n']:,} "
                f"sim {lg['total_simulated_s']:.6g} s "
                f"<= budget {lg['sim_budget_s']} s  "
                f"(ari {lg['ari']:.3f})  ok"
            )
    topo = current.get("topology_composition")
    if topo:
        comp = topo.get("composed", {})
        if comp:
            print(
                f"topology {comp['dataset']:8s} composed "
                f"{comp['total_composed_s']:.6g} s vs phased "
                f"{comp['total_phased_s']:.6g} s "
                f"({comp['speedup_vs_phased']:.3f}x)  ok"
            )
        for name in sorted(topo.get("partitions", {})):
            wl = topo["partitions"][name]
            h = wl["step_halo_bytes"]
            print(
                f"topology {name:8s} halo rows {h['rows']:,} B  "
                f"mincut {h['mincut']:,} B "
                f"(cut {wl['mincut_reduction_vs_rows']:.1%})  ok"
            )
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
