"""Extension — multi-GPU eigensolver strong scaling.

The paper's eigensolve is its dominant stage (Table VI: 93% of DBLP's
runtime on one K20c).  This bench shards the normalized-Laplacian SpMV
across 1/2/4 simulated devices — row-partitioned operator, local/halo
column split, halo exchange overlapped with the local kernel on
dedicated copy streams — and maps the strong-scaling curve on the two
graph workloads the acceptance gate names (dblp and syn200 at bench
scale).  Sharding is a pure time optimization: every device count must
produce bit-identical Ritz values and vectors, and the curve flattens
into a latency floor once per-step halo latency rivals the shrunken
local SpMV (visible at 4 devices on syn200)."""

import numpy as np
import pytest

from repro.core.workflow import hybrid_eigensolver
from repro.cuda.device import Device
from repro.cusparse.conversions import csr2coo
from repro.cusparse.matrices import csr_to_device
from repro.datasets.registry import load_dataset
from repro.graph.components import remove_isolated
from repro.graph.laplacian import device_sym_normalize

from conftest import BENCH_SCALES

#: device counts swept per workload
DEVICE_COUNTS = (1, 2, 4)
#: (dataset, k) pairs — the acceptance graphs at their bench scales
WORKLOADS = (("dblp", 16), ("syn200", 16))


def _operator(name: str):
    """Bench-scale normalized adjacency of ``name`` on a fresh device."""
    ds = load_dataset(name, scale=BENCH_SCALES[name], seed=0)
    W = remove_isolated(ds.graph)[0]
    dev = Device()
    dcoo = csr2coo(csr_to_device(dev, W))
    return dev, device_sym_normalize(dcoo), W.shape[0]


def _solve(name: str, k: int, n_devices: int):
    """One full solve; returns (theta, U, stats, makespan_seconds).

    The makespan is the primary device's ``elapsed`` delta — the same
    clock the pipeline reports as ``stages_simulated_s["eigensolver"]``.
    Concurrent per-device events overlap on that clock, so summing event
    durations would misread a multi-device solve as slower.
    """
    dev, op, _ = _operator(name)
    t0 = dev.elapsed
    theta, U, stats = hybrid_eigensolver(
        dev, op, k=k, tol=1e-8, seed=0, n_devices=n_devices
    )
    return theta, U, stats, dev.elapsed - t0


def multigpu_eig_summary() -> dict:
    """Machine-readable scaling summary (consumed by BENCH_regression.json).

    Per workload: the eigensolver makespan per device count, the speedup
    over one device, halo-exchange evidence (peer-bus bytes per step and
    in total), and a bit-parity flag over the spectra — the regression
    gate refuses any run where sharding changed a bit.
    """
    out: dict = {"device_counts": list(DEVICE_COUNTS), "workloads": {}}
    bit_identical = True
    for name, k in WORKLOADS:
        ref = None
        configs = {}
        for p in DEVICE_COUNTS:
            theta, U, stats, makespan = _solve(name, k, p)
            if ref is None:
                ref = (theta, U)
            else:
                bit_identical = bit_identical and (
                    theta.tobytes() == ref[0].tobytes()
                    and U.tobytes() == ref[1].tobytes()
                )
            entry = {
                "eig_simulated_s": makespan,
                "speedup_vs_1dev": None,
                "bytes_p2p": stats.bytes_p2p,
            }
            if stats.partition is not None:
                entry["step_halo_bytes"] = stats.partition["step_halo_bytes"]
            configs[str(p)] = entry
        t1 = configs["1"]["eig_simulated_s"]
        for p in DEVICE_COUNTS:
            configs[str(p)]["speedup_vs_1dev"] = (
                t1 / configs[str(p)]["eig_simulated_s"]
            )
        out["workloads"][name] = {
            "scale": BENCH_SCALES[name],
            "k": k,
            "configs": configs,
        }
    out["bit_identical"] = bit_identical
    return out


@pytest.fixture(scope="module")
def summary():
    return multigpu_eig_summary()


def test_multigpu_eig_report(summary, write_table):
    lines = [
        "Extension: multi-GPU eigensolver strong scaling "
        "(row-partitioned SpMV, overlapped halo exchange)",
        f"{'dataset':<10}{'devices':>8}{'eig t/s':>14}{'speedup':>10}"
        f"{'p2p bytes':>14}",
        "-" * 56,
    ]
    for name, wl in summary["workloads"].items():
        for p in summary["device_counts"]:
            c = wl["configs"][str(p)]
            lines.append(
                f"{name:<10}{p:>8}{c['eig_simulated_s']:>14.6f}"
                f"{c['speedup_vs_1dev']:>9.2f}x{c['bytes_p2p']:>14,}"
            )
    lines += [
        "",
        "identical spectra on every device count (asserted).",
    ]
    write_table("extension_multigpu_eig", "\n".join(lines))

    assert summary["bit_identical"] is True
    for name, wl in summary["workloads"].items():
        configs = wl["configs"]
        # the acceptance bar: 2 devices beat 1 on both graphs
        assert configs["2"]["speedup_vs_1dev"] > 1.0, name
        # halo traffic is real and metered on the peer bus
        assert configs["2"]["bytes_p2p"] > 0
        assert configs["1"]["bytes_p2p"] == 0
        # sub-linear: overlap hides latency, it does not conjure bandwidth
        assert configs["4"]["speedup_vs_1dev"] < 4.0


def test_halo_bytes_scale_with_cut(summary):
    """More shards cut more edges: 4 devices never exchange fewer bytes
    per step than 2."""
    for wl in summary["workloads"].values():
        c2 = wl["configs"]["2"]
        c4 = wl["configs"]["4"]
        assert c4["step_halo_bytes"] >= c2["step_halo_bytes"]
