"""Tentpole — topology-aware multi-GPU composition.

The whole fit (graph upload, Laplacian, sharded eigensolve, multi-device
k-means) runs as ONE multi-device plan: rows are partitioned once, the
embedding shards stay resident on their owners between the eigensolve and
k-means, and every inter-stage gather/scatter the phase-by-phase path
paid for is elided.  This bench maps the three claims the regression
gate freezes:

1. **Composition wins.**  The composed fit beats the phase-by-phase
   multi-device fit (sharded eigensolve, then single-device k-means with
   a full re-upload) end to end at two devices.
2. **Min-cut cuts halo.**  On community graphs with shuffled vertex ids
   the BFS-grow min-cut partitioner reduces per-step halo bytes by at
   least 20% versus contiguous row splits — contiguous splits cannot see
   a community structure that a permutation has scattered.
3. **Bit-identity.**  Composition is a pure *time* optimization: labels
   and spectra are bit-identical at every device count and partition
   mode, and the analytic transfer ledger of the composed k-means equals
   the device traffic meters exactly (``ledger == meter``).
"""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.cuda.device import Device
from repro.cusparse.matrices import csr_to_device
from repro.cusparse.partition import partition_bounds, partition_csr
from repro.datasets.registry import load_dataset
from repro.datasets.sbm import stochastic_block_model
from repro.hw.costmodel import TransferCostModel
from repro.hw.topology import paper_topology
from repro.kmeans.init import kmeans_plus_plus
from repro.kmeans.multi_gpu import kmeans_composed
from repro.sparse.construct import from_edge_list

from conftest import BENCH_SCALES

#: device counts the bit-parity sweep covers
DEVICE_COUNTS = (1, 2, 4)
#: the makespan-comparison workload: dblp is the paper's eigensolver-bound
#: graph, run above bench scale so both stages have real work to overlap
COMPOSED_WORKLOAD = ("dblp", 0.1)
#: the halo gate: mincut must cut >= 20% of rows-mode halo bytes
MIN_HALO_REDUCTION = 0.2

#: shuffled-community graphs for the partitioner comparison.  Vertex ids
#: are permuted so contiguous ("rows"/"nnz") splits straddle every
#: community; the min-cut BFS-grow partitioner rediscovers them.
SBM_WORKLOADS = {
    "sbm4x60": dict(sizes=[60, 60, 60, 60], p_in=0.25, p_out=0.01,
                    graph_seed=7, perm_seed=3),
    "sbm4x80": dict(sizes=[80, 80, 80, 80], p_in=0.25, p_out=0.008,
                    graph_seed=11, perm_seed=5),
}


def _shuffled_sbm(spec: dict):
    """A stochastic block model with its vertex ids shuffled."""
    edges, _ = stochastic_block_model(
        spec["sizes"], p_in=spec["p_in"], p_out=spec["p_out"],
        rng=np.random.default_rng(spec["graph_seed"]),
    )
    n = int(sum(spec["sizes"]))
    perm = np.random.default_rng(spec["perm_seed"]).permutation(n)
    return from_edge_list(perm[edges], n_nodes=n).to_csr()


def _device_group(p: int) -> list[Device]:
    """p topology-aware devices on one shared timeline."""
    topo = paper_topology(p)
    primary = Device(device_index=0, topology=topo)
    primary.transfer_cost = TransferCostModel(primary.pcie, topo)
    return [primary] + [
        Device(primary.spec, primary.pcie, timeline=primary.timeline,
               device_index=d, topology=topo)
        for d in range(1, p)
    ]


def _fit(name: str, scale: float, **kw):
    ds = load_dataset(name, scale=scale, seed=0)
    est = SpectralClustering(
        n_clusters=ds.n_clusters, eig_tol=1e-8, seed=0, **kw
    )
    return est.fit(graph=ds.graph)


def _composed_vs_phased() -> dict:
    """End-to-end makespan: one composed plan vs phase-by-phase at 2 dev.

    The phased baseline is PR-5's best multi-device configuration — the
    eigensolve sharded over 2 devices, k-means on one — which gathers the
    embedding off-device between the stages and re-uploads it.  The
    composed fit partitions once and keeps shards resident.
    """
    name, scale = COMPOSED_WORKLOAD
    composed = _fit(name, scale, fit_devices=2)
    phased = _fit(name, scale, eig_devices=2)
    assert composed.labels.tobytes() == phased.labels.tobytes()
    t_c = composed.timings.total_simulated()
    t_p = phased.timings.total_simulated()
    return {
        "dataset": name,
        "scale": scale,
        "n_devices": 2,
        "total_composed_s": t_c,
        "total_phased_s": t_p,
        "speedup_vs_phased": t_p / t_c,
        "kmeans_composed_s": composed.timings.simulated["kmeans"],
        "kmeans_phased_s": phased.timings.simulated["kmeans"],
        "composed_stats": composed.eig_stats["composed"],
    }


def _partition_halo() -> dict:
    """Per-step halo bytes of every partition mode on every workload."""
    graphs = {nm: _shuffled_sbm(spec) for nm, spec in SBM_WORKLOADS.items()}
    ds = load_dataset("dblp", scale=BENCH_SCALES["dblp"], seed=0)
    graphs["dblp"] = ds.graph.to_csr()

    out = {}
    for nm, host in graphs.items():
        halo = {}
        for mode in ("rows", "nnz", "mincut"):
            devices = _device_group(2)
            plan = partition_csr(
                csr_to_device(devices[0], host), devices, mode=mode
            )
            halo[mode] = int(plan.step_halo_bytes())
            plan.free()
        out[nm] = {
            "n": int(host.shape[0]),
            "step_halo_bytes": halo,
            "mincut_reduction_vs_rows": 1.0 - halo["mincut"] / halo["rows"],
        }
    return out


def _bit_parity() -> bool:
    """Labels and spectra identical at every device count and mode."""
    name, scale = "dblp", BENCH_SCALES["dblp"]
    ref = _fit(name, scale)
    ok = True
    for p in DEVICE_COUNTS[1:]:
        r = _fit(name, scale, fit_devices=p)
        ok = ok and r.labels.tobytes() == ref.labels.tobytes()
        ok = ok and r.eigenvalues.tobytes() == ref.eigenvalues.tobytes()
        ok = ok and r.embedding.tobytes() == ref.embedding.tobytes()
    for mode in ("rows", "mincut"):
        r = _fit(name, scale, fit_devices=2, partition_mode=mode)
        ok = ok and r.labels.tobytes() == ref.labels.tobytes()
    return ok


def _ledger_vs_meter() -> dict:
    """The composed k-means' analytic transfer plan vs the device meters.

    Fresh devices run nothing but the composed k-means, so the summed
    traffic meters must equal the returned plan byte-for-byte — any
    drift means a charged transfer escaped the ledger (or vice versa).
    """
    r = np.random.default_rng(0)
    k, d, n = 8, 8, 4000
    centers = r.standard_normal((k, d)) * 6
    V = centers[r.integers(0, k, n)] + r.standard_normal((n, d))
    C0 = kmeans_plus_plus(V[:1000], k, np.random.default_rng(1))

    devices = _device_group(2)
    bounds = partition_bounds(n, 2)
    row_sets = [
        np.arange(bounds[j], bounds[j + 1], dtype=np.int64)
        for j in range(2)
    ]
    _, _, plan = kmeans_composed(
        devices, row_sets, V, k, initial_centroids=C0, max_iter=6
    )
    meter = {key: 0 for key in plan}
    for dev in devices:
        m = dev.transfer_stats()
        meter["h2d_bytes"] += m["bytes_h2d"]
        meter["d2h_bytes"] += m["bytes_d2h"]
        meter["p2p_bytes"] += m["bytes_p2p"]
        meter["elided_bytes"] += m["bytes_elided"]
        meter["elided_count"] += m["transfers_elided"]
    checked = ("h2d_bytes", "d2h_bytes", "p2p_bytes",
               "elided_bytes", "elided_count")
    return {
        "plan": {key: int(plan[key]) for key in checked},
        "meter": {key: int(meter[key]) for key in checked},
        "ok": all(plan[key] == meter[key] for key in checked),
    }


#: memoized summary — everything is a deterministic function of fixed
#: seeds, so the fused CI invocation (this bench + bench_regression.py in
#: one process) computes the composed fits once
_cache: dict | None = None


def topology_composition_summary() -> dict:
    """Machine-readable summary (consumed by BENCH_regression.json).

    The regression gate (``check_regression.py``) refuses any run where
    the composed fit loses its 2-device win, mincut drops below the 20%
    halo-reduction bar on a community graph, a bit diverges across
    device counts, or the k-means ledger drifts from the meters.
    """
    global _cache
    if _cache is not None:
        return _cache
    ledger = _ledger_vs_meter()
    _cache = {
        "device_counts": list(DEVICE_COUNTS),
        "min_halo_reduction": MIN_HALO_REDUCTION,
        "composed": _composed_vs_phased(),
        "partitions": _partition_halo(),
        "bit_identical": _bit_parity(),
        "ledger": ledger,
        "ledger_ok": ledger["ok"],
    }
    return _cache


@pytest.fixture(scope="module")
def summary():
    return topology_composition_summary()


def test_topology_composition_report(summary, write_table):
    comp = summary["composed"]
    lines = [
        "Tentpole: topology-aware multi-GPU composition "
        "(one partition, resident shards, composed k-means)",
        "",
        f"end-to-end @ 2 devices on {comp['dataset']} "
        f"(scale {comp['scale']}):",
        f"{'path':<22}{'total/s':>12}{'kmeans/s':>12}",
        "-" * 46,
        f"{'phase-by-phase':<22}{comp['total_phased_s']:>12.5f}"
        f"{comp['kmeans_phased_s']:>12.5f}",
        f"{'composed plan':<22}{comp['total_composed_s']:>12.5f}"
        f"{comp['kmeans_composed_s']:>12.5f}",
        f"{'speedup':<22}{comp['speedup_vs_phased']:>11.3f}x",
        "",
        "per-step halo bytes @ 2 devices:",
        f"{'dataset':<10}{'rows':>10}{'nnz':>10}{'mincut':>10}"
        f"{'cut vs rows':>13}",
        "-" * 53,
    ]
    for nm, wl in summary["partitions"].items():
        h = wl["step_halo_bytes"]
        lines.append(
            f"{nm:<10}{h['rows']:>10,}{h['nnz']:>10,}{h['mincut']:>10,}"
            f"{wl['mincut_reduction_vs_rows']:>12.1%}"
        )
    lines += [
        "",
        "identical labels/spectra at every device count (asserted); "
        "k-means transfer ledger == device meters (asserted).",
    ]
    write_table("topology_composition", "\n".join(lines))

    # the acceptance bars the regression gate freezes
    assert comp["speedup_vs_phased"] > 1.0
    for nm in SBM_WORKLOADS:
        red = summary["partitions"][nm]["mincut_reduction_vs_rows"]
        assert red >= MIN_HALO_REDUCTION, (nm, red)
    assert summary["bit_identical"] is True
    assert summary["ledger_ok"] is True


def test_resident_shards_elide_kmeans_upload(summary):
    """The composed fit's k-means never re-uploads the embedding: the
    shard uploads the phased path pays for appear as elided bytes."""
    tr = summary["composed"]["composed_stats"]["kmeans_transfers"]
    assert tr["elided_bytes"] > 0
    assert tr["elided_count"] >= summary["composed"]["n_devices"]


def test_nnz_mode_halo_tracks_rows(summary):
    """nnz balancing targets load, not cut: its halo stays in the same
    regime as contiguous rows (both far above mincut on communities)."""
    for nm in SBM_WORKLOADS:
        h = summary["partitions"][nm]["step_halo_bytes"]
        assert h["mincut"] < h["nnz"]
        assert h["mincut"] < h["rows"]


def test_bench_composed_fit(benchmark):
    name, scale = "dblp", BENCH_SCALES["dblp"]
    ds = load_dataset(name, scale=scale, seed=0)
    benchmark.pedantic(
        lambda: SpectralClustering(
            n_clusters=ds.n_clusters, eig_tol=1e-8, seed=0, fit_devices=2
        ).fit(graph=ds.graph),
        rounds=1, iterations=1,
    )
