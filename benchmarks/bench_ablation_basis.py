"""Ablation — Lanczos basis size m.

§IV.B fixes m = 2k ("usually set as m = max(n, 2k)" — the text's max is
an obvious typo for min) and notes the O(m³ + nm²) interface cost "scales
relatively poorly … when k is large".  This bench sweeps m and shows the
trade: small m → more restarts and operator applications; large m → fewer
restarts but heavier per-restart dense work, with the paper's 2k a sane
middle."""

import numpy as np
import pytest

from repro.core.workflow import hybrid_eigensolver
from repro.cuda.device import Device
from repro.cusparse.matrices import coo_to_device
from repro.datasets.registry import load_dataset
from repro.graph.laplacian import device_sym_normalize

K = 20


@pytest.fixture(scope="module")
def graph():
    return load_dataset("syn200", scale=0.1, seed=0).graph


def _run(graph, m):
    dev = Device()
    dcsr = device_sym_normalize(coo_to_device(dev, graph.sorted_by_row()))
    t0 = dev.elapsed
    theta, _, stats = hybrid_eigensolver(dev, dcsr, k=K, m=m, tol=1e-8, seed=0)
    return theta, stats, dev.elapsed - t0


def test_ablation_basis_report(graph, write_table):
    rows = []
    results = {}
    for factor, m in [("1.5k", int(1.5 * K) + 1), ("2k", 2 * K + 1),
                      ("3k", 3 * K), ("5k", 5 * K)]:
        theta, stats, sim = _run(graph, m)
        results[factor] = (theta, stats, sim)
        rows.append(
            f"{factor:<6}{m:>5}{stats.n_op:>8}{stats.n_restarts:>10}{sim:>14.5f}"
        )
    lines = [
        f"Ablation: Lanczos basis size (syn200, k={K})",
        f"{'m':<6}{'m':>5}{'n_op':>8}{'restarts':>10}{'sim eig t/s':>14}",
        "-" * 45,
        *rows,
    ]
    write_table("ablation_basis", "\n".join(lines))

    # all basis sizes agree on the spectrum
    ref = results["2k"][0]
    for theta, _, _ in results.values():
        assert np.allclose(np.sort(theta), np.sort(ref), atol=1e-6)
    # fewer restarts with a larger basis
    assert results["5k"][1].n_restarts <= results["1.5k"][1].n_restarts


@pytest.mark.parametrize("m", [2 * K + 1, 5 * K])
def test_bench_eigensolver_basis(benchmark, graph, m):
    benchmark.pedantic(
        _run, args=(graph, m), rounds=2, iterations=1
    )
