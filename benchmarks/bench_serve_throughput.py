"""Serving-layer throughput: batched + cached service vs sequential.

The serving claim in ISSUE terms: on a replayed workload with repeated
graph fingerprints, micro-batching (shared operator builds and Lanczos
solves) plus the embedding cache must deliver at least 2x the simulated
throughput of a one-at-a-time service, while returning bit-identical
responses.  This bench measures the simulated axis on the standard
synthetic trace and pins the speedup; the wall-time axis rides along via
pytest-benchmark on the batched path.
"""

import numpy as np
import pytest

from repro.serve import (
    ClusterService,
    ServiceConfig,
    run_sequential,
    synthetic_trace,
)

N_REQUESTS = 16


@pytest.fixture(scope="module")
def trace():
    return synthetic_trace(n_requests=N_REQUESTS, mean_interarrival=0.001,
                           seed=0)


@pytest.fixture(scope="module")
def served(trace):
    """One batched+cached service run, shared by the module's tests."""
    service = ClusterService(ServiceConfig(
        max_batch=8, cache_entries=32, n_devices=1, streams_per_device=2,
        queue_capacity=64,
    ))
    return service.process(trace)


@pytest.fixture(scope="module")
def sequential(trace):
    return run_sequential(trace)


def serve_summary(trace=None) -> dict:
    """Machine-readable serving summary (consumed by BENCH_regression.json)."""
    trace = trace if trace is not None else synthetic_trace(
        n_requests=N_REQUESTS, mean_interarrival=0.001, seed=0
    )
    service = ClusterService(ServiceConfig(
        max_batch=8, cache_entries=32, n_devices=1, streams_per_device=2,
    ))
    _, rep = service.process(trace)
    _, seq = run_sequential(trace)
    return {
        "n_requests": len(trace),
        "makespan_s": rep.makespan,
        "sequential_makespan_s": seq.makespan,
        "speedup": seq.makespan / rep.makespan,
        "throughput_rps": rep.throughput_rps,
        "sequential_throughput_rps": seq.throughput_rps,
        "cache_hit_rate": rep.cache["hit_rate"],
        "mean_batch_size": rep.batches["mean_batch_size"],
        "latency_p95_s": rep.latency.p95,
    }


def test_speedup_at_least_2x(served, sequential):
    _, rep = served
    _, seq = sequential
    assert rep.n_ok == seq.n_ok == N_REQUESTS
    speedup = seq.makespan / rep.makespan
    assert speedup >= 2.0, f"batched+cached service only {speedup:.2f}x"


def test_cache_and_batching_engaged(served):
    _, rep = served
    assert rep.n_cache_hits > 0
    assert rep.batches["max_batch"] > 1


def test_fast_path_is_bit_identical(served, sequential):
    fast, _ = served
    slow, _ = sequential
    for a, b in zip(fast, slow):
        assert a.ok and b.ok
        assert np.array_equal(a.labels, b.labels), a.request_id
        assert np.array_equal(a.embedding, b.embedding), a.request_id


def test_report_table(served, write_table):
    _, rep = served
    write_table("serve_throughput", rep.format_report())


def test_serve_wall_time(benchmark, trace):
    """Wall-clock cost of the batched service path (regression axis)."""

    def run():
        service = ClusterService(ServiceConfig(max_batch=8, cache_entries=32))
        return service.process(trace)

    responses, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.ok for r in responses)
