"""Table IV / Figure 4 — spectral clustering on the FB graph (k=10).

The small-k regime: the eigensolver is SpMV-dominated (m = 2k+1 = 21 is
tiny), so the hybrid speedup comes from the GPU SpMV itself (~5x in the
paper), while k-means sees only a minor factor (~4x)."""

import pytest

from repro.bench.report import format_comparison, format_paper_check
from repro.core.pipeline import SpectralClustering
from repro.datasets.registry import load_dataset

from conftest import BENCH_SCALES


def test_table4_report(comparison, write_table):
    r = comparison("fb")
    write_table("table4_fb", format_comparison(r) + "\n\n" + format_paper_check(r))
    # Figure 4 shape at paper scale: CUDA wins both stages
    for stage, cols in r.projection.items():
        assert cols["cuda"] <= cols["matlab"], stage
        assert cols["cuda"] <= cols["python"], stage


def test_speedups_are_modest_at_small_k(comparison):
    """Paper: ~5x eigensolver, ~4x k-means — small factors, not the
    100-400x of the large-k datasets."""
    r = comparison("fb")
    eig = r.projection["eigensolver"]
    assert eig["matlab"] / eig["cuda"] < 50
    km = r.projection["kmeans"]
    assert km["matlab"] / km["cuda"] < 100


def test_quality_all_columns(comparison):
    r = comparison("fb")
    assert min(r.quality.values()) > 0.5


@pytest.fixture(scope="module")
def fb_ds():
    return load_dataset("fb", scale=BENCH_SCALES["fb"], seed=0)


def test_bench_full_pipeline(benchmark, fb_ds):
    sc = SpectralClustering(n_clusters=fb_ds.n_clusters, eig_tol=1e-8, seed=0)
    benchmark(sc.fit, graph=fb_ds.graph)


def test_bench_eigensolver_stage(benchmark, fb_ds):
    from repro.core.workflow import hybrid_eigensolver
    from repro.cuda.device import Device
    from repro.cusparse.matrices import coo_to_device
    from repro.graph.laplacian import device_sym_normalize

    def run():
        dev = Device()
        dcoo = coo_to_device(dev, fb_ds.graph.sorted_by_row())
        dcsr = device_sym_normalize(dcoo)
        hybrid_eigensolver(dev, dcsr, k=10, tol=1e-8, seed=0)

    benchmark(run)
