"""Ablation — k-means seeding: k-means++ (Algorithm 5) vs random.

Probes the paper's claim that k-means++ "has been shown to converge faster
and achieve better results than the traditional k-means algorithm" (§IV.C),
which is why the CUDA and Python columns need fewer iterations than
Matlab's random seeding."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.kmeans.gpu import kmeans_device

SEEDS = range(8)


@pytest.fixture(scope="module")
def embedding():
    """A realistic k-means input: the spectral embedding of an SBM."""
    from repro.baselines.reference import reference_spectral_clustering
    from repro.datasets.registry import load_dataset

    ds = load_dataset("syn200", scale=0.1, seed=0)
    ref = reference_spectral_clustering(
        graph=ds.graph, n_clusters=ds.n_clusters, eig_tol=1e-8, seed=0
    )
    return ref.embedding, ds.n_clusters


def _trials(embedding, k, init):
    iters, inertia, sim = [], [], []
    for s in SEEDS:
        dev = Device()
        res = kmeans_device(dev, embedding, k, init=init, seed=s)
        iters.append(res.n_iter)
        inertia.append(res.inertia)
        sim.append(dev.timeline.total(tag="kmeans"))
    return np.array(iters), np.array(inertia), np.array(sim)


def test_ablation_init_report(embedding, write_table):
    V, k = embedding
    pp_i, pp_j, pp_t = _trials(V, k, "k-means++")
    rd_i, rd_j, rd_t = _trials(V, k, "random")
    lines = [
        f"Ablation: k-means seeding on syn200 embedding (n={V.shape[0]}, k={k})",
        f"{'init':<12}{'iters(med)':>12}{'inertia(med)':>16}{'sim t(med)/s':>14}",
        "-" * 54,
        f"{'k-means++':<12}{np.median(pp_i):>12.1f}{np.median(pp_j):>16.6g}"
        f"{np.median(pp_t):>14.6f}",
        f"{'random':<12}{np.median(rd_i):>12.1f}{np.median(rd_j):>16.6g}"
        f"{np.median(rd_t):>14.6f}",
    ]
    write_table("ablation_init", "\n".join(lines))
    # the paper's claim: fewer iterations and no worse inertia
    assert np.median(pp_i) <= np.median(rd_i)
    assert np.median(pp_j) <= np.median(rd_j) * 1.05


def test_bench_kmeanspp_seeding(benchmark, embedding):
    V, k = embedding
    from repro.kmeans.init import kmeans_plus_plus

    benchmark(kmeans_plus_plus, V, k, np.random.default_rng(0))


def test_bench_full_kmeans_pp(benchmark, embedding):
    V, k = embedding
    benchmark(lambda: kmeans_device(Device(), V, k, init="k-means++", seed=0))


def test_bench_full_kmeans_random(benchmark, embedding):
    V, k = embedding
    benchmark(lambda: kmeans_device(Device(), V, k, init="random", seed=0))
