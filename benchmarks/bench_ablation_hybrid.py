"""Ablation — the hybrid split itself: GPU SpMV + PCIe round trip vs
keeping the SpMV on the CPU.

The paper's core architectural bet (Algorithm 3) is that shipping the
iteration vector over PCIe twice per step still wins, because the GPU SpMV
advantage exceeds the transfer cost.  This bench evaluates both deployments
from the cost models across problem sizes and locates the crossover."""

import numpy as np

from repro.hw.costmodel import CPUCostModel, GPUCostModel, TransferCostModel
from repro.hw.spec import K20C, PCIE_X16_GEN2, XEON_E5_2690

GPU = GPUCostModel(K20C)
CPU = CPUCostModel(XEON_E5_2690)
PCIE = TransferCostModel(PCIE_X16_GEN2)


def per_op_hybrid(n, nnz):
    """One Algorithm 3 iteration: H2D + gpu csrmv + D2H."""
    return PCIE.h2d_time(n * 8) + GPU.spmv_time(n, nnz) + PCIE.d2h_time(n * 8)


def per_op_cpu(n, nnz):
    """The same iteration with a host SpMV (8-thread MKL-class)."""
    return CPU.spmv_time(n, nnz, threads=8)


def test_ablation_hybrid_report(write_table):
    rows = []
    for n, deg in [(4039, 44), (20000, 77), (142541, 56), (317080, 6.6),
                   (1_000_000, 50)]:
        nnz = int(n * deg)
        h = per_op_hybrid(n, nnz)
        c = per_op_cpu(n, nnz)
        rows.append(
            f"{n:>9}{nnz:>11}{h * 1e3:>12.4f}{c * 1e3:>12.4f}"
            f"{c / h:>8.2f}x"
        )
    lines = [
        "Ablation: hybrid (GPU SpMV + PCIe) vs CPU SpMV, per Lanczos step",
        f"{'n':>9}{'nnz':>11}{'hybrid/ms':>12}{'cpu/ms':>12}{'gain':>9}",
        "-" * 54,
        *rows,
    ]
    write_table("ablation_hybrid", "\n".join(lines))


def test_hybrid_wins_at_paper_densities():
    """At every Table II workload the hybrid step is faster."""
    for n, nnz in [(4039, 2 * 88234), (20000, 2 * 773388),
                   (142541, 2 * 3992290), (317080, 2 * 1049866)]:
        assert per_op_hybrid(n, nnz) < per_op_cpu(n, nnz), (n, nnz)


def test_crossover_exists_for_ultra_sparse_graphs():
    """When the matrix is so sparse that the SpMV is trivial, the PCIe
    latency+transfer can exceed the CPU SpMV — the hybrid split is not
    free, it is justified by the workloads' density."""
    n = 2_000_000
    nnz = int(1.05 * n)  # barely more than a diagonal
    assert per_op_hybrid(n, nnz) > per_op_cpu(n, nnz)


def test_gain_grows_with_density():
    n = 100_000
    gains = [
        per_op_cpu(n, n * d) / per_op_hybrid(n, n * d) for d in (5, 20, 80, 320)
    ]
    assert all(b >= a * 0.95 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > gains[0]


def test_bench_cost_model_evaluation(benchmark):
    """The cost model itself is cheap enough to sweep densely."""

    def sweep():
        return [per_op_hybrid(n, 30 * n) for n in range(1000, 200000, 1000)]

    benchmark(sweep)
