"""Regression tracking — frozen simulated-time records.

The simulated tables are deterministic functions of (dataset, scale,
seed), so any drift between runs is a real behavioral change in the
library.  This bench freezes a record per dataset under
``benchmarks/records/`` on first execution and compares every subsequent
run against it with zero tolerance for the simulated columns.

Delete the records to re-baseline after an intentional cost-model change.
"""

from pathlib import Path

import pytest

from repro.bench.record import diff_records, load_record, save_record
from repro.bench.runner import run_comparison

from conftest import BENCH_SCALES

RECORDS = Path(__file__).parent / "records"


@pytest.mark.parametrize("name", sorted(BENCH_SCALES))
def test_simulated_times_frozen(name, comparison):
    r = comparison(name)
    RECORDS.mkdir(exist_ok=True)
    path = RECORDS / f"{name}_scale{BENCH_SCALES[name]}.json"
    if not path.exists():
        save_record(path, r)
        pytest.skip(f"baseline recorded at {path.name}; rerun to compare")
    drifts = diff_records(load_record(path), r, rel_tol=1e-9)
    assert not drifts, "\n".join(drifts)


def test_quality_frozen(comparison):
    """Clustering quality (ARI) is part of the frozen record too."""
    for name in sorted(BENCH_SCALES):
        r = comparison(name)
        path = RECORDS / f"{name}_scale{BENCH_SCALES[name]}.json"
        if not path.exists():
            pytest.skip("baselines not yet recorded")
        old = load_record(path)
        for col, ari in old.get("quality", {}).items():
            assert r.quality[col] == pytest.approx(ari, abs=1e-12), (name, col)


def test_emit_machine_readable_summary(comparison):
    """Write ``BENCH_regression.json`` at the repo root.

    The machine-readable companion of the frozen records: per-dataset
    per-stage simulated times and throughput (nodes per simulated
    second), plus the serving-layer throughput summary.  CI uploads this
    file as a workflow artifact so every run leaves a comparable trace.
    """
    import json

    from bench_ablation_kmeans import kmeans_ablation_summary
    from bench_compressive_ablation import compressive_ablation_summary
    from bench_multigpu_eig import multigpu_eig_summary
    from bench_precision_ablation import precision_ablation_summary
    from bench_serve_deadline import serve_deadline_summary
    from bench_serve_predict import serve_predict_summary
    from bench_serve_throughput import serve_summary
    from bench_topology_composition import topology_composition_summary

    payload = {"schema_version": 1, "datasets": {}}
    for name in sorted(BENCH_SCALES):
        r = comparison(name)
        cuda_stages = {
            stage: cols["cuda"] for stage, cols in r.stages.items()
        }
        total = sum(cuda_stages.values())
        payload["datasets"][name] = {
            "scale": r.scale,
            "n": r.n,
            "nnz_directed": r.nnz_directed,
            "k": r.k,
            "stages_simulated_s": cuda_stages,
            "total_simulated_s": total,
            "throughput_nodes_per_sim_s": r.n / total if total > 0 else 0.0,
            "communication_s": r.comm,
            "computation_s": r.comp,
            "ari_cuda": r.quality.get("cuda"),
        }
    payload["serve"] = serve_summary()
    payload["serve_predict"] = serve_predict_summary()
    payload["serve_deadline"] = serve_deadline_summary()
    payload["kmeans_ablation"] = kmeans_ablation_summary()
    payload["multigpu_eig"] = multigpu_eig_summary()
    payload["precision_ablation"] = precision_ablation_summary()
    payload["compressive_ablation"] = compressive_ablation_summary()
    payload["topology_composition"] = topology_composition_summary()
    out = Path(__file__).parent.parent / "BENCH_regression.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    written = json.loads(out.read_text())
    assert written["datasets"].keys() == BENCH_SCALES.keys()
    assert written["serve"]["speedup"] >= 2.0
    sp = written["serve_predict"]
    assert sp["throughput_win"] >= sp["min_throughput_win"]
    assert sp["warm_cold_ratio"] >= sp["min_warm_cold_ratio"]
    assert sp["ledger_mismatches"] == 0
    for wl in sp["refit_parity"].values():
        assert wl["labels_bit_identical"] is True
    sd = written["serve_deadline"]
    pre = sd["preemption"]
    assert pre["deadline_misses_baseline"] > 0
    assert pre["miss_reduction"] >= pre["min_miss_reduction"]
    assert pre["throughput_ratio"] >= pre["min_throughput_ratio"]
    assert pre["labels_bit_identical"] is True
    assert sd["speculation"]["spec_hits"] > 0
    assert sd["speculation"]["labels_bit_identical"] is True
    assert sd["persistence"]["cold_fits_restarted"] == 0
    assert sd["persistence"]["labels_bit_identical"] is True
    assert written["kmeans_ablation"]["bit_identical"] is True
    assert written["kmeans_ablation"]["speedup_default_vs_baseline"] > 1.0
    assert written["multigpu_eig"]["bit_identical"] is True
    for wl in written["multigpu_eig"]["workloads"].values():
        assert wl["configs"]["2"]["speedup_vs_1dev"] > 1.0
    prec = written["precision_ablation"]
    assert prec["fp64_bit_identical"] is True
    for wl in prec["datasets"].values():
        assert (
            wl["cells"]["fp32_lanczos"]["byte_reduction_vs_fp64"]
            >= prec["min_fp32_byte_reduction"]
        )
    comp = written["compressive_ablation"]
    assert comp["fp32_ledger_ok"] is True
    assert comp["large"]["n"] >= comp["large"]["min_n"]
    assert comp["large"]["ari"] >= comp["large"]["ari_floor"]
    assert comp["large"]["total_simulated_s"] <= comp["large"]["sim_budget_s"]
    for wl in comp["datasets"].values():
        cell = wl["cells"][comp["default_cell"]]
        assert cell["ledger_ok"] is True
        assert (
            cell["ari"]
            >= comp["min_ari_ratio_vs_exact"] * wl["ari_exact"]
        )
    topo = written["topology_composition"]
    assert topo["bit_identical"] is True
    assert topo["ledger_ok"] is True
    assert topo["composed"]["speedup_vs_phased"] > 1.0
    reductions = [
        wl["mincut_reduction_vs_rows"]
        for wl in topo["partitions"].values()
    ]
    winners = sum(r >= topo["min_halo_reduction"] for r in reductions)
    assert winners >= 2
