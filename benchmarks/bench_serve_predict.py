"""Predict fast path: the fit-once-predict-many serving claim.

The acceptance shape of the predict tier, all on the simulated clock:

* a 90%-predict workload through the fast lane sustains >=3x the
  throughput of the all-cold-fit baseline (``run_sequential`` with the
  cache disabled pays one full fit per predict);
* a warm predict's service time sits >=100x below a cold fit's latency
  at the median;
* every audited predict transfer ledger equals the device meter exactly;
* a delta-forced refit reproduces a cold fit on the patched graph bit
  for bit, on every bench dataset.

``serve_predict_summary()`` is consumed by ``bench_regression.py`` into
the ``serve_predict`` section of ``BENCH_regression.json``, which
``check_regression.py`` gates in CI.
"""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.datasets import load_dataset
from repro.serve import (
    ClusterService,
    ServiceConfig,
    run_sequential,
    synthetic_predict_trace,
)

from conftest import BENCH_SCALES

N_REQUESTS = 40
PREDICT_FRACTION = 0.9
MIN_THROUGHPUT_WIN = 3.0
MIN_WARM_COLD_RATIO = 100.0


def _trace():
    return synthetic_predict_trace(
        n_requests=N_REQUESTS, predict_fraction=PREDICT_FRACTION, seed=0,
    )


@pytest.fixture(scope="module")
def served():
    service = ClusterService(ServiceConfig(
        max_batch=8, cache_entries=32, n_devices=1, streams_per_device=2,
        queue_capacity=64,
    ))
    return service.process(_trace())


@pytest.fixture(scope="module")
def all_cold():
    """The no-serving-tier baseline: cache off, one lane, one at a time."""
    return run_sequential(_trace())


def _refit_parity(name: str, scale: float) -> dict:
    """Force a delta refit on one bench dataset; compare to a cold fit."""
    ds = load_dataset(name, scale=scale, seed=0)
    est = dict(n_clusters=ds.n_clusters, seed=0)
    if ds.graph is not None:
        res = SpectralClustering(**est).fit(graph=ds.graph)
    else:
        res = SpectralClustering(
            similarity="crosscorr", **est
        ).fit(X=ds.points, edges=ds.edges)
    model = res.model
    picks = model.kept[:6]
    big = np.column_stack([picks[:3], picks[3:]])
    weight, out = 10.0, None
    for _ in range(12):  # escalate until the drift bound crosses the gap
        out = model.apply_delta(edges_added=big, weights_added=weight)
        if out.refit:
            break
        weight *= 10.0
    cold = SpectralClustering(**model.params).fit(graph=model.graph)
    identical = bool(
        out.refit
        and np.array_equal(
            out.labels[model.kept], cold.labels[cold.model.kept]
        )
    )
    return {
        "n": int(ds.n),
        "k": int(ds.n_clusters),
        "refit_triggered": bool(out.refit),
        "labels_bit_identical": identical,
    }


def serve_predict_summary() -> dict:
    """Machine-readable predict-tier summary for BENCH_regression.json."""
    service = ClusterService(ServiceConfig(
        max_batch=8, cache_entries=32, n_devices=1, streams_per_device=2,
    ))
    _, rep = service.process(_trace())
    _, cold = run_sequential(_trace())
    warm_p50 = rep.predict["warm_service_s"]["p50"]
    cold_p50 = rep.predict["cold_latency_s"]["p50"]
    return {
        "n_requests": N_REQUESTS,
        "predict_fraction": PREDICT_FRACTION,
        "min_throughput_win": MIN_THROUGHPUT_WIN,
        "min_warm_cold_ratio": MIN_WARM_COLD_RATIO,
        "throughput_rps": rep.throughput_rps,
        "all_cold_throughput_rps": cold.throughput_rps,
        "throughput_win": rep.throughput_rps / cold.throughput_rps,
        "model_hits": rep.predict["model_hits"],
        "cold_fits": rep.predict["cold_fits"],
        "warm_predict_p50_s": warm_p50,
        "cold_fit_p50_s": cold_p50,
        "warm_cold_ratio": cold_p50 / warm_p50 if warm_p50 > 0 else 0.0,
        "ledger_checked": rep.predict["ledger_checked"],
        "ledger_mismatches": rep.predict["ledger_mismatches"],
        "deadline_misses": rep.predict["deadline_misses"],
        "refit_parity": {
            name: _refit_parity(name, scale)
            for name, scale in sorted(BENCH_SCALES.items())
        },
    }


def test_all_requests_served(served):
    responses, rep = served
    assert all(r.ok for r in responses), [
        (r.request_id, r.error) for r in responses if not r.ok
    ]
    assert rep.predict["total"] == round(N_REQUESTS * PREDICT_FRACTION)


def test_throughput_win_at_least_3x(served, all_cold):
    _, rep = served
    _, cold = all_cold
    win = rep.throughput_rps / cold.throughput_rps
    assert win >= MIN_THROUGHPUT_WIN, (
        f"predict-heavy mix only {win:.2f}x over the all-cold baseline"
    )


def test_warm_predict_100x_below_cold_fit(served):
    _, rep = served
    warm = rep.predict["warm_service_s"]["p50"]
    cold = rep.predict["cold_latency_s"]["p50"]
    assert cold >= MIN_WARM_COLD_RATIO * warm, (
        f"warm p50 {warm:.6f}s vs cold p50 {cold:.6f}s: "
        f"only {cold / warm:.1f}x"
    )


def test_every_ledger_exact(served):
    _, rep = served
    assert rep.predict["ledger_checked"] > 0
    assert rep.predict["ledger_mismatches"] == 0


def test_refit_parity_on_bench_datasets():
    for name, scale in sorted(BENCH_SCALES.items()):
        parity = _refit_parity(name, scale)
        assert parity["refit_triggered"], name
        assert parity["labels_bit_identical"], name


def test_report_table(served, write_table):
    _, rep = served
    write_table("serve_predict", rep.format_report())


def test_serve_predict_wall_time(benchmark):
    """Wall-clock cost of the predict-heavy path (regression axis)."""

    def run():
        service = ClusterService(ServiceConfig(max_batch=8, cache_entries=32))
        return service.process(_trace())

    responses, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.ok for r in responses)
